"""Figure 15 — per-superstep speedup of 8 vs 4 workers + active vertices.

Paper (BC on WG and CP, fixed swath sizes and initiation intervals, swath
heuristics off): the superstep sequence is identical at both fleet sizes;
speedup spikes *superlinearly* (>2x) exactly where active vertices peak
(8 workers double the aggregate memory, relieving pressure), and drops
below 1x in low-activity supersteps (barrier overhead dominates there).
"""

import numpy as np

from repro.analysis import run_traversal, tables
from repro.elastic import AlignedTraces, ElasticityModel
from repro.scheduling import SequentialInitiation, StaticSizer

from helpers import banner, run_once


def run_profile(sc):
    runs = {}
    for w in (4, 8):
        runs[w] = run_traversal(
            sc.graph, sc.config(num_workers=w), sc.roots[: sc.base_swath],
            kind="bc", sizer=StaticSizer(sc.elastic_swath),
            initiation=SequentialInitiation(),
        )
    traces = AlignedTraces.from_traces(
        runs[4].result.trace, runs[8].result.trace, 4, 8, sc.graph.num_vertices
    )
    return ElasticityModel(traces)


def report(ds, model):
    sp = model.speedup_series()
    active = model.active_series().astype(float)
    print(f"\n-- {ds}: {len(sp)} supersteps")
    print(f"active    {tables.sparkline(active, width=60)}")
    print(f"speedup   {tables.sparkline(sp, width=60)}")
    print(
        f"speedup range {sp.min():.2f}..{sp.max():.2f}; "
        f"superlinear (>2x) steps: {int((sp > 2).sum())}; "
        f"speed-down (<1x) steps: {int((sp < 1).sum())}"
    )


def check(model):
    sp = model.speedup_series()
    active = model.active_series()
    assert sp.max() > 2.0  # superlinear spikes exist
    assert sp.min() < 1.0  # and speed-downs in the troughs
    # Spikes align with activity peaks: the speedup-weighted mean activity
    # exceeds the overall mean activity.
    top = sp >= np.percentile(sp, 90)
    assert active[top].mean() > active.mean()


def test_fig15_wg(benchmark, wg_scenario):
    model = run_once(benchmark, run_profile, wg_scenario)
    banner("Figure 15: per-superstep speedup (8 vs 4 workers) + active vertices")
    report("WG", model)
    print("\nPaper: occasional superlinear spikes correlated with active-"
          "vertex peaks; sublinear (even <1x) during inactivity.")
    check(model)


def test_fig15_cp(benchmark, cp_scenario):
    model = run_once(benchmark, run_profile, cp_scenario)
    report("CP", model)
    check(model)
