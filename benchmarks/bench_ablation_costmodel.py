"""Ablation — which cost-model term drives which headline result.

DESIGN.md commits the reproduction to three causal mechanisms; this bench
zeroes each term and shows the corresponding effect collapse:

* **Virtual-memory spill penalty** drives the swath-size speedup (Fig. 4):
  with ``spill_penalty=0`` the baseline single swath is no longer punished
  and the heuristics' speedup collapses toward (below) 1x.
* **Barrier cost** drives the initiation-overlap speedup (Fig. 6): with
  free barriers, sequential initiation's extra supersteps cost almost
  nothing and the overlap gain shrinks.
* **Serialization cost** drives the partitioning benefit (Fig. 8): with
  free serialization, remote messages cost (almost) the same as local ones
  and METIS's advantage over hashing shrinks.
"""

from dataclasses import replace

from repro.analysis import RunConfig, paper_partitioners, run_traversal, tables
from repro.cloud.costmodel import SCALED_PERF_MODEL
from repro.scheduling import (
    AdaptiveSizer,
    DynamicPeakDetect,
    SequentialInitiation,
    StaticSizer,
)

from helpers import banner, run_once


def fig4_speedup(sc, perf_model):
    cfg = RunConfig(num_workers=8, perf_model=perf_model).with_memory(
        sc.capacity_bytes
    )
    roots = sc.roots[: sc.base_swath]
    base = run_traversal(
        sc.graph, cfg, roots, kind="bc", sizer=StaticSizer(sc.base_swath)
    )
    heur = run_traversal(
        sc.graph, cfg, roots, kind="bc", sizer=AdaptiveSizer(sc.target_bytes)
    )
    return base.total_time / heur.total_time


def fig6_speedup(sc, perf_model):
    cfg = RunConfig(num_workers=8, perf_model=perf_model).with_memory(
        sc.capacity_bytes
    )
    roots = sc.roots[: sc.base_swath]
    size = max(2, sc.base_swath // 4)
    seq = run_traversal(
        sc.graph, cfg, roots, kind="bc", sizer=StaticSizer(size),
        initiation=SequentialInitiation(),
    )
    dyn = run_traversal(
        sc.graph, cfg, roots, kind="bc", sizer=StaticSizer(size),
        initiation=DynamicPeakDetect(),
    )
    return seq.total_time / dyn.total_time


def fig8_metis_gain(sc, perf_model):
    out = {}
    for name in ("Hash", "METIS"):
        part = paper_partitioners()[name]
        cfg = RunConfig(
            num_workers=8, partitioner=part, perf_model=perf_model
        ).with_memory(1 << 62)
        out[name] = run_traversal(
            sc.graph, cfg, range(20), kind="bc", sizer=StaticSizer(10)
        ).total_time
    return out["Hash"] / out["METIS"]


def run_ablation(sc):
    full = SCALED_PERF_MODEL
    no_spill = replace(full, spill_penalty=0.0, restart_overflow_ratio=1e9)
    no_barrier = full.without(barrier_base=0.0, barrier_per_worker=0.0)
    no_serialize = full.without(
        t_serialize=0.0, conn_setup_per_peer=0.0, latency_per_peer=0.0
    )
    return {
        "fig4": (fig4_speedup(sc, full), fig4_speedup(sc, no_spill)),
        "fig6": (fig6_speedup(sc, full), fig6_speedup(sc, no_barrier)),
        "fig8": (fig8_metis_gain(sc, full), fig8_metis_gain(sc, no_serialize)),
    }


def test_ablation_costmodel(benchmark, wg_scenario):
    r = run_once(benchmark, run_ablation, wg_scenario)

    banner("Ablation: cost-model term -> headline effect (WG)")
    rows = [
        ["Fig. 4 swath-size speedup", "spill penalty",
         f"{r['fig4'][0]:.2f}x", f"{r['fig4'][1]:.2f}x"],
        ["Fig. 6 initiation speedup", "barrier cost",
         f"{r['fig6'][0]:.2f}x", f"{r['fig6'][1]:.2f}x"],
        ["Fig. 8 METIS gain over Hash", "serialization+latency",
         f"{r['fig8'][0]:.2f}x", f"{r['fig8'][1]:.2f}x"],
    ]
    print(tables.table(["effect", "ablated term", "full model", "term zeroed"], rows))
    print("\nEach effect collapses when (and only when) its mechanism is "
          "removed — the reproduction's results are not artifacts of an "
          "unrelated coefficient.")

    # Spill penalty is necessary for the Fig. 4 speedup.
    assert r["fig4"][0] > 1.8 and r["fig4"][1] < 1.1
    # Barrier cost is a large part of the Fig. 6 gain.
    assert r["fig6"][0] > 1.1
    assert r["fig6"][1] < 0.6 + r["fig6"][0]  # shrinks without barriers
    assert r["fig6"][1] - 1.0 < 0.6 * (r["fig6"][0] - 1.0) + 0.05
    # Serialization is most of the METIS advantage.
    assert r["fig8"][0] > 1.2
    assert r["fig8"][1] - 1.0 < 0.6 * (r["fig8"][0] - 1.0) + 0.05
