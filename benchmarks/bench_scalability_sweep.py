"""Extension bench — §IX: "larger graphs and more numbers of VMs".

Sweeps fleet size x graph scale for BC and PageRank and reports the
strong-scaling curves the paper defers to future work.  The shapes BSP
theory predicts (and the cost model reproduces):

* PageRank (uniform profile): adding workers helps until the per-superstep
  barrier/connection overheads rival the shrinking compute slice — a
  classic strong-scaling knee;
* BC with a fixed modest swath: the same knee, but the *memory relief* of
  more workers also removes spill, so speedup can exceed the core count
  before the knee (the Fig. 15 superlinear effect in aggregate);
* larger graphs push the knee right (more work per barrier).
"""

from repro.analysis import RunConfig, run_traversal, run_pagerank, tables
from repro.analysis.sweeps import sweep
from repro.cloud.costmodel import SCALED_PERF_MODEL
from repro.graph import datasets
from repro.scheduling import StaticSizer

from helpers import banner, run_once

WORKER_GRID = [1, 2, 4, 8, 16]


def run_scaling():
    graphs = {s: datasets.load("SD", scale=s) for s in (0.25, 0.5)}

    def cell(workers, scale, app):
        g = graphs[scale]
        cfg = RunConfig(
            num_workers=workers, perf_model=SCALED_PERF_MODEL
        ).with_memory(1 << 62)
        if app == "pagerank":
            t = run_pagerank(g, cfg, iterations=20).total_time
        else:
            t = run_traversal(
                g, cfg, range(10), kind="bc", sizer=StaticSizer(5)
            ).total_time
        return {"time": t}

    return sweep(
        {"workers": WORKER_GRID, "scale": [0.25, 0.5], "app": ["pagerank", "bc"]},
        cell,
    )


def test_scalability_sweep(benchmark):
    result = run_once(benchmark, run_scaling)

    banner("Extension (§IX): strong scaling over fleet size and graph scale")
    for app in ("pagerank", "bc"):
        rows = []
        for scale in (0.25, 0.5):
            series = result.series("workers", "time", app=app, scale=scale)
            t1 = dict(series)[1]
            rows.append(
                [f"scale={scale}"]
                + [f"{t1 / t:.2f}x" for _, t in series]
            )
        print(tables.table(
            [app] + [f"{w}w" for w in WORKER_GRID], rows,
        ))
        print()
    print("Speedup vs 1 worker.  Two honest findings: (1) PageRank at this "
          "scale *loses* from scale-out — a single 4-core VM keeps every "
          "message in memory, while any fleet pays serialization on 50-88% "
          "of them (the §I cloud-overhead caveat, sharpened); (2) BC gains "
          "(memory relief + more cores beat the comm tax) and gains more "
          "on the larger graph — the knee moves right with graph size, the "
          "paper's 'medium graphs fit medium fleets' sweet spot.")

    for scale in (0.25, 0.5):
        pr = dict(result.series("workers", "time", app="pagerank", scale=scale))
        bc = dict(result.series("workers", "time", app="bc", scale=scale))
        # PageRank: communication-bound — scale-out never beats one VM here.
        assert min(pr[w] for w in WORKER_GRID[1:]) > pr[1]
        # BC: scale-out wins by 8 workers.
        assert bc[8] < bc[1]
    # Larger graph -> better relative efficiency at 16 workers, both apps.
    for app in ("pagerank", "bc"):
        eff = {
            s: (dict(result.series("workers", "time", app=app, scale=s))[1]
                / dict(result.series("workers", "time", app=app, scale=s))[16])
            for s in (0.25, 0.5)
        }
        assert eff[0.5] >= eff[0.25] * 0.95