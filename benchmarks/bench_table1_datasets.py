"""Table 1 — evaluation datasets and their properties.

Paper: SD 82k/948k/4.7, WG 876k/5.1M/8.1, CP 3.8M/16.5M/9.4, LJ 4.8M/69M/6.5.
We report the synthetic analogues' measured properties next to the paper's
and assert both orderings (vertex counts, effective diameters) hold.
"""

from repro.analysis import tables
from repro.graph import datasets, summarize

from helpers import banner, run_once


def build_and_summarize():
    rows = {}
    for key in ("SD", "WG", "CP", "LJ"):
        g = datasets.load(key)
        rows[key] = summarize(g, sample=48)
    return rows


def test_table1_dataset_properties(benchmark):
    rows = run_once(benchmark, build_and_summarize)

    banner("Table 1: datasets (paper SNAP graphs vs synthetic analogues)")
    out = []
    for key in ("SD", "WG", "CP", "LJ"):
        p = datasets.PAPER_TABLE1[key]
        s = rows[key]
        out.append(
            [
                key,
                f"{p['vertices']:,}",
                f"{s.num_vertices:,}",
                f"{p['edges']:,}",
                f"{s.num_edges:,}",
                f"{p['eff_diameter']:.1f}",
                f"{s.effective_diameter_90:.1f}",
            ]
        )
    print(
        tables.table(
            ["graph", "|V| paper", "|V| ours", "|E| paper", "|E| ours",
             "90%diam paper", "90%diam ours"],
            out,
        )
    )
    print(
        "\nNote: analogues are ~1000x scaled down; orderings (sizes, "
        "diameters) match the paper — see DESIGN.md §2."
    )

    sizes = {k: rows[k].num_vertices for k in rows}
    assert sizes["SD"] < sizes["WG"] < sizes["CP"] < sizes["LJ"]
    diams = {k: rows[k].effective_diameter_90 for k in rows}
    assert diams["SD"] < diams["LJ"] < diams["WG"] < diams["CP"]


def estimate_diameters_on_engine():
    """Measure each analogue's diameter *with the BSP engine itself*."""
    import numpy as np

    from repro.algorithms import DiameterEstimationProgram
    from repro.bsp import JobSpec, run_job
    from repro.graph.properties import distance_profile

    out = {}
    for key in ("SD", "WG", "CP", "LJ"):
        g = datasets.load(key)
        rng = np.random.default_rng(0)
        sources = rng.choice(g.num_vertices, size=48, replace=False)
        prog = DiameterEstimationProgram(sources)
        run_job(JobSpec(program=prog, graph=g, num_workers=4))
        # Offline reference over the SAME sources: must match bit-exactly.
        ref_hist = distance_profile(g, sources=sources)
        ours = np.zeros(len(ref_hist), dtype=np.int64)
        for d, c in prog.histogram.items():
            ours[d] = c
        out[key] = (prog.effective_diameter(), np.array_equal(ours, ref_hist))
    return out


def test_table1_diameters_via_bsp_engine(benchmark):
    """Dogfooding: the engine's own multi-source BFS reproduces Table 1."""
    results = run_once(benchmark, estimate_diameters_on_engine)

    banner("Table 1 (cross-check): 90% diameters measured BY the BSP engine")
    rows = [
        [key, f"{datasets.PAPER_TABLE1[key]['eff_diameter']:.1f}",
         f"{diam:.1f}", "yes" if exact else "NO"]
        for key, (diam, exact) in results.items()
    ]
    print(tables.table(
        ["graph", "paper", "engine-measured", "histogram == offline BFS"],
        rows,
    ))

    for key, (_, exact) in results.items():
        assert exact, f"{key}: engine histogram diverged from offline BFS"
    diams = {k: d for k, (d, _) in results.items()}
    assert diams["SD"] < diams["LJ"] < diams["WG"] < diams["CP"]
