"""Extension bench — three generations of partitioners under BSP barriers.

Extends Fig. 8's three-way comparison with two strategies from beyond the
paper's time frame: Fennel (streaming, 2014 — the successor to the
Stanton–Kliot heuristic the paper picked) and spectral recursive bisection
(the classical offline method).  The question §VII poses — does a better
cut survive the barrier? — gets asked across the whole family.
"""

from repro.analysis import RunConfig, run_traversal, tables
from repro.cloud.costmodel import SCALED_PERF_MODEL
from repro.graph import datasets
from repro.partition import (
    FennelPartitioner,
    HashPartitioner,
    MultilevelPartitioner,
    SpectralPartitioner,
    StreamingGreedy,
    balance,
    remote_edge_fraction,
)
from repro.scheduling import StaticSizer

from helpers import banner, run_once

PARTITIONERS = [
    ("Hash (online, 2010)", HashPartitioner()),
    ("LDG (streaming, 2012)", StreamingGreedy(order="random")),
    ("Fennel (streaming, 2014)", FennelPartitioner(order="random")),
    ("Spectral (offline, classic)", SpectralPartitioner()),
    ("Multilevel (offline, METIS-style)",
     MultilevelPartitioner(seed=1, imbalance=1.15, refine_passes=12)),
]

ROOTS = {"WG": 30, "CP": 25}


def run_generations():
    out = {}
    for ds in ("WG", "CP"):
        g = datasets.load(ds, scale=0.3)
        for name, part in PARTITIONERS:
            p = part.partition(g, 8)
            cfg = RunConfig(
                num_workers=8, partitioner=part, perf_model=SCALED_PERF_MODEL
            ).with_memory(1 << 62)
            run = run_traversal(
                g, cfg, range(ROOTS[ds]), kind="bc", sizer=StaticSizer(10)
            )
            out[(ds, name)] = {
                "remote": remote_edge_fraction(g, p),
                "balance": balance(g, p),
                "time": run.total_time,
            }
        base = out[(ds, "Hash (online, 2010)")]["time"]
        for name, _ in PARTITIONERS:
            out[(ds, name)]["ratio"] = out[(ds, name)]["time"] / base
    return out


def test_partitioner_generations(benchmark):
    r = run_once(benchmark, run_generations)

    banner("Extension: partitioner generations under BSP (BC, 8 workers)")
    for ds in ("WG", "CP"):
        rows = [
            [name, f"{d['remote']:.0%}", f"{d['balance']:.2f}", f"{d['ratio']:.2f}"]
            for name, _ in PARTITIONERS
            for d in [r[(ds, name)]]
        ]
        print(tables.table(
            ["strategy", "remote edges", "balance", "time vs Hash"],
            rows, title=f"-- {ds}",
        ))
        print()
    print("§VII's lesson generalizes across the family: on WG every "
          "cut-reducing strategy beats hashing; on CP even the best cuts "
          "fail to translate because min-cut aligns with the traversal's "
          "community structure.")

    for ds in ("WG", "CP"):
        # Every min-cut-family strategy cuts far fewer edges than hashing...
        for name, _ in PARTITIONERS[1:]:
            assert r[(ds, name)]["remote"] < 0.6 * r[(ds, "Hash (online, 2010)")]["remote"]
    # ...and on WG that buys runtime...
    for name, _ in PARTITIONERS[1:]:
        assert r[("WG", name)]["ratio"] < 0.9
    # ...but on CP the offline min-cut strategies lose their edge (>= 0.9x),
    # reproducing the paper's imbalance result across implementations.
    assert r[("CP", "Multilevel (offline, METIS-style)")]["ratio"] > 0.9
    assert r[("CP", "Spectral (offline, classic)")]["ratio"] > 0.9