"""Figure 16 — elastic scaling: projected runtime and cost vs 4 workers.

Paper: using the 50%-active-vertices threshold to switch between 4 and 8
workers at superstep boundaries, the dynamic policy achieves nearly the
fixed-8 deployment's runtime (better on WG, comparable on CP) at a cost
comparable to (CP) or cheaper than (WG) the fixed-4 deployment; the
"oracle" (per-superstep minimum) bounds the achievable benefit and the
dynamic heuristic lands close to it.  The paper's projections ignore
scaling overheads; we report both that variant and one with provisioning /
drain delays charged.
"""

from repro.analysis import run_traversal
from repro.cloud.costmodel import SCALED_PERF_MODEL
from repro.elastic import (
    ActiveFractionPolicy,
    AlignedTraces,
    ElasticityModel,
    FixedWorkers,
    OraclePolicy,
    normalize_outcomes,
    render_fig16,
)
from repro.scheduling import SequentialInitiation, StaticSizer

from helpers import banner, run_once

POLICIES = [
    FixedWorkers(4),
    FixedWorkers(8),
    ActiveFractionPolicy(0.5),
    OraclePolicy(),
]


def run_fig16(sc, include_overheads=False):
    runs = {}
    for w in (4, 8):
        runs[w] = run_traversal(
            sc.graph, sc.config(num_workers=w), sc.roots[: sc.base_swath],
            kind="bc", sizer=StaticSizer(sc.elastic_swath),
            initiation=SequentialInitiation(),
        )
    traces = AlignedTraces.from_traces(
        runs[4].result.trace, runs[8].result.trace, 4, 8, sc.graph.num_vertices
    )
    model = ElasticityModel(
        traces,
        perf_model=SCALED_PERF_MODEL,
        include_scaling_overheads=include_overheads,
    )
    return normalize_outcomes(model.evaluate_all(POLICIES), "Fixed-4")


def check(rows):
    by = {r.label: r for r in rows}
    dyn = by["Dynamic(50% of peak)"]
    f8 = by["Fixed-8"]
    oracle = by["Oracle"]
    # Dynamic approaches (or beats) fixed-8 runtime...
    assert dyn.norm_time <= 1.1 * f8.norm_time
    # ...at a cost comparable to or below the 4-worker deployment
    # (paper: "comparable (CP) or cheaper (WG) than a 4 worker scenario").
    assert dyn.norm_cost <= 1.1
    # Oracle bounds every policy's runtime; dynamic lands close to it.
    assert oracle.norm_time <= min(r.norm_time for r in rows) + 1e-9
    assert dyn.norm_time <= 1.15 * oracle.norm_time


def test_fig16_wg(benchmark, wg_scenario):
    rows = run_once(benchmark, run_fig16, wg_scenario)
    banner("Figure 16(A): elastic scaling on WG (normalized to 4 workers)")
    print(render_fig16(rows))
    check(rows)


def test_fig16_cp(benchmark, cp_scenario):
    rows = run_once(benchmark, run_fig16, cp_scenario)
    banner("Figure 16(B): elastic scaling on CP (normalized to 4 workers)")
    print(render_fig16(rows))
    check(rows)


def run_overhead_sweep(sc):
    """Beyond the paper: how much scaling overhead the win can absorb.

    The paper's projections 'do not yet consider the overheads of scaling'.
    We sweep the per-event provisioning delay (drain delay = 1/9 of it, the
    paper-default ratio) and report the dynamic policy's normalized runtime
    at each, locating the break-even point against the fixed-4 baseline.
    """
    from dataclasses import replace

    runs = {}
    for w in (4, 8):
        runs[w] = run_traversal(
            sc.graph, sc.config(num_workers=w), sc.roots[: sc.base_swath],
            kind="bc", sizer=StaticSizer(sc.elastic_swath),
            initiation=SequentialInitiation(),
        )
    traces = AlignedTraces.from_traces(
        runs[4].result.trace, runs[8].result.trace, 4, 8, sc.graph.num_vertices
    )
    sweep = {}
    for delay in (0.0, 0.5, 2.0, 5.0, 10.0, 30.0):
        pm = replace(
            SCALED_PERF_MODEL, provision_delay=delay, release_delay=delay / 9
        )
        model = ElasticityModel(
            traces, perf_model=pm, include_scaling_overheads=delay > 0
        )
        rows = normalize_outcomes(model.evaluate_all(POLICIES), "Fixed-4")
        sweep[delay] = {r.label: r for r in rows}
    return sweep


def test_fig16_overhead_breakeven(benchmark, wg_scenario):
    sweep = run_once(benchmark, run_overhead_sweep, wg_scenario)
    banner("Fig. 16 extension: scaling-overhead break-even sweep (WG)")
    print(f"{'provision delay':>16s} {'dynamic time':>13s} {'dynamic cost':>13s}")
    for delay, by in sweep.items():
        dyn = by["Dynamic(50% of peak)"]
        print(f"{delay:>14.1f}s {dyn.norm_time:>12.3f}x {dyn.norm_cost:>12.3f}x")
    print("\nIdealized (0s) matches the paper; the win erodes linearly in "
          "per-event overhead and inverts once delays rival superstep times.")

    assert sweep[0.0]["Dynamic(50% of peak)"].norm_time < 0.75  # paper regime
    times = [by["Dynamic(50% of peak)"].norm_time for by in sweep.values()]
    assert all(a <= b + 1e-12 for a, b in zip(times, times[1:]))  # monotone
    assert times[-1] > times[0]  # overheads genuinely erode the win
