"""Extension bench — multi-tenancy noise and BSP's straggler sensitivity.

§I notes that on public clouds "multi-tenancy impacts performance
consistency"; the BSP barrier makes it worse than the mean noise level
suggests, because each superstep waits for the *slowest* worker — the
expected maximum of W jittered draws grows with W.  The cost model carries
a deterministic jitter knob (off in all reproduction benches); here we
sweep its amplitude and the fleet size and measure:

* run-to-run spread (different jitter seeds = different tenant neighbors);
* the straggler tax: mean slowdown vs the noise-free run, growing with
  worker count at fixed amplitude.
"""

from dataclasses import replace

import numpy as np

from repro.analysis import RunConfig, run_traversal, tables
from repro.cloud.costmodel import SCALED_PERF_MODEL
from repro.graph import datasets
from repro.scheduling import StaticSizer

from helpers import banner, run_once

SEEDS = (1, 2, 3, 4, 5)


def run_jitter_study():
    g = datasets.load("SD", scale=0.3)
    out = {}
    for workers in (2, 8):
        base_cfg = RunConfig(
            num_workers=workers, perf_model=SCALED_PERF_MODEL
        ).with_memory(1 << 62)
        base = run_traversal(
            g, base_cfg, range(10), kind="bc", sizer=StaticSizer(5)
        ).total_time
        for amp in (0.1, 0.3):
            times = []
            for seed in SEEDS:
                pm = replace(SCALED_PERF_MODEL, jitter=amp, jitter_seed=seed)
                cfg = RunConfig(num_workers=workers, perf_model=pm).with_memory(1 << 62)
                times.append(
                    run_traversal(
                        g, cfg, range(10), kind="bc", sizer=StaticSizer(5)
                    ).total_time
                )
            times = np.array(times)
            out[(workers, amp)] = {
                "base": base,
                "mean": float(times.mean()),
                "spread": float(times.std() / times.mean()),
                "tax": float(times.mean() / base - 1.0),
            }
    return out


def test_multitenancy_jitter(benchmark):
    r = run_once(benchmark, run_jitter_study)

    banner("Extension: multi-tenant jitter and the BSP straggler tax (BC on SD)")
    rows = []
    for (workers, amp), d in sorted(r.items()):
        rows.append([
            workers, f"±{amp:.0%}", f"{d['base']:.2f}s", f"{d['mean']:.2f}s",
            f"{d['tax']:+.1%}", f"{d['spread']:.1%}",
        ])
    print(tables.table(
        ["workers", "NIC jitter", "noise-free", "mean over tenants",
         "straggler tax", "run spread (CV)"],
        rows,
    ))
    print("\nPer-worker noise is zero-mean, yet every configuration pays a "
          "strictly positive tax: the barrier takes the max over workers, "
          "so wobble never averages out — BSP converts variability into "
          "lost time (the paper's §I multi-tenancy caveat, quantified).")

    # Zero-mean noise never helps and its cost grows with amplitude.
    for (workers, amp), d in r.items():
        assert d["tax"] > 0.0
    assert r[(8, 0.3)]["tax"] > r[(8, 0.1)]["tax"]
    assert r[(2, 0.3)]["tax"] > r[(2, 0.1)]["tax"]
    # Different tenant neighborhoods produce measurable run-to-run spread.
    assert r[(8, 0.3)]["spread"] > 0.0