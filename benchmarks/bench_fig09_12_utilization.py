"""Figures 9 & 12 — BC runtime split into compute+I/O vs barrier wait,
plus VM utilization %, for each partitioning strategy.

Paper: on both WG (Fig. 9) and CP (Fig. 12), *hashing* shows the highest
VM utilization (balanced work; little barrier waiting) yet the highest
total time (many remote messages); METIS shows the inverse — lower total
time but lower utilization because message skew leaves workers idling at
the barrier.  Utilization = (compute + I/O time) / total time.
"""

from repro.analysis import RunConfig, paper_partitioners, run_traversal, tables
from repro.cloud.costmodel import SCALED_PERF_MODEL
from repro.scheduling import StaticSizer

from helpers import banner, fmt_seconds, run_once

ROOTS = {"WG": 30, "CP": 25}


def run_breakdowns(scenarios):
    out = {}
    for ds, sc in scenarios.items():
        for name, part in paper_partitioners().items():
            cfg = RunConfig(
                num_workers=8, partitioner=part, perf_model=SCALED_PERF_MODEL
            ).with_memory(1 << 62)
            run = run_traversal(
                sc.graph, cfg, range(ROOTS[ds]), kind="bc", sizer=StaticSizer(10)
            )
            out[(ds, name)] = run.result.trace.breakdown()
    return out


def report(ds, breakdowns):
    rows = []
    for name in ("Hash", "METIS", "Streaming"):
        b = breakdowns[(ds, name)]
        rows.append(
            [
                name,
                fmt_seconds(b["compute_io"]),
                fmt_seconds(b["barrier_wait"]),
                fmt_seconds(b["total"]),
                f"{b['utilization']:.0%}",
            ]
        )
    print(
        tables.table(
            ["strategy", "compute+I/O", "barrier wait", "total", "utilization"],
            rows, title=f"-- BC on {ds}",
        )
    )


def test_fig09_fig12_utilization(benchmark, wg_scenario, cp_scenario):
    breakdowns = run_once(
        benchmark, run_breakdowns, {"WG": wg_scenario, "CP": cp_scenario}
    )

    banner("Figures 9 & 12: compute+I/O vs barrier-wait split and utilization")
    for ds in ("WG", "CP"):
        report(ds, breakdowns)
    print("\nPaper: hashing = highest utilization AND highest total time; "
          "METIS = the inverse (idle workers at the barrier).")

    for ds in ("WG", "CP"):
        hash_b = breakdowns[(ds, "Hash")]
        metis_b = breakdowns[(ds, "METIS")]
        # Hash: higher utilization...
        assert hash_b["utilization"] > metis_b["utilization"]
        # ...and the barrier-wait share is larger under METIS.
        assert (
            metis_b["barrier_wait"] / metis_b["total"]
            > hash_b["barrier_wait"] / hash_b["total"]
        )
    # WG: METIS's lower total time despite lower utilization.
    assert (
        breakdowns[("WG", "METIS")]["total"] < breakdowns[("WG", "Hash")]["total"]
    )
