"""Cluster-telemetry bench — federation scrape latency and observer cost.

The ``/cluster`` route scrapes every fleet daemon's ``/sync`` snapshot
and merges the registries on each request, so its latency bounds how
hard an operator (or a dashboard refresh loop) can hammer the
coordinator.  The second number is the cost of the cluster-era
always-on observers — the live ``CostMeter`` and ``EngineHealth`` — which
ride every instrumented run and must stay within the same wall-clock
bound the flight recorder honors (``bench_flight.py``).

Numbers land in ``BENCH_cluster.json`` for cross-revision comparison.
"""

import json
import time
import urllib.request

from repro.analysis import RunConfig, run_pagerank
from repro.cloud import CostMeter
from repro.graph import generators as gen
from repro.obs import (
    ClusterScraper,
    EngineHealth,
    LiveTelemetryServer,
    MetricsRegistry,
)
from repro.obs.cluster import ClusterMember

from helpers import banner, run_once

#: alternate off/on runs, keep the fastest of each (interpreter noise)
REPEATS = 7
ITERATIONS = 20
FLEET = 3
#: acceptance bound: the live observers must cost <= 2% wall-clock
MAX_OVERHEAD = 0.02


def _daemon_registry(i: int) -> MetricsRegistry:
    """A registry shaped like a working daemon's: vitals + histograms."""
    reg = MetricsRegistry()
    labels = {"host": f"10.0.0.{i}:9001", "transport": "tcp"}
    reg.gauge(
        "repro_daemon_sessions_active", help="live sessions", **labels
    ).set(2)
    reg.counter(
        "repro_daemon_sessions_total", help="sessions served", **labels
    ).inc(4 + i)
    reg.counter(
        "repro_daemon_heartbeats_sent_total", help="beats", **labels
    ).inc(500 * (i + 1))
    hist = reg.histogram(
        "bsp_superstep_host_seconds", help="superstep wall",
        buckets=(0.001, 0.01, 0.1, 1.0),
    )
    for k in range(100):
        hist.observe(0.0005 * (k % 7 + 1))
    return reg


def build_fleet():
    """FLEET real telemetry servers + a scraper federating them."""
    servers = [
        LiveTelemetryServer(metrics=_daemon_registry(i)).start()
        for i in range(FLEET)
    ]
    members = [
        ClusterMember(f"10.0.0.{i}:9001", srv.url)
        for i, srv in enumerate(servers)
    ]
    local = MetricsRegistry()
    local.counter("bsp_supersteps_total", help="steps").inc(40)
    return servers, ClusterScraper(members, local=local)


def measure_scrapes():
    """Best-of-REPEATS latency for one /sync GET and one /cluster merge."""
    servers, scraper = build_fleet()
    try:
        sync_s, cluster_s = [], []
        for _ in range(REPEATS):
            t0 = time.perf_counter()
            with urllib.request.urlopen(
                f"{servers[0].url}/sync", timeout=5
            ) as resp:
                resp.read()
            sync_s.append(time.perf_counter() - t0)
            t0 = time.perf_counter()
            registry, summary = scraper.scrape()
            cluster_s.append(time.perf_counter() - t0)
        assert not summary["errors"], summary["errors"]
        assert len(summary["members"]) == FLEET + 1  # + coordinator
        hosts = {
            dict(inst.labels).get("host")
            for _, _, _, insts in registry.collect()
            for inst in insts
        }
        assert {f"10.0.0.{i}:9001" for i in range(FLEET)} <= hosts
        assert "coordinator" in hosts
        return min(sync_s), min(cluster_s)
    finally:
        for srv in servers:
            srv.stop()


def measure_observer_overhead(graph):
    """Metrics-only run vs CostMeter + EngineHealth riding along.

    Both arms carry a metrics registry (its cost is bench_perf.py's
    problem); the delta isolates the cluster-era live observers.
    """
    # one untimed warm-up so first-call import/allocation costs land in
    # neither arm
    run_pagerank(
        graph, RunConfig(num_workers=4, metrics=MetricsRegistry()),
        iterations=2,
    )
    off, on = [], []
    for _ in range(REPEATS):
        reg = MetricsRegistry()
        t0 = time.perf_counter()
        run_pagerank(
            graph, RunConfig(num_workers=4, metrics=reg),
            iterations=ITERATIONS,
        )
        off.append(time.perf_counter() - t0)
        reg = MetricsRegistry()
        t0 = time.perf_counter()
        run_pagerank(
            graph, RunConfig(num_workers=4, metrics=reg),
            iterations=ITERATIONS,
            observers=[CostMeter(reg), EngineHealth(metrics=reg)],
        )
        on.append(time.perf_counter() - t0)
    return min(off), min(on)


def test_cluster_scrape_latency_and_observer_overhead(benchmark):
    graph = gen.watts_strogatz(2000, 8, 0.1, seed=1)

    def run_all():
        return measure_scrapes(), measure_observer_overhead(graph)

    (sync_s, cluster_s), (off_s, on_s) = run_once(benchmark, run_all)
    overhead = on_s / off_s - 1.0

    banner(f"cluster federation scrape latency ({FLEET} daemons)")
    print(f"{'/sync (1 daemon)':<22} {sync_s * 1e3:>10.2f} ms")
    print(f"{'/cluster fan-out':<22} {cluster_s * 1e3:>10.2f} ms")
    print(f"{'observers off':<22} {off_s * 1e3:>10.1f} ms")
    print(f"{'observers on':<22} {on_s * 1e3:>10.1f} ms  ({overhead:+.1%})")

    # Both observers do O(workers) arithmetic per superstep on numbers
    # the engine already computed; blowing the bound means a hot path
    # started paying for telemetry.
    assert overhead < MAX_OVERHEAD, (
        f"live observers cost {overhead:.1%} (bound {MAX_OVERHEAD:.0%})"
    )

    payload = {
        "workload": {
            "graph": "watts_strogatz(2000, 8, 0.1)",
            "iterations": ITERATIONS,
            "workers": 4,
            "fleet": FLEET,
            "repeats": REPEATS,
        },
        "sync_scrape_seconds": sync_s,
        "cluster_scrape_seconds": cluster_s,
        "observers_off_seconds": off_s,
        "observers_on_seconds": on_s,
        "overhead_fraction": overhead,
        "overhead_bound": MAX_OVERHEAD,
    }
    with open("BENCH_cluster.json", "w") as f:
        json.dump(payload, f, indent=2)
    print("wrote BENCH_cluster.json")
