"""Extension bench — *executed* elastic scaling vs the paper's projection.

§VIII only extrapolates elastic scaling from static 4- and 8-worker runs
and "does not yet consider the overheads of scaling".  Our
:class:`~repro.elastic.live.LiveElasticEngine` executes the mechanism for
real: repartition at the boundary, migrate vertex state and buffered
messages, charge provisioning/drain/migration time.  This bench runs BC on
WG three ways — static 4, static 8, live dynamic — and compares the live
outcome against the Fig. 16 projection.
"""

from dataclasses import replace

from repro.algorithms import BCProgram
from repro.algorithms import bc as bc_mod
from repro.bsp import JobSpec, run_job
from repro.analysis import run_traversal, tables
from repro.elastic import LiveActiveFraction, LiveElasticEngine
from repro.scheduling import SequentialInitiation, StaticSizer, SwathController

from helpers import banner, fmt_seconds, run_once


def make_job(sc, workers, perf_model):
    ctrl = SwathController(
        roots=list(sc.roots[: sc.base_swath]),
        start_factory=bc_mod.start_messages,
        sizer=StaticSizer(sc.elastic_swath),
        initiation=SequentialInitiation(),
    )
    cfg = sc.config(num_workers=workers)
    job = JobSpec(
        program=BCProgram(), graph=sc.graph, num_workers=workers,
        vm_spec=cfg.vm_spec, perf_model=perf_model,
        initially_active=False, observers=[ctrl],
    )
    return job


def run_live_comparison(sc):
    # Quick scale events relative to the scaled-seconds regime (the sweep in
    # bench_fig16 showed the win survives sub-2s overheads).
    pm = replace(sc.config().perf_model, provision_delay=0.5, release_delay=0.1)
    out = {}
    for w in (4, 8):
        res = run_job(make_job(sc, w, pm))
        out[f"static-{w}"] = (res, None)
    engine = LiveElasticEngine(
        make_job(sc, 4, pm),
        LiveActiveFraction(low=4, high=8, threshold=0.5, cooldown=2),
    )
    res = engine.run()
    out["live-dynamic"] = (res, engine)
    return out


def test_live_elastic_execution(benchmark, wg_scenario):
    sc = wg_scenario
    runs = run_once(benchmark, run_live_comparison, sc)

    banner("Extension: executed live elastic scaling (BC on WG)")
    base_time = runs["static-4"][0].total_time
    base_cost = runs["static-4"][0].total_cost
    rows = []
    for name, (res, engine) in runs.items():
        rows.append([
            name,
            fmt_seconds(res.total_time),
            f"{res.total_time / base_time:.3f}x",
            f"{res.total_cost / base_cost:.3f}x",
            len(engine.scale_events) if engine else 0,
            fmt_seconds(engine.scale_overhead_total) if engine else "-",
        ])
    print(tables.table(
        ["config", "sim. time", "norm. time", "norm. cost",
         "scale events", "scaling overhead"],
        rows,
    ))
    print("\nThe executed dynamic run keeps most of the Fig. 16 projection's "
          "benefit after paying real (fast-provisioning) scaling overheads, "
          "and produces identical BC results (asserted in tests/elastic/).")

    live = runs["live-dynamic"][0]
    st4 = runs["static-4"][0]
    st8 = runs["static-8"][0]
    assert live.total_time < st4.total_time  # the win survives execution
    assert live.total_time < 1.5 * st8.total_time
    assert live.total_cost < st8.total_cost  # cheaper than always-8
    assert runs["live-dynamic"][1].scale_events  # it genuinely scaled
