"""Figure 5 — memory usage over time while running BC on WG.

Paper: the baseline single swath flat-lines at the 7 GB physical ceiling
(thrashing virtual memory); the adaptive heuristic hugs the 6 GB target;
the sampling heuristic stays close to it, but less consistently.  "Curves
close to 6 GB imply good memory utilization; those near 7 GB hit virtual
memory."
"""

import numpy as np

from repro.analysis import run_traversal, tables
from repro.scheduling import AdaptiveSizer, SamplingSizer, StaticSizer

from helpers import banner, run_once


def collect_memory_traces(sc):
    cfg = sc.config()
    roots = sc.roots[: sc.base_swath]
    out = {}
    for name, sizer in (
        ("baseline", StaticSizer(sc.base_swath)),
        ("sampling", SamplingSizer(sc.target_bytes)),
        ("adaptive", AdaptiveSizer(sc.target_bytes)),
    ):
        run = run_traversal(sc.graph, cfg, roots, kind="bc", sizer=sizer)
        out[name] = run.result.trace.series_peak_memory()
    return out


def test_fig05_memory_over_time(benchmark, wg_scenario):
    sc = wg_scenario
    traces = run_once(benchmark, collect_memory_traces, sc)

    banner("Figure 5: per-superstep peak worker memory, BC on WG")
    cap, target = sc.capacity_bytes, sc.target_bytes
    for name, mem in traces.items():
        frac = mem / cap
        print(
            f"{name:<9s} peak={frac.max():4.2f}x physical  "
            f"steps>{'target':s}={np.count_nonzero(mem > target):>3d}  "
            f"{tables.sparkline(frac, width=50)}"
        )
    print(f"\n(physical capacity = 1.00, heuristic target = {target / cap:.2f}; "
          "paper: baseline pegs past 7 GB, adaptive hugs 6 GB)")

    base, samp, adap = traces["baseline"], traces["sampling"], traces["adaptive"]
    assert base.max() > cap  # baseline spills past physical memory
    assert adap.max() <= 1.05 * target  # adaptive respects the target
    assert samp.max() <= 1.05 * target
    # Adaptive utilizes memory at least as well as sampling (closer to target).
    assert adap.max() >= 0.95 * samp.max()
    # Heuristics' working peaks stay meaningfully high (utilization, not
    # timidity): above half the target once warmed up.
    assert adap.max() > 0.5 * target
