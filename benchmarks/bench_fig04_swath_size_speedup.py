"""Figure 4 — swath-size heuristic speedup vs the baseline single swath.

Paper (BC, 8 workers, 6 GB target on 7 GB VMs): baseline is the largest
single swath that completes (40 roots on WG, 25 on CP) while spilling to
virtual memory.  The sampling heuristic reaches ~2.5-3x speedup, the
adaptive heuristic up to 3.5x; §VI-B adds that the adaptive heuristic on
*4* workers finishes in roughly two-thirds the 8-worker baseline's time.
"""

from repro.analysis import run_traversal, tables
from repro.scheduling import AdaptiveSizer, SamplingSizer, StaticSizer

from helpers import banner, fmt_seconds, run_once


def run_fig4(sc):
    cfg = sc.config()
    roots = sc.roots[: sc.base_swath]
    out = {}
    base = run_traversal(
        sc.graph, cfg, roots, kind="bc", sizer=StaticSizer(sc.base_swath)
    )
    out["baseline"] = base
    out["sampling-8w"] = run_traversal(
        sc.graph, cfg, roots, kind="bc", sizer=SamplingSizer(sc.target_bytes)
    )
    out["adaptive-8w"] = run_traversal(
        sc.graph, cfg, roots, kind="bc", sizer=AdaptiveSizer(sc.target_bytes)
    )
    out["adaptive-4w"] = run_traversal(
        sc.graph, sc.config(num_workers=4), roots, kind="bc",
        sizer=AdaptiveSizer(sc.target_bytes),
    )
    return out


def report(ds, sc, runs):
    base = runs["baseline"].total_time
    rows = []
    for name, run in runs.items():
        rows.append(
            [
                name,
                fmt_seconds(run.total_time),
                f"{base / run.total_time:.2f}x",
                run.num_swaths,
                f"{run.result.trace.peak_memory / sc.capacity_bytes:.2f}",
            ]
        )
    print(
        tables.table(
            ["config", "sim. time", "speedup", "swaths", "peak/physical"],
            rows,
            title=f"-- {ds} (baseline swath {sc.base_swath}, "
            f"target {sc.target_bytes / sc.capacity_bytes:.0%} of physical)",
        )
    )


def check(sc, runs):
    base = runs["baseline"]
    assert base.result.trace.peak_memory > sc.capacity_bytes  # baseline spills
    for name in ("sampling-8w", "adaptive-8w"):
        speedup = base.total_time / runs[name].total_time
        assert 1.8 < speedup < 6.0, f"{name}: {speedup:.2f}x outside paper band"
        assert runs[name].result.trace.peak_memory <= 1.05 * sc.capacity_bytes
    # 4-worker adaptive beats the 8-worker baseline (paper: ~2/3 the time).
    assert runs["adaptive-4w"].total_time < base.total_time


def test_fig04_wg(benchmark, wg_scenario):
    runs = run_once(benchmark, run_fig4, wg_scenario)
    banner("Figure 4: swath-size heuristic speedup (BC)")
    report("WG", wg_scenario, runs)
    print("Paper: sampling ~2.5-3x, adaptive up to 3.5x; adaptive on 4 "
          "workers beats the 8-worker baseline.")
    check(wg_scenario, runs)


def test_fig04_cp(benchmark, cp_scenario):
    runs = run_once(benchmark, run_fig4, cp_scenario)
    report("CP", cp_scenario, runs)
    check(cp_scenario, runs)
