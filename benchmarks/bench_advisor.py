"""Extension bench — the §IX future-work partitioning advisor, validated.

The paper closes by asking whether graph properties can *predict* when
min-cut partitioning helps Pregel/BSP.  Our advisor measures frontier
concentration + remote-edge fraction (no engine runs) and predicts a
min-cut/hash time ratio; this bench compares its prediction against the
*measured* Fig. 8 ratio on every dataset analogue.
"""

from repro.analysis import RunConfig, run_traversal, tables
from repro.cloud.costmodel import SCALED_PERF_MODEL
from repro.graph import datasets
from repro.partition import (
    HashPartitioner,
    MultilevelPartitioner,
    PartitioningAdvisor,
)
from repro.scheduling import StaticSizer

from helpers import banner, run_once

DATASETS = ("SD", "WG", "CP", "LJ")


def measured_ratio(graph):
    times = {}
    for name, part in (
        ("Hash", HashPartitioner()),
        ("METIS", MultilevelPartitioner(seed=1, imbalance=1.15, refine_passes=12)),
    ):
        cfg = RunConfig(
            num_workers=8, partitioner=part, perf_model=SCALED_PERF_MODEL
        ).with_memory(1 << 62)
        times[name] = run_traversal(
            graph, cfg, range(20), kind="bc", sizer=StaticSizer(10)
        ).total_time
    return times["METIS"] / times["Hash"]


def run_advisor_validation():
    advisor = PartitioningAdvisor(seed=0)
    rows = {}
    for ds in DATASETS:
        g = datasets.load(ds, scale=0.3)
        advice = advisor.advise(g, 8)
        rows[ds] = (advice, measured_ratio(g))
    return rows


def test_advisor_predictions(benchmark):
    rows = run_once(benchmark, run_advisor_validation)

    banner("Extension (§IX future work): partitioning advisor validation")
    table_rows = []
    correct = 0
    for ds, (advice, measured) in rows.items():
        measured_rec = "min-cut" if measured < 0.85 else "hash"
        agree = advice.recommendation == measured_rec
        correct += agree
        table_rows.append([
            ds,
            f"{advice.predicted_ratio:.2f}",
            f"{measured:.2f}",
            advice.recommendation,
            measured_rec,
            "yes" if agree else "NO",
        ])
    print(tables.table(
        ["graph", "predicted M/H ratio", "measured M/H ratio",
         "advisor says", "measurement says", "agree"],
        table_rows,
    ))
    print("\nThe advisor reads only structure (sampled BFS frontier "
          "concentration + edge cuts) — no engine runs — and recovers the "
          "paper's §VII verdicts.")

    # Predictions agree with measurement on the paper's two key graphs...
    wg_advice, wg_measured = rows["WG"]
    cp_advice, cp_measured = rows["CP"]
    assert wg_advice.recommendation == "min-cut" and wg_measured < 0.85
    assert cp_advice.recommendation == "hash" and cp_measured > 0.85
    # ...and overall at least 3 of the 4 datasets line up.
    assert correct >= 3
    # Predicted ratios rank the graphs the same way measurement does on the
    # paper's pair.
    assert wg_advice.predicted_ratio < cp_advice.predicted_ratio
