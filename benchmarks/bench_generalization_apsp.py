"""Extension bench — §IX: "heuristics ... can be leveraged ... for graph
applications beyond BC".

The swath machinery is engine-agnostic (it only reads superstep stats and
injects start messages), so the same sizing + initiation heuristics should
work unchanged for any multi-root traversal.  This bench repeats the Fig. 4
and Fig. 6 experiments with **APSP** instead of BC and asserts the same
qualitative wins; the §IX generalization claim, demonstrated rather than
asserted.
"""

from repro.analysis import bc_scenario, run_traversal, tables
from repro.scheduling import (
    AdaptiveSizer,
    DynamicPeakDetect,
    SamplingSizer,
    SequentialInitiation,
    StaticSizer,
)

from helpers import banner, fmt_seconds, run_once


def run_apsp_heuristics():
    # Calibrate the memory regime against APSP's own footprint.
    sc = bc_scenario("WG", num_workers=8, kind="apsp")
    cfg = sc.config()
    roots = sc.roots[: sc.base_swath]
    out = {"scenario": sc}
    out["baseline"] = run_traversal(
        sc.graph, cfg, roots, kind="apsp", sizer=StaticSizer(sc.base_swath)
    )
    out["sampling"] = run_traversal(
        sc.graph, cfg, roots, kind="apsp", sizer=SamplingSizer(sc.target_bytes)
    )
    out["adaptive"] = run_traversal(
        sc.graph, cfg, roots, kind="apsp", sizer=AdaptiveSizer(sc.target_bytes)
    )
    size = max(2, sc.base_swath // 4)
    out["seq-initiation"] = run_traversal(
        sc.graph, cfg, roots, kind="apsp",
        sizer=StaticSizer(size), initiation=SequentialInitiation(),
    )
    out["dyn-initiation"] = run_traversal(
        sc.graph, cfg, roots, kind="apsp",
        sizer=StaticSizer(size), initiation=DynamicPeakDetect(),
    )
    return out


def test_heuristics_generalize_to_apsp(benchmark):
    r = run_once(benchmark, run_apsp_heuristics)
    sc = r["scenario"]

    banner("Extension (§IX): swath heuristics applied unchanged to APSP (WG)")
    base = r["baseline"].total_time
    rows = []
    for name in ("baseline", "sampling", "adaptive"):
        run = r[name]
        rows.append([
            name, fmt_seconds(run.total_time), f"{base / run.total_time:.2f}x",
            f"{run.result.trace.peak_memory / sc.capacity_bytes:.2f}",
        ])
    seq, dyn = r["seq-initiation"], r["dyn-initiation"]
    rows.append([
        "dynamic initiation (vs seq)", fmt_seconds(dyn.total_time),
        f"{seq.total_time / dyn.total_time:.2f}x", "-",
    ])
    print(tables.table(
        ["config (APSP)", "sim. time", "speedup", "peak/physical"], rows
    ))
    print("\nSame code path as the BC benches — only the vertex program "
          "changed; the heuristics port because they consume nothing but "
          "superstep statistics.")

    assert r["baseline"].result.trace.peak_memory > sc.capacity_bytes
    for name in ("sampling", "adaptive"):
        assert base / r[name].total_time > 1.5
        assert r[name].result.trace.peak_memory <= 1.05 * sc.capacity_bytes
    assert seq.total_time / dyn.total_time > 1.1