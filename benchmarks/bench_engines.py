"""Extension bench — host wall-clock of the three execution backends.

The simulated-cloud clock is identical across backends by construction
(bit-equal results, same accounting); what differs is *host* wall-clock:

* **sequential** (``BSPEngine``) — the baseline interpreter loop;
* **threaded** (``ThreadedBSPEngine``) — pooled compute phase, bounded by
  the GIL for pure-Python ``compute()``;
* **process** (``repro.dist.ProcessBSPEngine``) — real worker processes,
  paying serialization per superstep to escape the GIL, the Pregel.NET
  worker-per-VM shape (§III).

On a single-core runner expect sequential ≤ threaded ≤ process (the
overheads, not the speedups); on a many-core host with a compute-heavy
program the ordering inverts.  The measured times land in
``BENCH_engines.json`` so runs on different hosts can be compared.
"""

import json
import time

from repro.algorithms import PageRankProgram
from repro.bsp import JobSpec, run_job, run_job_process, run_job_threaded
from repro.graph import generators as gen

from helpers import banner, run_once

ITERATIONS = 20
NUM_WORKERS = 4

RUNNERS = {
    "sequential": run_job,
    "threaded": run_job_threaded,
    "process": run_job_process,
}


def make_job(graph):
    return JobSpec(
        program=PageRankProgram(ITERATIONS), graph=graph,
        num_workers=NUM_WORKERS,
    )


def bench_graph():
    return gen.watts_strogatz(2000, 8, 0.1, seed=42)


def test_engines_wall_clock(benchmark):
    graph = bench_graph()
    results = {}
    wall = {}

    def run_all():
        for name, runner in RUNNERS.items():
            t0 = time.perf_counter()
            results[name] = runner(make_job(graph))
            wall[name] = time.perf_counter() - t0
        return results["sequential"]

    run_once(benchmark, run_all)

    seq = results["sequential"]
    banner(
        f"Engine wall-clock: PageRank x{ITERATIONS}, "
        f"|V|={graph.num_vertices}, {NUM_WORKERS} workers"
    )
    print(f"{'engine':<12} {'host wall':>10} {'vs sequential':>14}")
    for name in RUNNERS:
        rel = wall[name] / wall["sequential"]
        print(f"{name:<12} {wall[name]:>9.3f}s {rel:>13.2f}x")

    # Same simulation regardless of backend.
    for name, res in results.items():
        assert res.values == seq.values, f"{name} diverged from sequential"
        assert res.total_time == seq.total_time

    payload = {
        "workload": {
            "app": "pagerank",
            "iterations": ITERATIONS,
            "num_vertices": graph.num_vertices,
            "num_workers": NUM_WORKERS,
        },
        "wall_clock_seconds": wall,
        "simulated_seconds": seq.total_time,
        "supersteps": seq.supersteps,
    }
    with open("BENCH_engines.json", "w") as f:
        json.dump(payload, f, indent=2)
    print("wrote BENCH_engines.json")
