"""Figure 3 — messages transferred per worker across supersteps.

Paper (WG graph, 8 workers): PageRank is a flat line (~637k messages per
worker per superstep for 30 supersteps); BC and APSP show a *triangle
waveform* peaking mid-traversal (4.7M and 3M peak messages for a single
swath of 7 roots) — the non-uniform profile that motivates swath scheduling.
"""

import numpy as np

from repro.analysis import run_pagerank, run_traversal, tables

from helpers import banner, run_once

SWATH = 7  # the paper's Fig. 3 swath size


def collect_profiles(sc):
    cfg = sc.unconstrained_config()
    pr = run_pagerank(sc.graph, cfg, iterations=30)
    bc = run_traversal(sc.graph, cfg, range(SWATH), kind="bc")
    apsp = run_traversal(sc.graph, cfg, range(SWATH), kind="apsp")
    workers = cfg.num_workers
    return {
        "PageRank": pr.trace.series_messages() / workers,
        "BC": bc.result.trace.series_messages() / workers,
        "APSP": apsp.result.trace.series_messages() / workers,
    }


def test_fig03_message_profiles(benchmark, wg_scenario):
    series = run_once(benchmark, collect_profiles, wg_scenario)

    banner(f"Figure 3: avg messages/worker per superstep (WG, swath of {SWATH})")
    for name in ("PageRank", "BC", "APSP"):
        s = series[name]
        print(
            f"{name:<9s} peak={s.max():>8.0f} steps={len(s):>3d} "
            f"{tables.sparkline(s, width=50)}"
        )
    print("\nPaper shape: PageRank flat; BC/APSP triangle waveform, BC peak "
          "above APSP's (4.7M vs 3M at SNAP scale).")

    pr, bc, apsp = series["PageRank"], series["BC"], series["APSP"]
    # PageRank: constant across steady-state supersteps.
    steady = pr[1:-1]
    assert steady.std() / steady.mean() < 0.01
    # BC/APSP: interior peak with ramp-up and drain-down.
    for s in (bc, apsp):
        peak = int(np.argmax(s))
        assert 0 < peak < len(s) - 1
        assert s.max() > 5 * max(s[0], s[-1], 1)
    # BC's backward phase lifts its peak above APSP's.
    assert bc.max() > apsp.max()
