"""Shared benchmark fixtures.

Every bench regenerates one table or figure of the paper at
``BENCH_SCALE`` (see ``repro.analysis.scenarios``), prints a
paper-vs-measured comparison, and times the underlying experiment run via
pytest-benchmark (single round — the experiments are deterministic
simulations, so repetition only measures interpreter noise).
"""

from __future__ import annotations

import pytest

from repro.analysis import bc_scenario


def run_once(benchmark, fn, *args, **kwargs):
    """Benchmark ``fn`` with a single round and return its result."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)


@pytest.fixture(scope="session")
def wg_scenario():
    return bc_scenario("WG")


@pytest.fixture(scope="session")
def cp_scenario():
    return bc_scenario("CP")


def banner(title: str) -> None:
    print()
    print("=" * 72)
    print(title)
    print("=" * 72)
