"""Extension bench — BSP on preemptible (spot) VMs.

Beyond the paper's on-demand cost analysis: spot capacity is ~70% cheaper
but evicts workers; Pregel-style checkpoint/rollback turns evictions into
recoverable failures at the price of checkpoint I/O and replay.  This bench
runs PageRank on spot fleets across eviction rates and reports the cost and
runtime against on-demand, locating the break-even.

Evictions are sampled from the failure-free trace (slight underestimate of
spot pain: replayed supersteps are not re-sampled) with one victim per
superstep at most; prices are pro-rata, as everywhere in the paper.
"""

from repro.algorithms import PageRankProgram
from repro.analysis import tables
from repro.bsp import BSPEngine, JobSpec
from repro.cloud import scaled_large, spot_failure_schedule, spot_price
from repro.cloud.costmodel import SCALED_PERF_MODEL
from repro.graph import datasets

from helpers import banner, fmt_seconds, run_once

DISCOUNT = 0.3  # pay 30% of on-demand
WORKERS = 8
#: Checkpoint cadence and a restart cost scaled to the regime's seconds.
PERF = SCALED_PERF_MODEL.without(restart_time=3.0, checkpoint_bandwidth=2e6)


def run_spot_study():
    g = datasets.load("SD", scale=0.5)
    vm = scaled_large(1 << 62)

    def job(**kw):
        return JobSpec(
            program=PageRankProgram(iterations=30), graph=g,
            num_workers=WORKERS, vm_spec=kw.pop("vm_spec", vm),
            perf_model=PERF, **kw,
        )

    on_demand = BSPEngine(job()).run()
    rows = {"on-demand": (on_demand, 0)}
    for rate in (5.0, 20.0, 60.0):  # evictions per VM-hour (simulated time)
        schedule = spot_failure_schedule(
            on_demand.trace, WORKERS, evictions_per_hour=rate, seed=7
        )
        res = BSPEngine(
            job(
                vm_spec=spot_price(vm, DISCOUNT),
                checkpoint_interval=5,
                failure_schedule=schedule,
            )
        ).run()
        rows[f"spot @{rate:g}/h"] = (res, len(schedule))
    return rows


def test_spot_market(benchmark):
    rows = run_once(benchmark, run_spot_study)

    banner("Extension: BSP on preemptible VMs (PageRank on SD, 8 workers)")
    base_res, _ = rows["on-demand"]
    out = []
    for name, (res, evictions) in rows.items():
        out.append([
            name,
            fmt_seconds(res.total_time),
            f"{res.total_time / base_res.total_time:.2f}x",
            f"${res.total_cost:.4f}",
            f"{res.total_cost / base_res.total_cost:.2f}x",
            len(res.recoveries),
        ])
    print(tables.table(
        ["fleet", "sim. time", "norm. time", "cost", "norm. cost", "recoveries"],
        out,
    ))
    print(f"\nSpot pays {DISCOUNT:.0%} of the on-demand rate; checkpoints "
          "every 5 supersteps; each eviction triggers a coordinated "
          "rollback.  Low eviction rates are nearly pure savings; high "
          "rates burn the discount in replay time.")

    results = {k: v[0] for k, v in rows.items()}
    base = results["on-demand"]
    calm = results["spot @5/h"]
    stormy = results["spot @60/h"]
    # Calm spot is much cheaper at modest slowdown.
    assert calm.total_cost < 0.6 * base.total_cost
    assert calm.total_time < 1.6 * base.total_time
    # Heavier eviction rates cost progressively more time.
    assert stormy.total_time > calm.total_time
    # Every spot run still produces the correct PageRank (determinism).
    import numpy as np

    for name, res in results.items():
        assert np.allclose(res.values_array(), base.values_array(), atol=1e-9)