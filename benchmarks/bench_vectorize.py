"""Extension bench — the vectorization front-end and dense executor.

Two numbers matter for the kernel-plan pipeline and both land in
``BENCH_vectorize.json``:

* **Analysis throughput** — ``lift_paths`` over every VertexProgram in
  the repo (bundled algorithms + examples), repeated; the front-end must
  stay editor-loop cheap like the rest of ``repro check``.
* **Dense-ref speedup** — lifted PageRank interpreted from its KernelPlan
  (NumPy gather/scatter over CSR) vs the per-vertex simulation engine on
  a web-Google-scale synthetic analogue, same values to 1e-9.  The
  acceptance floor is 5x; the gap is the whole argument for lifting.

A third table compares **fused vs unfused plans**: each algorithm's raw
lifted plan against ``optimize_plan``'s output on the same dense
executor (the hoist/CSE passes move arc-space payload evaluation into
vertex space).  Fused must never be slower, and at least two algorithms
must clear the 1.2x fusion floor from the issue.
"""

import json
import math
import time
from pathlib import Path

import numpy as np

from repro.algorithms import (
    ConnectedComponentsProgram,
    PageRankProgram,
    SSSPProgram,
)
from repro.bsp import BSPEngine, JobSpec
from repro.bsp.dense_ref import DenseRefEngine
from repro.check.planopt import optimize_plan
from repro.check.vectorize import lift_of, lift_paths
from repro.graph.csr import CSRGraph
from repro.graph.datasets import load

from helpers import banner, run_once

REPO_ROOT = Path(__file__).resolve().parents[1]
TARGETS = [
    REPO_ROOT / "src" / "repro" / "algorithms",
    REPO_ROOT / "examples",
]

#: Re-lift the corpus this many times to measure above timer noise.
ANALYSIS_REPEATS = 20

#: WG analogue scale: ~56k vertices / ~145k arcs — big enough that the
#: per-vertex interpreter loop dominates, small enough for CI seconds.
GRAPH_SCALE = 32
ITERATIONS = 10

#: Acceptance floor from the issue: dense-ref PageRank must beat the
#: simulation engine by at least this factor on this workload.
SPEEDUP_FLOOR = 5.0

#: Fusion floors: optimized plans may never run slower than raw plans
#: (5% timer-noise allowance), and at least this many algorithms must
#: beat the raw plan by FUSION_FLOOR.
FUSION_FLOOR = 1.2
FUSION_WINNERS = 2
FUSION_REPEATS = 5


def _fused_vs_unfused():
    """Best-of-N raw-plan vs optimized-plan timings on the dense engine."""
    graph = load("WG", scale=GRAPH_SCALE)
    rng = np.random.default_rng(5)
    weighted = CSRGraph(
        graph.num_vertices, graph.indptr, graph.indices,
        undirected=graph.undirected,
        weights=rng.uniform(0.5, 3.0, graph.indices.shape[0]),
    )
    cases = [
        ("pagerank", lambda: PageRankProgram(iterations=ITERATIONS), graph),
        ("sssp", lambda: SSSPProgram(source=0), weighted),
        ("cc", ConnectedComponentsProgram, graph),
    ]

    rows = []
    for name, factory, g in cases:
        raw = lift_of(factory()).plan
        fused = optimize_plan(raw).plan

        def best_of(plan):
            best, result = float("inf"), None
            for _ in range(FUSION_REPEATS):
                job = JobSpec(program=factory(), graph=g, num_workers=1)
                t0 = time.perf_counter()
                result = DenseRefEngine(job, plan=plan).run()
                best = min(best, time.perf_counter() - t0)
            return best, result

        t_raw, res_raw = best_of(raw)
        t_fused, res_fused = best_of(fused)
        # Honesty first: the fused plan must produce the same answer.
        assert res_raw.values == res_fused.values, name
        assert res_raw.supersteps == res_fused.supersteps, name
        rows.append({
            "algorithm": name,
            "unfused_seconds": t_raw,
            "fused_seconds": t_fused,
            "fusion_speedup": t_raw / t_fused,
            "fused_digest": fused.digest,
        })
    return rows


def test_vectorize_front_end_and_dense_speedup(benchmark):
    graph = load("WG", scale=GRAPH_SCALE)

    def job(num_workers: int) -> JobSpec:
        return JobSpec(
            program=PageRankProgram(iterations=ITERATIONS),
            graph=graph,
            num_workers=num_workers,
        )

    def run_all():
        t0 = time.perf_counter()
        for _ in range(ANALYSIS_REPEATS):
            verdicts = lift_paths(TARGETS)
        t_analysis = time.perf_counter() - t0

        t0 = time.perf_counter()
        dense = DenseRefEngine(job(4)).run()
        t_dense = time.perf_counter() - t0

        t0 = time.perf_counter()
        sim = BSPEngine(job(1)).run()
        t_sim = time.perf_counter() - t0
        return verdicts, t_analysis, dense, t_dense, sim, t_sim

    verdicts, t_analysis, dense, t_dense, sim, t_sim = run_once(
        benchmark, run_all
    )

    # Honesty first: the speedup only counts if the answers agree.
    assert sim.supersteps == dense.supersteps
    mismatches = sum(
        1
        for v in sim.values
        if not math.isclose(
            sim.values[v], dense.values[v], rel_tol=1e-9, abs_tol=1e-12
        )
    )
    assert mismatches == 0

    lifted = sum(1 for v in verdicts if v.lifted)
    refused = len(verdicts) - lifted
    programs_per_sec = len(verdicts) * ANALYSIS_REPEATS / t_analysis
    speedup = t_sim / t_dense

    banner(
        f"vectorize front-end: {len(verdicts)} programs "
        f"({lifted} lifted / {refused} refused), dense-ref PageRank on "
        f"WG x{GRAPH_SCALE} ({graph.num_vertices:,} vertices)"
    )
    print(f"{'programs/sec':<20} {programs_per_sec:>10.1f}")
    print(f"{'sim engine s':<20} {t_sim:>10.3f}")
    print(f"{'dense-ref s':<20} {t_dense:>10.3f}")
    print(f"{'speedup':<20} {speedup:>10.1f}x (floor {SPEEDUP_FLOOR}x)")

    assert lifted >= 6, "bundled liftable algorithms went missing"
    assert speedup >= SPEEDUP_FLOOR, (
        f"dense-ref speedup {speedup:.1f}x fell below the "
        f"{SPEEDUP_FLOOR}x acceptance floor"
    )

    planopt_rows = _fused_vs_unfused()
    print(f"{'algorithm':<12} {'unfused s':>10} {'fused s':>10} {'fusion':>8}")
    for row in planopt_rows:
        print(
            f"{row['algorithm']:<12} {row['unfused_seconds']:>10.3f} "
            f"{row['fused_seconds']:>10.3f} "
            f"{row['fusion_speedup']:>7.2f}x"
        )
    for row in planopt_rows:
        assert row["fused_seconds"] <= row["unfused_seconds"] * 1.05, (
            f"fused {row['algorithm']} plan ran slower than unfused "
            f"({row['fused_seconds']:.3f}s vs {row['unfused_seconds']:.3f}s)"
        )
    winners = sum(
        1 for row in planopt_rows if row["fusion_speedup"] >= FUSION_FLOOR
    )
    assert winners >= FUSION_WINNERS, (
        f"only {winners} algorithm(s) cleared the {FUSION_FLOOR}x fusion "
        f"floor (need {FUSION_WINNERS}): {planopt_rows}"
    )

    payload = {
        "workload": {
            "targets": [str(t.relative_to(REPO_ROOT)) for t in TARGETS],
            "programs": len(verdicts),
            "lifted": lifted,
            "refused": refused,
            "analysis_repeats": ANALYSIS_REPEATS,
            "graph": {
                "dataset": "WG",
                "scale": GRAPH_SCALE,
                "num_vertices": graph.num_vertices,
                "num_arcs": graph.num_arcs,
            },
            "iterations": ITERATIONS,
        },
        "analysis_programs_per_second": programs_per_sec,
        "sim_seconds": t_sim,
        "dense_ref_seconds": t_dense,
        "speedup": speedup,
        "speedup_floor": SPEEDUP_FLOOR,
        "supersteps": dense.supersteps,
        "value_mismatches": mismatches,
        "planopt": {
            "fusion_floor": FUSION_FLOOR,
            "fusion_winners_required": FUSION_WINNERS,
            "repeats": FUSION_REPEATS,
            "rows": planopt_rows,
        },
    }
    with open("BENCH_vectorize.json", "w") as f:
        json.dump(payload, f, indent=2)
    print("wrote BENCH_vectorize.json")
