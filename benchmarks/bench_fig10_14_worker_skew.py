"""Figures 10, 11, 13, 14 — per-worker messages in BC's peak supersteps.

Paper: hashed assignment spreads messages roughly evenly over all 8 workers
in every superstep (Figs. 10, 13); METIS concentrates traversal activity in
few partitions, skewing per-worker message counts — mildly on WG (Fig. 11),
strongly on CP (Fig. 14), where one worker emits ~2x another's messages in
superstep 9 (4M vs 2M).  Under BSP's barrier that skew sets superstep time.
"""

import numpy as np

from repro.analysis import RunConfig, paper_partitioners, run_traversal, tables
from repro.cloud.costmodel import SCALED_PERF_MODEL
from repro.scheduling import StaticSizer

from helpers import banner, run_once

ROOTS = {"WG": 30, "CP": 25}


def peak_step_skew(trace, top_k=4):
    """Per-worker messages for the top_k busiest supersteps."""
    msgs = trace.series_messages()
    idx = np.argsort(msgs)[-top_k:][::-1]
    rows = []
    for i in sorted(int(j) for j in idx):
        per = trace[i].messages_per_worker
        rows.append((i, per))
    return rows


def run_skew(scenarios):
    out = {}
    for ds, sc in scenarios.items():
        for name in ("Hash", "METIS"):
            part = paper_partitioners()[name]
            cfg = RunConfig(
                num_workers=8, partitioner=part, perf_model=SCALED_PERF_MODEL
            ).with_memory(1 << 62)
            run = run_traversal(
                sc.graph, cfg, range(ROOTS[ds]), kind="bc", sizer=StaticSizer(10)
            )
            out[(ds, name)] = peak_step_skew(run.result.trace)
    return out


def imbalance(per: np.ndarray) -> float:
    return float(per.max() / per.mean()) if per.mean() else 1.0


def test_fig10_to_14_per_worker_messages(benchmark, wg_scenario, cp_scenario):
    skews = run_once(
        benchmark, run_skew, {"WG": wg_scenario, "CP": cp_scenario}
    )

    banner("Figures 10/11/13/14: per-worker messages in peak supersteps (BC)")
    for (ds, name), rows in skews.items():
        fig = {("WG", "Hash"): 10, ("WG", "METIS"): 11,
               ("CP", "Hash"): 13, ("CP", "METIS"): 14}[(ds, name)]
        print(f"\n-- Fig. {fig}: {ds} / {name}")
        table_rows = []
        for step, per in rows:
            table_rows.append(
                [f"superstep {step}"]
                + [f"{int(v):,}" for v in per]
                + [f"{imbalance(per):.2f}"]
            )
        print(
            tables.table(
                ["", *[f"W{i}" for i in range(8)], "max/mean"], table_rows
            )
        )

    print("\nPaper: hash ~even everywhere; METIS skewed, worst on CP "
          "(~2x spread between workers in one superstep).")

    def mean_imb(ds, name):
        return float(np.mean([imbalance(per) for _, per in skews[(ds, name)]]))

    for ds in ("WG", "CP"):
        assert mean_imb(ds, "Hash") < 1.45  # near-uniform under hashing
    # The §VII crux is CP: METIS concentrates traversal there, far beyond
    # both CP/Hash and WG/METIS (on WG hub-degree noise dominates either way).
    assert mean_imb("CP", "METIS") > 1.25 * mean_imb("CP", "Hash")
    assert mean_imb("CP", "METIS") > 1.25 * mean_imb("WG", "METIS")
    # The paper's "~2x in one superstep" moment exists on CP/METIS.
    worst_cp = max(imbalance(per) for _, per in skews[("CP", "METIS")])
    assert worst_cp > 1.7
