"""Extension bench — GPS-style dynamic re-partitioning vs the paper's §VII.

§II credits GPS with "dynamic re-partitioning approaches"; §VII shows
offline min-cut partitioning can backfire on imbalance-prone graphs.  The
natural question: does *online* re-partitioning — start from free hashing,
migrate misplaced vertices while the job runs — capture the cut benefit
without the offline pass, and does it too fall to CP's imbalance trap?
"""

from repro.analysis import RunConfig, run_traversal, tables
from repro.algorithms import BCProgram
from repro.algorithms import bc as bc_mod
from repro.bsp import JobSpec, run_job
from repro.cloud.costmodel import SCALED_PERF_MODEL
from repro.partition import MultilevelPartitioner
from repro.partition.dynamic import DynamicRepartitioningEngine
from repro.scheduling import StaticSizer, SwathController

from helpers import banner, fmt_seconds, run_once

ROOTS = {"WG": 30, "CP": 25}


def make_job(graph, roots, partitioner=None):
    ctrl = SwathController(
        roots=list(roots), start_factory=bc_mod.start_messages,
        sizer=StaticSizer(10),
    )
    extra = {} if partitioner is None else {"partitioner": partitioner}
    cfg = RunConfig(num_workers=8, perf_model=SCALED_PERF_MODEL, **extra)
    return JobSpec(
        program=BCProgram(), graph=graph, num_workers=8,
        partitioner=cfg.partitioner, vm_spec=cfg.with_memory(1 << 62).vm_spec,
        perf_model=SCALED_PERF_MODEL, initially_active=False, observers=[ctrl],
    )


def run_comparison():
    from repro.graph import datasets

    out = {}
    for ds in ("WG", "CP"):
        g = datasets.load(ds, scale=0.3)
        roots = range(ROOTS[ds])
        static_hash = run_job(make_job(g, roots))
        metis = run_job(
            make_job(
                g, roots,
                MultilevelPartitioner(seed=1, imbalance=1.15, refine_passes=12),
            )
        )
        engine = DynamicRepartitioningEngine(make_job(g, roots), interval=3)
        dynamic = engine.run()
        out[ds] = {
            "hash": static_hash.total_time,
            "metis": metis.total_time,
            "dynamic": dynamic.total_time,
            "moved": engine.total_moved,
            "remote_start": engine.migrations[0].remote_fraction_before
            if engine.migrations else 1.0,
            "remote_end": engine.migrations[-1].remote_fraction_after
            if engine.migrations else 1.0,
        }
    return out


def test_dynamic_repartitioning(benchmark):
    r = run_once(benchmark, run_comparison)

    banner("Extension: online re-partitioning (GPS-style) vs offline (BC)")
    rows = []
    for ds, d in r.items():
        rows.append([
            ds,
            fmt_seconds(d["hash"]),
            f"{d['metis'] / d['hash']:.2f}",
            f"{d['dynamic'] / d['hash']:.2f}",
            d["moved"],
            f"{d['remote_start']:.0%} -> {d['remote_end']:.0%}",
        ])
    print(tables.table(
        ["graph", "hash time", "METIS vs hash", "dynamic vs hash",
         "vertices moved", "remote edges (during run)"],
        rows,
    ))
    print("\nOnline migration recovers much of the offline cut win on WG "
          "with zero preprocessing.  On CP it does something offline METIS "
          "cannot: the balance guard stops migration *before* partitions "
          "fully align with communities, so it banks a moderate cut without "
          "the §VII frontier concentration — beating both hash (even cut, "
          "high traffic) and METIS (minimal cut, stalled barriers).")

    wg, cp = r["WG"], r["CP"]
    # Online beats static hashing on both graphs, zero preprocessing.
    assert wg["dynamic"] < 0.95 * wg["hash"]
    assert cp["dynamic"] < 0.95 * cp["hash"]
    # Cut genuinely improved during the run on both graphs.
    for d in r.values():
        assert d["remote_end"] < 0.75 * d["remote_start"]
    # The CP sweet spot: moderate online cut beats METIS's minimal cut.
    assert cp["dynamic"] < cp["metis"]
    # On WG the offline pass still wins outright (it can cut deeper safely).
    assert wg["metis"] < wg["dynamic"]