"""Figure 2 — total time (log scale) for PageRank, BC and APSP.

Paper: on 8 workers, BC and APSP take ~4 orders of magnitude longer than
PageRank on the same graphs (WG, CP); LJ is shown for PageRank only (it did
not fit worker memory for BC/APSP).  BC/APSP totals are extrapolated from a
root subset, the paper's own §V methodology.

The absolute gap scales with |V| (the extrapolation factor n/roots); at our
~1000x-smaller analogues the expected gap is ~1.5-2.5 orders of magnitude.
We report the measured ratios and assert the ordering PR << APSP < BC.
"""

import math

from repro.analysis import (
    bc_scenario,
    extrapolate_runtime,
    run_pagerank,
    run_traversal,
    tables,
)

from helpers import banner, fmt_seconds, run_once

ROOTS = 20


def run_apps(scenarios):
    out = {}
    for ds, sc in scenarios.items():
        cfg = sc.unconstrained_config()
        n = sc.graph.num_vertices
        out[(ds, "PageRank")] = run_pagerank(sc.graph, cfg, iterations=30).total_time
        for kind, label in (("bc", "BC"), ("apsp", "APSP")):
            t = run_traversal(sc.graph, cfg, range(ROOTS), kind=kind).total_time
            out[(ds, label)] = extrapolate_runtime(t, ROOTS, n).projected_seconds
    # LJ appears in Fig. 2 for PageRank only — it "would not fit within the
    # available physical memory of the workers for BC and APSP".
    from repro.analysis import RunConfig
    from repro.cloud.costmodel import SCALED_PERF_MODEL
    from repro.graph import datasets

    lj = datasets.load("LJ", scale=0.3)
    lj_cfg = RunConfig(num_workers=8, perf_model=SCALED_PERF_MODEL).with_memory(1 << 62)
    out[("LJ", "PageRank")] = run_pagerank(lj, lj_cfg, iterations=30).total_time
    return out


def test_fig02_application_runtimes(benchmark, wg_scenario, cp_scenario):
    times = run_once(
        benchmark, run_apps, {"WG": wg_scenario, "CP": cp_scenario}
    )

    banner("Figure 2: total runtime, PageRank vs BC vs APSP (8 workers)")
    rows = []
    for ds in ("WG", "CP"):
        pr = times[(ds, "PageRank")]
        for app in ("PageRank", "APSP", "BC"):
            t = times[(ds, app)]
            rows.append(
                [ds, app, fmt_seconds(t),
                 f"10^{math.log10(t / pr):.1f} x PR" if app != "PageRank" else "-"]
            )
    rows.append(["LJ", "PageRank", fmt_seconds(times[("LJ", "PageRank")]),
                 "- (BC/APSP don't fit, as in the paper)"])
    print(tables.table(["graph", "app", "sim. time", "vs PageRank"], rows))
    print(
        "\nPaper: BC/APSP ~4 orders of magnitude over PageRank at SNAP scale;"
        "\nthe gap scales with |V| — at analogue scale ~1.5-2.5 orders is the"
        "\nexpected shape (superlinear O(|V||E|) vs O(iters*|E|))."
    )

    for ds in ("WG", "CP"):
        assert times[(ds, "BC")] > times[(ds, "APSP")] > 5 * times[(ds, "PageRank")]
        assert times[(ds, "BC")] > 25 * times[(ds, "PageRank")]
