"""Extension bench — the network plane: codec throughput and transports.

Three layers of the ``repro.net`` stack, measured separately so a
regression is attributable:

* **codec** — ``pack_frame``/``unpack_frame`` frames/sec and bytes/sec
  on the two shapes the engine actually ships: tiny control frames and
  bulk NumPy message buckets (out-of-band pickle-5 buffers);
* **transport round-trips** — the same bulk frame echoed through a
  ``multiprocessing`` pipe (the ``process`` backend's channel) vs a
  TCP-loopback socket with stream framing (the ``tcp`` backend's
  channel), isolating what the socket hop costs per barrier;
* **end to end** — PageRank on a web-Google analogue through the
  ``sim``, ``process``, and ``tcp`` engines: bit-equal results by
  contract, host wall-clock recorded for comparison.

Results land in ``BENCH_net.json``.
"""

import json
import multiprocessing as mp
import socket
import threading
import time

import numpy as np

from repro.algorithms import PageRankProgram
from repro.bsp import JobSpec, run_job, run_job_process
from repro.graph.datasets import webgoogle_analogue
from repro.net import (
    LocalDaemonFleet,
    StreamDecoder,
    encode_stream_frame,
    pack_frame,
    run_job_tcp,
    unpack_frame,
)

from helpers import banner, run_once

ITERATIONS = 10
NUM_WORKERS = 4
DATASET_SCALE = 0.2  # ~1.6k-vertex WG analogue

CODEC_REPEATS = 300
ROUNDTRIPS = 200


def control_frame():
    """The shape of a barrier command: tiny, no out-of-band buffers."""
    return ("compute", 17, (5, {"sum": 1.25}))


def bulk_frame():
    """The shape of a message bucket: vertex ids + float payloads."""
    ids = np.arange(20_000, dtype=np.int64)
    payloads = np.random.default_rng(7).random(20_000)
    return ("deliver", 17, [(3, ids), (4, payloads)])


def _bench_codec(obj, repeats):
    blob = pack_frame(obj)
    t0 = time.perf_counter()
    for _ in range(repeats):
        unpack_frame(pack_frame(obj))
    elapsed = time.perf_counter() - t0
    return {
        "frame_bytes": len(blob),
        "frames_per_second": repeats / elapsed,
        "bytes_per_second": repeats * len(blob) / elapsed,
    }


def _pipe_echo(conn):
    while True:
        data = conn.recv_bytes()
        if data == b"stop":
            return
        conn.send_bytes(data)


def _bench_pipe_roundtrips(blob, rounds):
    ctx = mp.get_context(
        "fork" if "fork" in mp.get_all_start_methods() else None
    )
    parent, child = ctx.Pipe(duplex=True)
    proc = ctx.Process(target=_pipe_echo, args=(child,), daemon=True)
    proc.start()
    child.close()
    parent.send_bytes(blob)  # warm-up
    parent.recv_bytes()
    t0 = time.perf_counter()
    for _ in range(rounds):
        parent.send_bytes(blob)
        parent.recv_bytes()
    elapsed = time.perf_counter() - t0
    parent.send_bytes(b"stop")
    proc.join()
    return elapsed


def _tcp_echo(server):
    conn, _ = server.accept()
    with conn:
        decoder = StreamDecoder()
        while True:
            data = conn.recv(1 << 20)
            if not data:
                return
            for msg in decoder.feed(data):
                if msg == "stop":
                    return
                conn.sendall(encode_stream_frame(msg))


def _bench_tcp_roundtrips(obj, rounds):
    server = socket.create_server(("127.0.0.1", 0))
    thread = threading.Thread(target=_tcp_echo, args=(server,), daemon=True)
    thread.start()
    wire = encode_stream_frame(obj)
    with socket.create_connection(server.getsockname()) as sock:
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        decoder = StreamDecoder()

        def roundtrip():
            sock.sendall(wire)
            while True:
                msgs = decoder.feed(sock.recv(1 << 20))
                if msgs:
                    return msgs[0]

        roundtrip()  # warm-up
        t0 = time.perf_counter()
        for _ in range(rounds):
            roundtrip()
        elapsed = time.perf_counter() - t0
        sock.sendall(encode_stream_frame("stop"))
    thread.join()
    server.close()
    return elapsed


def make_job(graph):
    return JobSpec(
        program=PageRankProgram(ITERATIONS), graph=graph,
        num_workers=NUM_WORKERS,
    )


def test_net_plane(benchmark):
    graph = webgoogle_analogue(DATASET_SCALE)
    payload = {"workload": {
        "app": "pagerank", "iterations": ITERATIONS,
        "dataset": graph.name, "num_vertices": graph.num_vertices,
        "num_workers": NUM_WORKERS,
    }}

    # -- codec throughput ---------------------------------------------
    codec = {
        "control": _bench_codec(control_frame(), CODEC_REPEATS),
        "bulk": _bench_codec(bulk_frame(), CODEC_REPEATS),
    }
    payload["codec"] = codec
    banner("Frame codec (pack + unpack round-trip)")
    print(f"{'frame':<10} {'size':>10} {'frames/s':>12} {'MB/s':>10}")
    for name, row in codec.items():
        print(
            f"{name:<10} {row['frame_bytes']:>9}B "
            f"{row['frames_per_second']:>12.0f} "
            f"{row['bytes_per_second'] / 1e6:>10.1f}"
        )
    # Bulk frames move at least as many bytes/sec as tiny control
    # frames: out-of-band buffers must not collapse throughput.
    assert codec["bulk"]["bytes_per_second"] > codec["control"]["bytes_per_second"]

    # -- transport round-trips ----------------------------------------
    blob = pack_frame(bulk_frame())
    pipe_s = _bench_pipe_roundtrips(blob, ROUNDTRIPS)
    tcp_s = _bench_tcp_roundtrips(bulk_frame(), ROUNDTRIPS)
    payload["transport_roundtrips"] = {
        "rounds": ROUNDTRIPS,
        "frame_bytes": len(blob),
        "pipe_seconds": pipe_s,
        "tcp_loopback_seconds": tcp_s,
        "pipe_rt_us": pipe_s / ROUNDTRIPS * 1e6,
        "tcp_rt_us": tcp_s / ROUNDTRIPS * 1e6,
    }
    banner(f"Transport round-trips ({len(blob)}B bulk frame x{ROUNDTRIPS})")
    print(f"pipe         {pipe_s / ROUNDTRIPS * 1e6:>10.1f} us/rt")
    print(f"tcp loopback {tcp_s / ROUNDTRIPS * 1e6:>10.1f} us/rt")

    # -- end to end ----------------------------------------------------
    results, wall = {}, {}

    def run_all():
        fleet = LocalDaemonFleet(3)
        try:
            for name, runner, kwargs in (
                ("sim", run_job, {}),
                ("process", run_job_process, {}),
                ("tcp", run_job_tcp, {"endpoints": fleet.endpoints()}),
            ):
                t0 = time.perf_counter()
                results[name] = runner(make_job(graph), **kwargs)
                wall[name] = time.perf_counter() - t0
        finally:
            fleet.shutdown()
        return results["sim"]

    run_once(benchmark, run_all)

    sim = results["sim"]
    banner(
        f"End to end: PageRank x{ITERATIONS} on {graph.name} "
        f"(|V|={graph.num_vertices}), {NUM_WORKERS} workers, 3 TCP daemons"
    )
    print(f"{'engine':<10} {'host wall':>10} {'vs sim':>8}")
    for name in results:
        print(f"{name:<10} {wall[name]:>9.3f}s {wall[name] / wall['sim']:>7.2f}x")
    for name, res in results.items():
        assert res.values == sim.values, f"{name} diverged from sim"
        assert res.total_time == sim.total_time
    payload["end_to_end"] = {
        "wall_clock_seconds": wall,
        "simulated_seconds": sim.total_time,
        "supersteps": sim.supersteps,
    }

    with open("BENCH_net.json", "w") as f:
        json.dump(payload, f, indent=2)
    print("wrote BENCH_net.json")
