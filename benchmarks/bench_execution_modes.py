"""Extension bench — the framework-design alternatives the paper rejects.

§II/§IV lay out the design space this library's default mode sits in:

* **memory-buffered BSP** (Pregel.NET, GPS): fastest, but message buffering
  creates the memory pressure the swath heuristics manage;
* **disk-buffered BSP** (Giraph/Hama of the era): no message memory
  pressure, but "uniformly adds a multiplicative overhead that is
  comparable to the disk-based communication of Hadoop" (§IV);
* **MapReduce-style iteration** (Hadoop-layered frameworks, §II-A): no
  resident state at all — every superstep re-communicates the graph
  structure, "the overhead associated with communicating the graph
  structure to Map or Reduce tasks at each iteration".

This bench runs the same BC workload in all three modes, plus the paper's
answer to the memory-pressure problem (memory mode + swath heuristics),
quantifying the §IV design rationale: heuristics beat disk buffering, which
beats thrashing, and MR-style iteration trails everything.
"""

from dataclasses import replace

from repro.analysis import RunConfig, run_traversal, tables
from repro.cloud.costmodel import SCALED_PERF_MODEL
from repro.scheduling import AdaptiveSizer, StaticSizer

from helpers import banner, fmt_seconds, run_once

#: Disk bandwidth scaled like the other data-plane coefficients (the scaled
#: regime multiplies per-op costs ~1000x, so bytes/s divides accordingly).
DISK_BW = 50e3


def run_modes(sc):
    roots = sc.roots[: sc.base_swath]
    cap = sc.capacity_bytes
    out = {}

    mem_model = SCALED_PERF_MODEL
    disk_model = replace(SCALED_PERF_MODEL, disk_buffering=True, disk_bandwidth=DISK_BW)
    mr_model = replace(
        SCALED_PERF_MODEL, mapreduce_iteration=True, disk_bandwidth=DISK_BW
    )

    def cfg(model):
        return RunConfig(num_workers=8, perf_model=model).with_memory(cap)

    out["memory BSP (thrashing baseline)"] = run_traversal(
        sc.graph, cfg(mem_model), roots, kind="bc", sizer=StaticSizer(sc.base_swath)
    )
    out["memory BSP + swath heuristics"] = run_traversal(
        sc.graph, cfg(mem_model), roots, kind="bc",
        sizer=AdaptiveSizer(sc.target_bytes),
    )
    out["disk-buffered BSP (Giraph-style)"] = run_traversal(
        sc.graph, cfg(disk_model), roots, kind="bc",
        sizer=StaticSizer(sc.base_swath),
    )
    out["MapReduce-style iteration"] = run_traversal(
        sc.graph, cfg(mr_model), roots, kind="bc", sizer=StaticSizer(sc.base_swath)
    )
    return out


def test_execution_modes(benchmark, wg_scenario):
    sc = wg_scenario
    runs = run_once(benchmark, run_modes, sc)

    banner("Extension: framework execution modes (BC on WG, 8 workers)")
    rows = []
    for name, run in runs.items():
        trace = run.result.trace
        rows.append([
            name,
            fmt_seconds(run.total_time),
            f"{trace.peak_memory / sc.capacity_bytes:.2f}",
            "yes" if trace.peak_memory > sc.capacity_bytes else "no",
            run.result.supersteps,
        ])
    print(tables.table(
        ["mode", "sim. time", "peak mem/physical", "spills?", "supersteps"],
        rows,
    ))
    print("\n§IV's design rationale, quantified: disk buffering removes the "
          "memory pressure but pays uniform I/O on every message; the swath "
          "heuristics keep memory-speed messaging AND avoid the spill — "
          "which is why the paper builds heuristics instead of falling back "
          "to disk.  MR-style iteration re-ships the graph each superstep "
          "and trails everything (§II-A's motivation for Pregel).")

    t = {k: v.total_time for k, v in runs.items()}
    mem_peak = runs["disk-buffered BSP (Giraph-style)"].result.trace.peak_memory
    # Disk buffering eliminates message memory pressure entirely...
    assert mem_peak < sc.capacity_bytes
    # ...and beats the thrashing baseline on this memory-starved setup...
    assert t["disk-buffered BSP (Giraph-style)"] < t["memory BSP (thrashing baseline)"]
    # ...but the paper's heuristics beat disk buffering...
    assert t["memory BSP + swath heuristics"] < 0.8 * t["disk-buffered BSP (Giraph-style)"]
    # ...and MR-style iteration is the slowest of all modes.
    assert t["MapReduce-style iteration"] == max(t.values())