"""Figure 7 — message transfers over time for each initiation heuristic.

Paper (BC on WG): sequential initiation shows message traffic repeatedly
peaking and falling to zero (poor utilization); Static-6 maintains a higher
sustained message rate; Dynamic is slightly more conservative but automated.
"Flatter is better."
"""

import numpy as np

from repro.analysis import run_traversal, tables
from repro.scheduling import (
    DynamicPeakDetect,
    SequentialInitiation,
    StaticEveryN,
    StaticSizer,
)

from helpers import banner, run_once


def collect_traces(sc):
    cfg = sc.config()
    roots = sc.roots[: sc.base_swath]
    size = max(2, sc.base_swath // 4)
    out = {}
    for name, policy in (
        ("Sequential", SequentialInitiation()),
        ("Static-6", StaticEveryN(6)),
        ("Dynamic", DynamicPeakDetect()),
    ):
        run = run_traversal(
            sc.graph, cfg, roots, kind="bc",
            sizer=StaticSizer(size), initiation=policy,
        )
        out[name] = run.result.trace.series_messages().astype(float)
    return out


def flatness(series: np.ndarray) -> float:
    """Sustained-utilization score: mean / peak (1.0 = perfectly flat)."""
    return float(series.mean() / series.max()) if series.max() else 0.0


def idle_fraction(series: np.ndarray) -> float:
    """Fraction of supersteps with near-zero traffic (<5% of peak)."""
    if not series.max():
        return 1.0
    return float(np.count_nonzero(series < 0.05 * series.max()) / len(series))


def test_fig07_message_transfer_traces(benchmark, wg_scenario):
    traces = run_once(benchmark, collect_traces, wg_scenario)

    banner("Figure 7: message transfers over time per initiation policy (WG)")
    for name, s in traces.items():
        print(
            f"{name:<11s} steps={len(s):>3d} flatness={flatness(s):4.2f} "
            f"idle={idle_fraction(s):4.2f}  {tables.sparkline(s, width=50)}"
        )
    print("\nPaper: sequential repeatedly drains to zero; Static-6 sustains "
          "the highest rate; Dynamic close behind, fully automated.")

    seq, st6, dyn = traces["Sequential"], traces["Static-6"], traces["Dynamic"]
    # Overlap policies are flatter than sequential...
    assert flatness(st6) > flatness(seq)
    assert flatness(dyn) > flatness(seq)
    # ...and waste fewer near-idle supersteps.
    assert idle_fraction(st6) <= idle_fraction(seq)
    assert idle_fraction(dyn) <= idle_fraction(seq)
