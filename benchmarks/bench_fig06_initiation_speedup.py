"""Figure 6 — swath-initiation heuristic speedup vs sequential initiation.

Paper (BC, 8 workers): overlapping consecutive swaths flattens resource
usage and removes tail supersteps; Static-N depends on the graph and N
(best N tracks the average shortest-path length — N=4 works best on the
larger CP graph; Static-6 is the hand-picked optimum on WG); the Dynamic
(message phase-change) heuristic achieves up to 24% speedup on WG with no
tuning.
"""

from repro.analysis import run_traversal, tables
from repro.scheduling import (
    DynamicPeakDetect,
    SequentialInitiation,
    StaticEveryN,
    StaticSizer,
)

from helpers import banner, fmt_seconds, run_once


def run_fig6(sc):
    cfg = sc.config()
    roots = sc.roots[: sc.base_swath]
    size = max(2, sc.base_swath // 4)  # a good fixed size from Fig. 4's regime
    out = {}
    for name, policy in (
        ("Sequential", SequentialInitiation()),
        ("Static-2", StaticEveryN(2)),
        ("Static-4", StaticEveryN(4)),
        ("Static-6", StaticEveryN(6)),
        ("Static-8", StaticEveryN(8)),
        ("Dynamic", DynamicPeakDetect()),
    ):
        out[name] = run_traversal(
            sc.graph, cfg, roots, kind="bc",
            sizer=StaticSizer(size), initiation=policy,
        )
    return out


def report(ds, sc, runs):
    base = runs["Sequential"].total_time
    rows = []
    for name, run in runs.items():
        rows.append(
            [
                name,
                fmt_seconds(run.total_time),
                f"{base / run.total_time:.2f}x",
                run.result.supersteps,
                f"{run.result.trace.peak_memory / sc.capacity_bytes:.2f}",
            ]
        )
    print(
        tables.table(
            ["initiation", "sim. time", "speedup", "supersteps", "peak/phys"],
            rows, title=f"-- {ds}",
        )
    )


def check(runs):
    base = runs["Sequential"].total_time
    dyn = base / runs["Dynamic"].total_time
    assert dyn > 1.1, f"dynamic initiation only {dyn:.2f}x"
    # Overlap reduces cumulative supersteps (the §VI-C mechanism).
    assert runs["Dynamic"].result.supersteps < runs["Sequential"].result.supersteps
    # Static-N degrades as N grows past the graph's path-length scale.
    assert runs["Static-8"].total_time > runs["Static-4"].total_time


def test_fig06_wg(benchmark, wg_scenario):
    runs = run_once(benchmark, run_fig6, wg_scenario)
    banner("Figure 6: swath-initiation heuristic speedup (BC, 8 workers)")
    report("WG", wg_scenario, runs)
    print("Paper: up to 24% (1.24x) for Dynamic on WG; Static-6 optimal but "
          "hand-picked; too-large N under-utilizes, too-small N stacks peaks.")
    check(runs)


def test_fig06_cp(benchmark, cp_scenario):
    runs = run_once(benchmark, run_fig6, cp_scenario)
    report("CP", cp_scenario, runs)
    check(runs)
