"""Shared helpers for the benchmark harness (see conftest.py for fixtures)."""

from __future__ import annotations


def run_once(benchmark, fn, *args, **kwargs):
    """Benchmark ``fn`` with a single round and return its result.

    The experiments are deterministic simulations; repeated rounds would
    only measure interpreter noise while multiplying wall time.
    """
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)


def banner(title: str) -> None:
    print()
    print("=" * 72)
    print(title)
    print("=" * 72)


def fmt_seconds(s: float) -> str:
    """Human-scale rendering of simulated seconds."""
    if s >= 3600:
        return f"{s / 3600:.1f} h"
    if s >= 60:
        return f"{s / 60:.1f} min"
    return f"{s:.1f} s"
