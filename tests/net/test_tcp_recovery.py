"""Daemon loss and socket drops: checkpointed recovery over TCP.

Satellite contract: a mid-superstep socket disconnect (daemon SIGKILLed,
connection RST) recovers from the last committed checkpoint, lands the
lost workers on surviving daemons (respawn-or-reassign), produces
bit-identical extract() output, and rolls its :class:`RunTimeline` back
byte-identically to the process-engine kill/respawn path.
"""

import os

import pytest

from repro.algorithms import PageRankProgram
from repro.bsp import JobSpec, run_job, run_job_process
from repro.net import TcpBSPEngine
from repro.obs import FlightRecorder, RunTimeline


def pr_job(graph, **kw):
    return JobSpec(
        program=PageRankProgram(8), graph=graph, num_workers=4,
        checkpoint_interval=2, **kw,
    )


class TestScheduledDaemonKill:
    def test_daemon_sigkill_recovers_bit_identical(self, small_world):
        clean = run_job(pr_job(small_world))
        engine = TcpBSPEngine(pr_job(small_world), auto_daemons=3)
        engine.kill_worker_at(2, 1)
        res = engine.run()
        assert res.recoveries and res.recoveries[0].failed_worker == 1
        assert clean.values == res.values
        # Recovery costs simulated time; it must never be free.
        assert res.total_time > clean.total_time

    def test_multi_session_daemon_death(self, small_world):
        """Killing one daemon loses *every* worker it hosts at once.

        4 workers round-robin onto 3 daemons: the daemon of worker 0 also
        hosts worker 3.  Both are lost in one kill, both land on the
        survivors, and the output stays bit-identical.
        """
        clean = run_job(pr_job(small_world))
        flight = FlightRecorder()
        engine = TcpBSPEngine(
            pr_job(small_world, flight=flight), auto_daemons=3
        )
        engine.kill_worker_at(2, 0)
        res = engine.run()
        assert res.recoveries
        assert clean.values == res.values
        reconnected = {
            e.attrs["connected_worker"]
            for e in flight.snapshot() if e.kind == "worker-reconnect"
        }
        assert {0, 3} <= reconnected  # co-hosted worker 3 died too
        # The survivors absorbed the orphans: only 2 daemons remain.
        endpoints = {r["endpoint"] for r in engine.worker_liveness()}
        assert len(endpoints) == 2

    def test_failure_schedule_matches_sim_accounting(self, small_world):
        schedule = {2: 3}
        sim = run_job(pr_job(small_world, failure_schedule=schedule))
        engine = TcpBSPEngine(
            pr_job(small_world, failure_schedule=schedule), auto_daemons=3
        )
        tcp = engine.run()
        assert sim.values == tcp.values
        assert sim.total_time == pytest.approx(tcp.total_time)
        assert [r.resumed_from for r in sim.recoveries] == [
            r.resumed_from for r in tcp.recoveries
        ]


class TestTimelineRollback:
    def test_rollback_byte_identical_to_pipe_backend(self, small_world):
        """The same kill produces the same RunTimeline on both backends.

        Rows, step metas, annotations, and the rolled-back-row count are
        compared as values — rollback over TCP must discard exactly what
        the process engine's SIGKILL/respawn path discards.

        The failure (superstep 2) strikes *before* the first periodic
        checkpoint (interval 4), so recovery resumes from superstep 0 and
        the already-committed rows for steps 0-1 really are discarded.
        """

        def job(timeline):
            return JobSpec(
                program=PageRankProgram(8), graph=small_world,
                num_workers=4, checkpoint_interval=4,
                failure_schedule={2: 2}, timeline=timeline,
            )

        tl_pipe, tl_tcp = RunTimeline(), RunTimeline()
        pipe = run_job_process(job(tl_pipe))
        engine = TcpBSPEngine(job(tl_tcp), auto_daemons=3)
        tcp = engine.run()
        assert pipe.values == tcp.values
        assert tl_pipe.rolled_back_rows > 0
        assert tl_tcp.rolled_back_rows == tl_pipe.rolled_back_rows
        assert tl_tcp.steps == tl_pipe.steps
        assert tl_tcp.rows == tl_pipe.rows
        assert tl_tcp.events == tl_pipe.events


class _DieOnce(PageRankProgram):
    """Kills its hosting daemon mid-compute, once (flag-file guarded).

    Module-level so it pickles by reference across the TCP handshake.
    ``os._exit`` takes the whole daemon down mid-superstep — no reply, no
    FIN handshake — which is exactly the unplanned-crash shape the
    liveness monitor must catch.
    """

    def __init__(self, iterations, flag_path):
        super().__init__(iterations)
        self.flag = str(flag_path)

    def compute(self, ctx, state, messages):
        if (
            ctx.superstep == 3
            and ctx.vertex_id == 0
            and not os.path.exists(self.flag)
        ):
            with open(self.flag, "w") as f:
                f.write("x")
            os._exit(1)
        return super().compute(ctx, state, messages)


class TestUnplannedDaemonCrash:
    def test_mid_compute_daemon_exit_recovers(self, small_world, tmp_path):
        flag = tmp_path / "died-once"
        clean = run_job(pr_job(small_world))
        engine = TcpBSPEngine(
            JobSpec(
                program=_DieOnce(8, flag), graph=small_world,
                num_workers=4, checkpoint_interval=2,
            ),
            auto_daemons=3,
            heartbeat_timeout=10.0,
        )
        res = engine.run()
        assert flag.exists()
        assert res.recoveries
        assert clean.values == res.values

    def test_unplanned_crash_without_checkpoints_raises(self, ring10, tmp_path):
        engine = TcpBSPEngine(
            JobSpec(
                program=_DieOnce(8, tmp_path / "flag"),
                graph=ring10, num_workers=2,
            ),
            auto_daemons=2,
            heartbeat_timeout=10.0,
        )
        with pytest.raises(RuntimeError, match="checkpointing"):
            engine.run()


class TestKillDaemonOf:
    def test_returns_the_killed_endpoint(self, ring10):
        engine = TcpBSPEngine(pr_job(ring10), auto_daemons=2)
        try:
            target = engine._handles[1].endpoint
            assert engine.kill_daemon_of(1) == target
            assert not engine._handles[1].healthy()
        finally:
            engine.shutdown()
