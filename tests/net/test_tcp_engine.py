"""TcpBSPEngine: bit-equality with the sequential engine over real
localhost daemons, determinism certification, runner/CLI integration,
and transport-labelled telemetry.
"""

import numpy as np
import pytest

from repro.algorithms import BCProgram, PageRankProgram, betweenness_reference
from repro.algorithms import bc as bc_mod
from repro.analysis import RunConfig, run_pagerank, run_traversal
from repro.bsp import JobSpec, VertexProgram, run_job, run_job_process
from repro.check.sanitizer import certify_determinism
from repro.net import LocalDaemonFleet, TcpBSPEngine, run_job_tcp
from repro.obs import FlightRecorder, MetricsRegistry, to_json_dict


class _LambdaState(VertexProgram):
    """Fixture the RPC011 gate rejects: a lambda stored on ``self``."""

    def __init__(self):
        self.score = lambda x: x

    def compute(self, ctx, state, messages):
        ctx.vote_to_halt()
        return self.score(len(messages))


@pytest.fixture(scope="module")
def fleet3():
    """Three shared localhost daemons — 4 workers force multi-session."""
    fleet = LocalDaemonFleet(3)
    yield fleet
    fleet.shutdown()


def pr_job(graph, **kw):
    return JobSpec(
        program=PageRankProgram(8), graph=graph, num_workers=4, **kw
    )


class TestEquivalence:
    def test_pagerank_identical(self, small_world, fleet3):
        seq = run_job(pr_job(small_world))
        tcp = run_job_tcp(pr_job(small_world), endpoints=fleet3.endpoints())
        assert seq.values == tcp.values
        assert seq.supersteps == tcp.supersteps
        assert seq.total_time == pytest.approx(tcp.total_time)
        assert (
            seq.trace.series_messages().tolist()
            == tcp.trace.series_messages().tolist()
        )

    def test_bc_identical(self, small_world, fleet3):
        roots = range(6)
        mk = lambda: JobSpec(
            program=BCProgram(), graph=small_world, num_workers=3,
            initially_active=False,
            initial_messages=bc_mod.start_messages(roots),
        )
        seq = run_job(mk())
        tcp = run_job_tcp(mk(), endpoints=fleet3.endpoints())
        assert seq.values == tcp.values
        ref = betweenness_reference(small_world, roots=roots)
        assert np.allclose(tcp.values_array(), ref, atol=1e-9)

    def test_matches_pipe_backend_exactly(self, ring10, fleet3):
        proc = run_job_process(pr_job(ring10))
        tcp = run_job_tcp(pr_job(ring10), endpoints=fleet3.endpoints())
        assert proc.values == tcp.values
        assert proc.total_time == pytest.approx(tcp.total_time)

    def test_auto_spawned_fleet(self, ring10):
        # No endpoints at all: the engine spawns (and tears down) its own
        # localhost daemons.
        seq = run_job(pr_job(ring10))
        tcp = run_job_tcp(pr_job(ring10), auto_daemons=2)
        assert seq.values == tcp.values

    def test_certify_determinism_tcp(self, small_world):
        report = certify_determinism(
            lambda: PageRankProgram(6), small_world, num_workers=4,
            engine="tcp",
        )
        assert report.ok
        assert report.engine == "tcp"


class TestRunnerIntegration:
    def test_run_pagerank_engine_tcp(self, small_world, fleet3):
        sim = run_pagerank(small_world, RunConfig(num_workers=4), iterations=6)
        tcp = run_pagerank(
            small_world,
            RunConfig(num_workers=4, engine="tcp",
                      tcp_hosts=fleet3.endpoints()),
            iterations=6,
        )
        assert sim.values == tcp.values

    def test_run_traversal_engine_tcp(self, small_world, fleet3):
        sim = run_traversal(
            small_world, RunConfig(num_workers=3), range(4), kind="bc"
        )
        tcp = run_traversal(
            small_world,
            RunConfig(num_workers=3, engine="tcp",
                      tcp_hosts=fleet3.endpoints()),
            range(4), kind="bc",
        )
        assert sim.result.values == tcp.result.values
        assert sim.num_swaths == tcp.num_swaths

    def test_workers_file_config(self, ring10, fleet3, tmp_path):
        f = tmp_path / "workers"
        f.write_text(
            "# shared test fleet\n"
            + "\n".join(f"{h}:{p}" for h, p in fleet3.endpoints())
            + "\n"
        )
        sim = run_pagerank(ring10, RunConfig(num_workers=2), iterations=4)
        tcp = run_pagerank(
            ring10,
            RunConfig(num_workers=2, engine="tcp", tcp_hosts=str(f)),
            iterations=4,
        )
        assert sim.values == tcp.values


class TestTelemetry:
    def test_dist_metrics_carry_the_transport_label(self, ring10, fleet3):
        m = MetricsRegistry()
        run_job_tcp(
            pr_job(ring10, metrics=m), endpoints=fleet3.endpoints()
        )
        labelled = {
            metric["name"]
            for metric in to_json_dict(m)["metrics"]
            if metric["name"].startswith("dist_")
            and all(
                s["labels"].get("transport") == "tcp"
                for s in metric["series"]
            )
        }
        assert "dist_frames_total" in labelled
        assert "dist_workers_alive" in labelled
        assert "dist_heartbeats_total" in labelled

    def test_pipe_backend_labels_pipe(self, ring10):
        m = MetricsRegistry()
        run_job_process(pr_job(ring10, metrics=m))
        for metric in to_json_dict(m)["metrics"]:
            if metric["name"] == "dist_frames_total":
                assert metric["series"][0]["labels"]["transport"] == "pipe"
                return
        pytest.fail("dist_frames_total not recorded")

    def test_flight_records_worker_connects(self, ring10, fleet3):
        flight = FlightRecorder()
        run_job_tcp(
            pr_job(ring10, flight=flight), endpoints=fleet3.endpoints()
        )
        connects = [
            e for e in flight.snapshot() if e.kind == "worker-connect"
        ]
        assert {e.attrs["connected_worker"] for e in connects} == {0, 1, 2, 3}
        assert all(e.attrs["transport"] == "tcp" for e in connects)
        # Endpoints name the daemon that accepted the session.
        endpoints = {f"{h}:{p}" for h, p in fleet3.endpoints()}
        assert all(e.attrs["endpoint"] in endpoints for e in connects)

    def test_worker_liveness_names_endpoints(self, ring10, fleet3):
        engine = TcpBSPEngine(pr_job(ring10), endpoints=fleet3.endpoints())
        try:
            rows = engine.worker_liveness()
            assert len(rows) == 4
            assert all(r["alive"] for r in rows)
            assert all(r["transport"] == "tcp" for r in rows)
            endpoints = {f"{h}:{p}" for h, p in fleet3.endpoints()}
            assert all(r["endpoint"] in endpoints for r in rows)
            # 4 workers on 3 daemons: at least one daemon multi-hosts.
            assert len({r["endpoint"] for r in rows}) == 3
        finally:
            engine.shutdown()


class TestClockAlignment:
    def test_handshake_synchronizes_every_channel(self, ring10, fleet3):
        engine = TcpBSPEngine(
            pr_job(ring10, flight=FlightRecorder()),
            endpoints=fleet3.endpoints(),
        )
        try:
            for h in engine._handles:
                assert h.clock.synchronized
                stats = h.clock.stats()
                assert stats["handshakes"] >= 1
                # loopback: same physical clock, so the estimate must be
                # tiny, and bounded by the exchange's own uncertainty
                assert abs(stats["offset_seconds"]) <= (
                    stats["uncertainty_seconds"] + 0.05
                )
                # the daemon advertises its session recorder's epoch so
                # shipped events can be restamped (flight attached)
                assert h.flight_epoch is not None
        finally:
            engine.shutdown()

    def test_clock_sync_surfaces_in_flight_and_metrics(self, ring10, fleet3):
        flight = FlightRecorder()
        m = MetricsRegistry()
        run_job_tcp(
            pr_job(ring10, flight=flight, metrics=m),
            endpoints=fleet3.endpoints(),
        )
        synced = [e for e in flight.snapshot() if e.kind == "clock-sync"]
        assert {e.attrs["synced_worker"] for e in synced} == {0, 1, 2, 3}
        assert all("offset_seconds" in e.attrs for e in synced)
        names = {
            metric["name"] for metric in to_json_dict(m)["metrics"]
        }
        assert "dist_clock_offset_seconds" in names
        assert "dist_clock_uncertainty_seconds" in names

    def test_merged_remote_events_monotonic_per_worker(self, ring10, fleet3):
        # Restamped through ClockSync, each worker's shipped events must
        # land in its own recording order on the coordinator's clock,
        # and the events_since cursor must stay monotonic.
        flight = FlightRecorder(capacity=8192)
        run_job_tcp(
            pr_job(ring10, flight=flight), endpoints=fleet3.endpoints()
        )
        events, cursor = flight.events_since(-1)
        assert cursor == events[-1].seq
        seqs = [e.seq for e in events]
        assert seqs == sorted(seqs)
        per_worker: dict[int, list] = {}
        for e in events:
            if "worker_seq" in e.attrs:  # merged remote events
                per_worker.setdefault(e.worker, []).append(e)
        assert set(per_worker) == {0, 1, 2, 3}
        for evs in per_worker.values():
            # child order preserved...
            worker_seqs = [e.attrs["worker_seq"] for e in evs]
            assert worker_seqs == sorted(worker_seqs)
            # ...and the restamped coordinator-clock stamps are
            # monotonic with it (same-host daemons: offset ~0)
            hosts = [e.host for e in evs]
            assert hosts == sorted(hosts)


class TestConfigValidation:
    def test_empty_endpoint_list_rejected(self, ring10):
        with pytest.raises(ValueError, match="empty"):
            TcpBSPEngine(pr_job(ring10), endpoints=[])

    def test_unreachable_endpoints_rejected(self, ring10):
        with pytest.raises(Exception, match="no worker daemon accepted"):
            TcpBSPEngine(
                pr_job(ring10),
                endpoints=[("127.0.0.1", 1)],
                connect_timeout=0.5,
            )

    def test_gate_failure_tears_down_auto_fleet(self, ring10):
        # An unpicklable program fails the RPC011 gate *before* launch;
        # the auto-spawned daemon fleet must not leak.
        import multiprocessing

        from repro.dist import ProgramSafetyError

        before = set(multiprocessing.active_children())
        with pytest.raises(ProgramSafetyError):
            TcpBSPEngine(
                JobSpec(program=_LambdaState(), graph=ring10, num_workers=2),
                auto_daemons=1,
            )
        leaked = [
            p for p in multiprocessing.active_children()
            if p not in before and p.is_alive()
        ]
        assert not leaked
