"""The ``repro worker`` daemon: status probes, handshake refusals,
fleet capacity accounting, and the worker CLI.
"""

import json
import socket

import pytest

from repro.net.codec import StreamDecoder, encode_stream_frame
from repro.net.daemon import PROTOCOL_VERSION
from repro.net.tcp import (
    LocalDaemonFleet,
    WorkerFleet,
    probe_endpoint,
)
from repro.net.transport import TransportError


@pytest.fixture(scope="module")
def one_daemon():
    fleet = LocalDaemonFleet(1)
    yield fleet.endpoints()[0]
    fleet.shutdown()


def _roundtrip(endpoint, frame, timeout=10.0):
    """Open a fresh connection, send one frame, return the first reply."""
    host, port = endpoint
    with socket.create_connection((host, port), timeout=timeout) as sock:
        sock.sendall(encode_stream_frame(frame))
        decoder = StreamDecoder()
        sock.settimeout(timeout)
        while True:
            data = sock.recv(1 << 16)
            if not data:
                raise AssertionError("daemon closed without replying")
            msgs = decoder.feed(data)
            if msgs:
                return msgs[0]


class TestStatusProbe:
    def test_probe_returns_vitals(self, one_daemon):
        vitals = probe_endpoint(one_daemon)
        assert vitals["version"] == PROTOCOL_VERSION
        assert vitals["pid"] > 0
        assert vitals["sessions_active"] == 0
        assert vitals["endpoint"].endswith(f":{one_daemon[1]}")

    def test_probe_unreachable_raises(self):
        with pytest.raises(OSError):
            probe_endpoint(("127.0.0.1", 1), timeout=0.5)


class TestHandshakeRefusals:
    def test_version_mismatch_refused(self, one_daemon):
        kind, _epoch, msg = _roundtrip(
            one_daemon, ("hello", 0, {"version": PROTOCOL_VERSION + 99})
        )
        assert kind == "error"
        assert "version mismatch" in msg

    def test_malformed_hello_refused(self, one_daemon):
        kind, _epoch, msg = _roundtrip(one_daemon, ("hello", 0, "garbage"))
        assert kind == "error"
        assert "malformed hello" in msg

    def test_non_hello_first_frame_refused(self, one_daemon):
        kind, _epoch, msg = _roundtrip(one_daemon, ("compute", 0, None))
        assert kind == "error"
        assert "expected hello or status" in msg

    def test_capacity_refusal(self):
        fleet = LocalDaemonFleet(1, max_sessions=0)
        try:
            kind, _epoch, msg = _roundtrip(
                fleet.endpoints()[0],
                ("hello", 0, {"version": PROTOCOL_VERSION}),
            )
            assert kind == "error"
            assert "capacity" in msg
        finally:
            fleet.shutdown()


class TestWorkerFleet:
    def test_capacity_sums_advertised_slots(self):
        fleet = LocalDaemonFleet(2, max_sessions=3)
        try:
            pool = WorkerFleet(fleet.endpoints())
            assert pool.capacity() == 6
        finally:
            fleet.shutdown()

    def test_unreachable_daemons_count_zero(self, one_daemon):
        pool = WorkerFleet(
            [one_daemon, ("127.0.0.1", 1)],
            default_slots=5, probe_timeout=0.5,
        )
        rows = pool.probe()
        assert [r["alive"] for r in rows] == [True, False]
        # The live daemon advertises no max_sessions => default_slots.
        assert pool.capacity() == 5

    def test_probe_rows_name_their_endpoints(self, one_daemon):
        (row,) = WorkerFleet([one_daemon]).probe()
        assert row["endpoint"] == f"{one_daemon[0]}:{one_daemon[1]}"


class TestDaemonTelemetry:
    def test_attach_telemetry_labels_vitals_with_endpoint(self):
        import asyncio

        from repro.net.daemon import WorkerDaemon, _DaemonHealth
        from repro.obs import MetricsRegistry, to_prometheus_text

        async def run():
            daemon = WorkerDaemon()
            await daemon.start()
            try:
                registry = MetricsRegistry()
                daemon.attach_telemetry(registry)
                text = to_prometheus_text(registry)
                assert (
                    f'repro_daemon_sessions_active{{host="{daemon.endpoint}"'
                    in text
                )
                assert 'transport="tcp"' in text
                assert "repro_daemon_sessions_total" in text
                assert "repro_daemon_heartbeats_sent_total" in text
                health = _DaemonHealth(daemon).snapshot()
                assert health["ok"] and health["state"] == "serving"
                assert not health["at_capacity"]
            finally:
                await daemon.close()

        asyncio.run(run())

    def test_discover_members_flags_telemetry_less_daemon(self, one_daemon):
        # Fleet daemons run without a telemetry server: federation must
        # degrade to a per-endpoint error, not a crash.
        from repro.obs import discover_members

        host, port = one_daemon
        members, errors = discover_members([one_daemon, f"{host}:{port}"])
        assert members == []
        assert errors == {
            f"{host}:{port}": "daemon exposes no telemetry server"
        }

    def test_discover_members_reports_unreachable(self):
        from repro.obs import discover_members

        members, errors = discover_members(
            [("127.0.0.1", 1)], timeout=0.5
        )
        assert members == []
        assert list(errors) == ["127.0.0.1:1"]


class TestWorkerCli:
    def test_status_prints_vitals_json(self, one_daemon, capsys):
        from repro.cli import main

        host, port = one_daemon
        assert main(["worker", "status", f"{host}:{port}"]) == 0
        vitals = json.loads(capsys.readouterr().out)
        assert vitals["version"] == PROTOCOL_VERSION

    def test_status_unreachable_fails(self, capsys):
        from repro.cli import main

        assert main(["worker", "status", "127.0.0.1:1"]) == 1
        assert "repro worker" in capsys.readouterr().err

    def test_fleet_probe_is_what_the_guard_consumes(self, one_daemon):
        # WorkerFleet satisfies LiveFleetGuard's duck type end to end.
        from repro.elastic import LiveFixed, LiveFleetGuard

        class Eng:
            num_workers = 1

        guard = LiveFleetGuard(
            inner=LiveFixed(100),
            fleet=WorkerFleet([one_daemon], default_slots=4),
        )
        assert guard.decide(Eng(), None) == 4
        assert guard.vetoes == 1

    def test_transport_error_importable_from_net(self):
        import repro.net as net

        assert net.TransportError is TransportError
