"""The shared frame codec: round-trips, malformed input, stream framing.

Satellite contract: the codec extracted from repro.dist.frames is
transport-agnostic (both backends import this one module), rejects
truncated/oversized/trailing-garbage frames with a typed
:class:`FrameError`, and reassembles frames from arbitrary byte-stream
chunk boundaries.
"""

import pickle

import numpy as np
import pytest

from repro.net.codec import (
    MAX_FRAME_BYTES,
    STREAM_HEADER,
    FrameError,
    FrameTooLarge,
    StreamDecoder,
    encode_stream_frame,
    pack_frame,
    unpack_frame,
)


class TestRoundTrip:
    def test_plain_objects(self):
        for obj in (None, 42, "x", ("cmd", 3, {"k": [1, 2]}), b"raw"):
            assert unpack_frame(pack_frame(obj)) == obj

    def test_numpy_out_of_band(self):
        arr = np.arange(1000, dtype=np.float64)
        frame = pack_frame(("deliver", 1, arr))
        # The array bytes must ride out-of-band, not inside the pickle.
        assert len(frame) < 2 * arr.nbytes
        cmd, epoch, back = unpack_frame(frame)
        assert (cmd, epoch) == ("deliver", 1)
        assert np.array_equal(back, arr)

    def test_default_buffers_are_readonly_views(self):
        arr = np.arange(16, dtype=np.int64)
        back = unpack_frame(pack_frame(arr))
        assert not back.flags.writeable  # RPC001: messages are read-only
        with pytest.raises(ValueError):
            back[0] = 99

    def test_copy_yields_writable_private_buffers(self):
        arr = np.arange(16, dtype=np.int64)
        back = unpack_frame(pack_frame(arr), copy=True)
        assert back.flags.writeable
        back[0] = 99  # must not raise
        assert back[0] == 99

    def test_empty_payload_object(self):
        assert unpack_frame(pack_frame(())) == ()


class TestMalformed:
    def test_header_truncated(self):
        with pytest.raises(FrameError, match="header truncated"):
            unpack_frame(b"\x00\x00")

    def test_pickle_truncated(self):
        frame = pack_frame({"a": list(range(50))})
        with pytest.raises(FrameError, match="truncated"):
            unpack_frame(frame[:-3])

    def test_buffer_truncated(self):
        frame = pack_frame(np.arange(64, dtype=np.int64))
        with pytest.raises(FrameError, match="truncated"):
            unpack_frame(frame[:-1])

    def test_trailing_bytes(self):
        with pytest.raises(FrameError, match="trailing"):
            unpack_frame(pack_frame("x") + b"junk")

    def test_garbage_pickle(self):
        blob = (
            b"\x00\x00\x00\x00"          # n_buffers = 0
            + (8).to_bytes(8, "little")  # pickle_len = 8
            + b"notapkl!"
        )
        with pytest.raises(FrameError, match="does not decode"):
            unpack_frame(blob)

    def test_frame_error_is_a_value_error(self):
        # Pre-existing callers catch ValueError; the typed error must
        # keep satisfying them.
        assert issubclass(FrameError, ValueError)
        assert issubclass(FrameTooLarge, FrameError)


class TestStreamFraming:
    def test_encode_prefixes_the_frame_length(self):
        wire = encode_stream_frame(("ok", 0, None))
        (length,) = STREAM_HEADER.unpack_from(wire, 0)
        assert length == len(wire) - STREAM_HEADER.size
        assert unpack_frame(wire[STREAM_HEADER.size:]) == ("ok", 0, None)

    def test_encode_refuses_oversize(self):
        with pytest.raises(FrameTooLarge):
            encode_stream_frame(b"x" * 100, max_frame=50)

    def test_decoder_single_feed_many_frames(self):
        wire = b"".join(encode_stream_frame(i) for i in range(5))
        dec = StreamDecoder()
        assert dec.feed(wire) == [0, 1, 2, 3, 4]
        assert dec.pending_bytes == 0

    def test_decoder_byte_at_a_time(self):
        msgs = [("compute", 2, np.arange(7)), ("ok", 2, None)]
        wire = b"".join(encode_stream_frame(m) for m in msgs)
        dec = StreamDecoder()
        out = []
        for i in range(len(wire)):
            out.extend(dec.feed(wire[i:i + 1]))
        assert len(out) == 2
        assert out[0][0] == "compute" and np.array_equal(out[0][2], msgs[0][2])
        assert out[1] == ("ok", 2, None)
        assert dec.pending_bytes == 0

    def test_decoder_split_across_header(self):
        wire = encode_stream_frame("hello")
        dec = StreamDecoder()
        assert dec.feed(wire[:3]) == []       # partial header
        assert dec.pending_bytes == 3
        assert dec.feed(wire[3:]) == ["hello"]

    def test_decoder_oversize_raises_before_buffering(self):
        dec = StreamDecoder(max_frame=100)
        with pytest.raises(FrameTooLarge, match="declares"):
            dec.feed(STREAM_HEADER.pack(10**9))
        assert MAX_FRAME_BYTES == 1 << 31  # the default ceiling (2 GiB)


class TestDistShim:
    def test_dist_frames_reexports_the_codec(self):
        from repro.dist import frames
        from repro.net import codec

        assert frames.pack_frame is codec.pack_frame
        assert frames.unpack_frame is codec.unpack_frame
        assert frames.FrameError is codec.FrameError

    def test_dist_package_exports_survive(self):
        # The original import surface (tests, user code) keeps working.
        from repro.dist import FrameError, pack_frame, unpack_frame

        assert unpack_frame(pack_frame("x")) == "x"
        assert issubclass(FrameError, ValueError)

    def test_pickle_protocol_5(self):
        # Out-of-band buffers require protocol 5; the frame pickle must
        # declare it (first opcode: PROTO 5).
        frame = pack_frame("x")
        payload_start = 4 + 8
        assert frame[payload_start] == pickle.PROTO[0]
        assert frame[payload_start + 1] == 5
