"""The Transport/WorkerChannel interface: liveness clock, endpoint
parsing, and the elastic fleet-capacity guard.

Satellite contract: every heartbeat stamp and age in the transport plane
comes from the monotonic clock — wall-clock jumps (NTP steps) must never
fake a heartbeat timeout.
"""

import inspect

import pytest

import repro.net.transport as transport_mod
from repro.elastic import LiveFixed, LiveFleetGuard
from repro.net.tcp import load_workers_file, parse_endpoint
from repro.net.transport import (
    PipeTransport,
    Transport,
    TransportClosed,
    TransportError,
    WorkerChannel,
    monotonic_now,
)


class _StubChannel(WorkerChannel):
    """Minimal concrete channel for exercising base-class bookkeeping."""

    transport = "stub"

    def __init__(self, worker_id=0):
        super().__init__(worker_id, endpoint="stub:0")

    def send(self, msg):
        pass

    def recv(self, timeout):
        return None

    def drain_heartbeats(self):
        return 0

    def healthy(self):
        return True

    def death_reason(self):
        return "stub"

    def kill(self):
        pass

    def close(self):
        pass


class TestMonotonicClock:
    def test_heartbeat_age_uses_the_transport_clock(self, monkeypatch):
        now = [100.0]
        monkeypatch.setattr(transport_mod, "monotonic", lambda: now[0])
        ch = _StubChannel()
        ch.note_beat()
        now[0] += 3.5
        assert ch.heartbeat_age() == pytest.approx(3.5)
        ch.note_beat()
        assert ch.heartbeat_age() == pytest.approx(0.0)

    def test_monotonic_now_never_goes_backwards(self):
        samples = [monotonic_now() for _ in range(100)]
        assert samples == sorted(samples)

    def test_no_wall_clock_in_the_liveness_plane(self):
        # Regression guard for the monotonic-clock satellite: neither the
        # transport layer nor the coordinator may consult wall time for
        # liveness (time.time / datetime.now).
        import repro.dist.engine as dist_engine
        import repro.net.tcp as tcp_mod

        for mod in (transport_mod, dist_engine, tcp_mod):
            src = inspect.getsource(mod)
            assert "time.time(" not in src, mod.__name__
            assert "datetime.now" not in src, mod.__name__


class TestInterface:
    def test_transport_closed_is_a_transport_error(self):
        assert issubclass(TransportClosed, TransportError)
        assert issubclass(TransportError, RuntimeError)

    def test_default_kill_host_kills_the_channel(self):
        killed = []

        class T(Transport):
            name = "t"

            def launch(self, init):
                raise NotImplementedError

        class C(_StubChannel):
            def kill(self):
                killed.append(self.worker_id)

        T().kill_host(C(7))
        assert killed == [7]

    def test_pipe_transport_is_the_default_backend_shape(self):
        t = PipeTransport()
        assert t.name == "pipe"
        t.shutdown()  # idempotent no-op


class TestEndpointParsing:
    def test_host_port(self):
        assert parse_endpoint("10.0.0.5:9001") == ("10.0.0.5", 9001)
        assert parse_endpoint("  node-3:80 ") == ("node-3", 80)

    def test_ipv6(self):
        assert parse_endpoint("[::1]:9000") == ("::1", 9000)

    @pytest.mark.parametrize("bad", ["nohost", ":90", "host:", "[::1]"])
    def test_rejects_malformed(self, bad):
        with pytest.raises(ValueError, match="bad endpoint"):
            parse_endpoint(bad)

    def test_workers_file(self, tmp_path):
        f = tmp_path / "workers"
        f.write_text(
            "# fleet for the nightly run\n"
            "10.0.0.1:9000\n"
            "\n"
            "10.0.0.2:9000  # spare\n"
        )
        assert load_workers_file(f) == [
            ("10.0.0.1", 9000), ("10.0.0.2", 9000),
        ]

    def test_workers_file_must_name_endpoints(self, tmp_path):
        f = tmp_path / "empty"
        f.write_text("# nothing but comments\n")
        with pytest.raises(ValueError, match="no endpoints"):
            load_workers_file(f)


class _FakeFleet:
    def __init__(self, capacity):
        self._capacity = capacity
        self.probes = 0

    def capacity(self):
        self.probes += 1
        return self._capacity


class _FakeEngine:
    num_workers = 4


class TestLiveFleetGuard:
    def test_clamps_scale_out_to_capacity(self):
        fleet = _FakeFleet(capacity=6)
        guard = LiveFleetGuard(inner=LiveFixed(8), fleet=fleet)
        assert guard.decide(_FakeEngine(), None) == 6
        assert guard.vetoes == 1

    def test_scale_out_within_capacity_passes(self):
        guard = LiveFleetGuard(inner=LiveFixed(8), fleet=_FakeFleet(16))
        assert guard.decide(_FakeEngine(), None) == 8
        assert guard.vetoes == 0

    def test_scale_in_never_probes_the_fleet(self):
        fleet = _FakeFleet(capacity=0)
        guard = LiveFleetGuard(inner=LiveFixed(2), fleet=fleet)
        assert guard.decide(_FakeEngine(), None) == 2
        assert fleet.probes == 0  # steady state / shrink costs nothing

    def test_never_clamps_below_current_size(self):
        # A fleet that lost daemons mid-run reports capacity below the
        # running fleet; the guard holds rather than forcing a shrink.
        guard = LiveFleetGuard(inner=LiveFixed(8), fleet=_FakeFleet(2))
        assert guard.decide(_FakeEngine(), None) == 4

    def test_label_names_the_wrapped_policy(self):
        guard = LiveFleetGuard(inner=LiveFixed(8), fleet=_FakeFleet(1))
        assert guard.label == "FleetGuard(LiveFixed-8)"
