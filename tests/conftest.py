"""Shared fixtures: small deterministic graphs and networkx bridges."""

from __future__ import annotations

import networkx as nx
import numpy as np
import pytest

from repro.graph import generators as gen
from repro.graph.csr import CSRGraph


def to_networkx(graph: CSRGraph) -> nx.Graph | nx.DiGraph:
    """Convert a CSRGraph to networkx, respecting directedness."""
    g = nx.Graph() if graph.undirected else nx.DiGraph()
    g.add_nodes_from(range(graph.num_vertices))
    g.add_edges_from((int(u), int(v)) for u, v in graph.edge_array())
    return g


@pytest.fixture
def ring10() -> CSRGraph:
    return gen.ring(10)


@pytest.fixture
def path5() -> CSRGraph:
    return gen.path(5)


@pytest.fixture
def star8() -> CSRGraph:
    return gen.star(8)


@pytest.fixture
def k5() -> CSRGraph:
    return gen.complete(5)


@pytest.fixture
def tree3() -> CSRGraph:
    return gen.binary_tree(3)


@pytest.fixture
def small_world() -> CSRGraph:
    """A 60-vertex Watts-Strogatz graph used across algorithm tests."""
    return gen.watts_strogatz(60, 4, 0.3, seed=7)


@pytest.fixture
def ba_graph() -> CSRGraph:
    return gen.barabasi_albert(80, 2, seed=11)


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)
