"""Per-rule unit tests: a triggering fixture and a near-miss for each
RPC rule, plus suppression, discovery, and config behavior.

Fixtures are plain source strings fed to :func:`analyze_source`; the
analyzer discovers VertexProgram subclasses by base-class *name*, so no
imports are needed in the fixture modules themselves.
"""

from __future__ import annotations

import textwrap

from repro.check import CheckConfig, Severity, analyze_source
from repro.check.analyzer import SYNTAX_RULE_ID
from repro.check.rules import RULES, rule_catalog


def fired(source: str, **kwargs) -> set[str]:
    """Rule ids that fire on the (dedented) source."""
    return {f.rule_id for f in analyze_source(textwrap.dedent(source), **kwargs)}


GOOD_PROGRAM = """
    class GoodProgram(VertexProgram):
        combiner = SumCombiner()

        def __init__(self, damping=0.85):
            self.damping = damping

        def compute(self, ctx, state, messages):
            total = sum(messages)
            if ctx.superstep > 0:
                ctx.vote_to_halt()
            ctx.send_to_neighbors(total / max(1, ctx.out_degree))
            return total
"""


def test_clean_program_has_no_findings():
    assert fired(GOOD_PROGRAM) == set()


def test_rule_catalog_covers_all_rules():
    from repro.check.planopt import PLANOPT_RULES
    from repro.check.vectorize import KERNEL_RULES

    catalog = rule_catalog()
    assert [r["id"] for r in catalog] == sorted(
        r.id for r in (*RULES, *KERNEL_RULES, *PLANOPT_RULES)
    )
    assert len(catalog) == 22
    assert all(r["summary"] and r["hint"] for r in catalog)


# ----------------------------------------------------------------------
# RPC001 — message/payload mutation
# ----------------------------------------------------------------------
def test_rpc001_fires_on_messages_sort():
    src = """
        class P(VertexProgram):
            def compute(self, ctx, state, messages):
                messages.sort()
                ctx.vote_to_halt()
                return state
    """
    assert "RPC001" in fired(src)


def test_rpc001_fires_on_payload_mutation_in_loop():
    src = """
        class P(VertexProgram):
            def compute(self, ctx, state, messages):
                for m in messages:
                    m.append(1)
                ctx.vote_to_halt()
                return state
    """
    assert "RPC001" in fired(src)


def test_rpc001_fires_on_subscript_assignment():
    src = """
        class P(VertexProgram):
            def compute(self, ctx, state, messages):
                messages[0] = None
                ctx.vote_to_halt()
                return state
    """
    assert "RPC001" in fired(src)


def test_rpc001_near_miss_sorted_copy():
    src = """
        class P(VertexProgram):
            def compute(self, ctx, state, messages):
                ordered = sorted(messages)
                batch = list(messages)
                batch.append(0)
                ctx.vote_to_halt()
                return len(ordered) + len(batch)
    """
    assert "RPC001" not in fired(src)


def test_rpc001_tracks_aliases():
    src = """
        class P(VertexProgram):
            def compute(self, ctx, state, messages):
                msgs = messages
                msgs.clear()
                ctx.vote_to_halt()
                return state
    """
    assert "RPC001" in fired(src)


# ----------------------------------------------------------------------
# RPC002 — nondeterminism sources
# ----------------------------------------------------------------------
def test_rpc002_fires_on_global_random():
    src = """
        import random

        class P(VertexProgram):
            def compute(self, ctx, state, messages):
                ctx.vote_to_halt()
                return random.random()
    """
    assert "RPC002" in fired(src)


def test_rpc002_fires_on_numpy_global_rng_and_clock():
    src = """
        import numpy as np
        import time

        class P(VertexProgram):
            def compute(self, ctx, state, messages):
                ctx.vote_to_halt()
                return np.random.rand() + time.time()
    """
    findings = fired(src)
    assert "RPC002" in findings


def test_rpc002_fires_on_from_import():
    src = """
        from random import random

        class P(VertexProgram):
            def compute(self, ctx, state, messages):
                ctx.vote_to_halt()
                return random()
    """
    assert "RPC002" in fired(src)


def test_rpc002_near_miss_seeded_rng_on_self():
    src = """
        import numpy as np

        class P(VertexProgram):
            def __init__(self, seed=0):
                self.rng = np.random.default_rng(seed)

            def compute(self, ctx, state, messages):
                ctx.vote_to_halt()
                return self.rng.random()
    """
    assert "RPC002" not in fired(src)


# ----------------------------------------------------------------------
# RPC003 — shared-state writes
# ----------------------------------------------------------------------
def test_rpc003_fires_on_self_write_in_compute():
    src = """
        class P(VertexProgram):
            def compute(self, ctx, state, messages):
                self.total = state + 1
                ctx.vote_to_halt()
                return state
    """
    assert "RPC003" in fired(src)


def test_rpc003_fires_on_self_container_mutation_and_helper():
    src = """
        class P(VertexProgram):
            def compute(self, ctx, state, messages):
                ctx.vote_to_halt()
                return self._tally(state)

            def _tally(self, state):
                self.seen.append(state)
                return state
    """
    assert "RPC003" in fired(src)


def test_rpc003_fires_on_global_declaration():
    src = """
        class P(VertexProgram):
            def compute(self, ctx, state, messages):
                global counter
                counter = 1
                ctx.vote_to_halt()
                return state
    """
    assert "RPC003" in fired(src)


def test_rpc003_near_miss_init_and_master_compute_writes():
    src = """
        class P(VertexProgram):
            def __init__(self):
                self.converged_at = None

            def compute(self, ctx, state, messages):
                ctx.vote_to_halt()
                return state

            def master_compute(self, master):
                self.converged_at = master.superstep
    """
    assert "RPC003" not in fired(src)


# ----------------------------------------------------------------------
# RPC004 — send family outside compute
# ----------------------------------------------------------------------
def test_rpc004_fires_on_send_from_lifecycle():
    src = """
        class P(VertexProgram):
            def init_state(self, vertex_id, graph):
                self.ctx.send(0, 1.0)
                return 0.0

            def compute(self, ctx, state, messages):
                ctx.vote_to_halt()
                return state
    """
    assert "RPC004" in fired(src)


def test_rpc004_fires_on_vote_from_master():
    src = """
        class P(VertexProgram):
            def compute(self, ctx, state, messages):
                ctx.vote_to_halt()
                return state

            def master_compute(self, master):
                master.vote_to_halt()
    """
    assert "RPC004" in fired(src)


def test_rpc004_near_miss_master_publish_and_halt():
    src = """
        class P(VertexProgram):
            def compute(self, ctx, state, messages):
                ctx.vote_to_halt()
                return state

            def master_compute(self, master):
                master.publish("level", master.superstep)
                master.halt_job()
    """
    findings = fired(src)
    assert "RPC004" not in findings


# ----------------------------------------------------------------------
# RPC005 — no halting path
# ----------------------------------------------------------------------
def test_rpc005_fires_when_nothing_halts():
    src = """
        class P(VertexProgram):
            def compute(self, ctx, state, messages):
                ctx.send_to_neighbors(state)
                return state
    """
    findings = analyze_source(textwrap.dedent(src))
    assert {f.rule_id for f in findings} == {"RPC005"}
    assert findings[0].severity is Severity.WARNING


def test_rpc005_near_miss_master_halt_suffices():
    src = """
        class P(VertexProgram):
            def compute(self, ctx, state, messages):
                ctx.send_to_neighbors(state)
                return state

            def master_compute(self, master):
                if master.superstep >= 30:
                    master.halt_job()
    """
    assert "RPC005" not in fired(src)


# ----------------------------------------------------------------------
# RPC006 — resource hooks vs sent payloads
# ----------------------------------------------------------------------
def test_rpc006_fires_on_understated_constant():
    src = """
        class P(VertexProgram):
            def compute(self, ctx, state, messages):
                ctx.send(0, (1.0, 2.0, 3.0))
                ctx.vote_to_halt()
                return state

            def payload_nbytes(self, payload):
                return 8
    """
    assert "RPC006" in fired(src)


def test_rpc006_fires_error_on_nonpositive_size():
    src = """
        class P(VertexProgram):
            def compute(self, ctx, state, messages):
                ctx.vote_to_halt()
                return state

            def state_nbytes(self, state):
                return 0
    """
    findings = [f for f in analyze_source(textwrap.dedent(src)) if f.rule_id == "RPC006"]
    assert findings and findings[0].severity is Severity.ERROR


def test_rpc006_near_miss_derived_size():
    src = """
        class P(VertexProgram):
            def compute(self, ctx, state, messages):
                ctx.send(0, (1.0, 2.0, 3.0))
                ctx.vote_to_halt()
                return state

            def payload_nbytes(self, payload):
                return 8 * len(payload)
    """
    assert "RPC006" not in fired(src)


# ----------------------------------------------------------------------
# RPC007 — undeclared aggregators
# ----------------------------------------------------------------------
def test_rpc007_fires_on_undeclared_name():
    src = """
        class P(VertexProgram):
            def compute(self, ctx, state, messages):
                ctx.aggregate("total", state)
                ctx.vote_to_halt()
                return state
    """
    assert "RPC007" in fired(src)


def test_rpc007_near_miss_declared_name():
    src = """
        class P(VertexProgram):
            def aggregators(self):
                return {"total": SumAggregator()}

            def compute(self, ctx, state, messages):
                ctx.aggregate("total", state)
                ctx.vote_to_halt()
                return state
    """
    assert "RPC007" not in fired(src)


def test_rpc007_skips_computed_declarations():
    src = """
        class P(VertexProgram):
            def aggregators(self):
                return {f"lvl{i}": SumAggregator() for i in range(3)}

            def compute(self, ctx, state, messages):
                ctx.aggregate("lvl0", state)
                ctx.vote_to_halt()
                return state
    """
    assert "RPC007" not in fired(src)


# ----------------------------------------------------------------------
# RPC008 — compute never returns
# ----------------------------------------------------------------------
def test_rpc008_fires_without_return():
    src = """
        class P(VertexProgram):
            def compute(self, ctx, state, messages):
                ctx.vote_to_halt()
    """
    assert "RPC008" in fired(src)


def test_rpc008_near_miss_any_valued_return():
    src = """
        class P(VertexProgram):
            def compute(self, ctx, state, messages):
                if messages:
                    return sum(messages)
                ctx.vote_to_halt()
                return state
    """
    assert "RPC008" not in fired(src)


# ----------------------------------------------------------------------
# RPC009 — ctx/messages retention
# ----------------------------------------------------------------------
def test_rpc009_fires_on_returning_messages_as_state():
    src = """
        class P(VertexProgram):
            def compute(self, ctx, state, messages):
                ctx.vote_to_halt()
                return messages
    """
    assert "RPC009" in fired(src)


def test_rpc009_fires_on_stashing_ctx():
    src = """
        class P(VertexProgram):
            def compute(self, ctx, state, messages):
                self.last_ctx = ctx
                ctx.vote_to_halt()
                return state
    """
    assert "RPC009" in fired(src)


def test_rpc009_near_miss_copied_values():
    src = """
        class P(VertexProgram):
            def compute(self, ctx, state, messages):
                vid = ctx.vertex_id
                kept = list(messages)
                ctx.vote_to_halt()
                return (vid, kept)
    """
    assert "RPC009" not in fired(src)


# ----------------------------------------------------------------------
# RPC010 — private engine internals
# ----------------------------------------------------------------------
def test_rpc010_fires_on_ctx_private_access():
    src = """
        class P(VertexProgram):
            def compute(self, ctx, state, messages):
                ctx._worker.emit(ctx.vertex_id, 0, state)
                ctx.vote_to_halt()
                return state
    """
    assert "RPC010" in fired(src)


def test_rpc010_near_miss_public_surface_and_dunder():
    src = """
        class P(VertexProgram):
            def compute(self, ctx, state, messages):
                ctx.send(0, state)
                name = ctx.__class__.__name__
                ctx.vote_to_halt()
                return (state, name)
    """
    assert "RPC010" not in fired(src)


# ----------------------------------------------------------------------
# Suppression, discovery, config, syntax errors
# ----------------------------------------------------------------------
def test_noqa_with_matching_id_suppresses():
    src = """
        class P(VertexProgram):
            def compute(self, ctx, state, messages):
                messages.sort()  # repro: noqa[RPC001]
                ctx.vote_to_halt()
                return state
    """
    assert "RPC001" not in fired(src)


def test_bare_noqa_suppresses_everything_on_line():
    src = """
        class P(VertexProgram):
            def compute(self, ctx, state, messages):
                messages.sort()  # repro: noqa
                ctx.vote_to_halt()
                return state
    """
    assert fired(src) == set()


def test_noqa_with_wrong_id_does_not_suppress():
    src = """
        class P(VertexProgram):
            def compute(self, ctx, state, messages):
                messages.sort()  # repro: noqa[RPC002]
                ctx.vote_to_halt()
                return state
    """
    assert "RPC001" in fired(src)


def test_transitive_and_attribute_base_discovery():
    src = """
        from repro.bsp import api

        class Base(api.VertexProgram):
            def compute(self, ctx, state, messages):
                ctx.vote_to_halt()
                return state

        class Child(Base):
            def compute(self, ctx, state, messages):
                messages.sort()
                ctx.vote_to_halt()
                return state

        class Unrelated:
            def compute(self, ctx, state, messages):
                messages.sort()
                return state
    """
    findings = analyze_source(textwrap.dedent(src))
    assert {f.rule_id for f in findings} == {"RPC001"}
    assert len([f for f in findings if f.rule_id == "RPC001"]) == 1  # Child only


def test_config_ignore_disables_rule():
    src = """
        class P(VertexProgram):
            def compute(self, ctx, state, messages):
                messages.sort()
                ctx.vote_to_halt()
                return state
    """
    cfg = CheckConfig(select=("RPC",), ignore=("RPC001",))
    assert fired(src, config=cfg) == set()
    assert CheckConfig(select=("RPC001",)).enabled("RPC001")
    assert not CheckConfig(select=("RPC002",)).enabled("RPC001")


def test_syntax_error_becomes_rpc000_finding():
    findings = analyze_source("def broken(:\n")
    assert len(findings) == 1
    assert findings[0].rule_id == SYNTAX_RULE_ID
    assert findings[0].severity is Severity.ERROR


def test_finding_render_and_as_dict():
    src = """
        class P(VertexProgram):
            def compute(self, ctx, state, messages):
                messages.sort()
                ctx.vote_to_halt()
                return state
    """
    (f,) = analyze_source(textwrap.dedent(src), filename="prog.py")
    assert f.render().startswith("prog.py:4:")
    assert "[error]" in f.render()
    d = f.as_dict()
    assert d["rule"] == "RPC001" and d["severity"] == "error"
