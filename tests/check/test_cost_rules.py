"""Trigger + near-miss tests for the profile-backed rules RPC011-RPC014."""

from __future__ import annotations

import textwrap

from repro.check import analyze_source


def fired(source: str, **kwargs) -> set[str]:
    return {f.rule_id for f in analyze_source(textwrap.dedent(source), **kwargs)}


# ----------------------------------------------------------------------
# RPC011 — unpicklable state under --engine process
# ----------------------------------------------------------------------
def test_rpc011_fires_on_lambda_in_init():
    src = """
        class P(VertexProgram):
            def __init__(self):
                self.score = lambda x: x * 2

            def compute(self, ctx, state, messages):
                ctx.vote_to_halt()
                return state
    """
    assert "RPC011" in fired(src)


def test_rpc011_fires_on_lambda_in_init_state():
    src = """
        class P(VertexProgram):
            def init_state(self, vertex_id, graph):
                return {"rank": 0.0, "fn": lambda m: m + 1}

            def compute(self, ctx, state, messages):
                ctx.vote_to_halt()
                return state
    """
    assert "RPC011" in fired(src)


def test_rpc011_fires_on_open_handle_and_lock():
    src = """
        import threading

        class P(VertexProgram):
            def __init__(self):
                self.log = open("/tmp/x", "w")
                self.lock = threading.Lock()

            def compute(self, ctx, state, messages):
                ctx.vote_to_halt()
                return state
    """
    findings = [
        f for f in analyze_source(textwrap.dedent(src))
        if f.rule_id == "RPC011"
    ]
    assert len(findings) == 2


def test_rpc011_fires_on_closure_stored_in_state():
    src = """
        class P(VertexProgram):
            def compute(self, ctx, state, messages):
                def scorer(m):
                    return m + state
                state.fn = scorer
                ctx.vote_to_halt()
                return state
    """
    assert "RPC011" in fired(src)


def test_rpc011_fires_on_closure_returned_as_state():
    src = """
        class P(VertexProgram):
            def compute(self, ctx, state, messages):
                def scorer(m):
                    return m + ctx.superstep
                ctx.vote_to_halt()
                return scorer
    """
    assert "RPC011" in fired(src)


def test_rpc011_near_miss_lambda_keyed_result_returned():
    # The *result* of a lambda-keyed call is plain data; only returning the
    # function object itself is a pickle hazard.
    src = """
        class P(VertexProgram):
            def compute(self, ctx, state, messages):
                ctx.vote_to_halt()
                return sorted(messages, key=lambda m: m[1])
    """
    assert "RPC011" not in fired(src)


def test_rpc011_near_miss_plain_data_state():
    src = """
        class P(VertexProgram):
            def __init__(self):
                self.damping = 0.85

            def init_state(self, vertex_id, graph):
                return {"rank": 1.0, "hops": []}

            def compute(self, ctx, state, messages):
                ctx.vote_to_halt()
                return state
    """
    assert "RPC011" not in fired(src)


def test_rpc011_near_miss_lambda_used_but_not_stored():
    # A lambda consumed inside compute() never crosses a pickle boundary.
    src = """
        class P(VertexProgram):
            def compute(self, ctx, state, messages):
                best = max(messages, key=lambda m: m[1], default=None)
                ctx.vote_to_halt()
                return best
    """
    assert "RPC011" not in fired(src)


# ----------------------------------------------------------------------
# RPC012 — broadcast-class program without swath scheduling
# ----------------------------------------------------------------------
BROADCAST_BODY = """
    class P(VertexProgram):
        def compute(self, ctx, state, messages):
            for m in messages:
                ctx.send_to_neighbors(m)
            ctx.vote_to_halt()
            return state
"""


def test_rpc012_fires_on_broadcast_without_start_messages():
    assert "RPC012" in fired(BROADCAST_BODY)


def test_rpc012_near_miss_with_start_messages_factory():
    src = BROADCAST_BODY + """
    def start_messages(roots):
        return [(int(r), ("start", int(r))) for r in roots]
    """
    assert "RPC012" not in fired(src)


def test_rpc012_near_miss_bounded_fanout():
    src = """
        class P(VertexProgram):
            def compute(self, ctx, state, messages):
                ctx.send_to_neighbors(state)
                ctx.vote_to_halt()
                return state
    """
    assert "RPC012" not in fired(src)


# ----------------------------------------------------------------------
# RPC013 — combiner-eligible program running combiner-less
# ----------------------------------------------------------------------
def test_rpc013_fires_on_combinerless_sum():
    src = """
        class P(VertexProgram):
            def compute(self, ctx, state, messages):
                total = sum(messages)
                ctx.send_to_neighbors(total)
                ctx.vote_to_halt()
                return total
    """
    findings = [
        f for f in analyze_source(textwrap.dedent(src))
        if f.rule_id == "RPC013"
    ]
    assert len(findings) == 1
    assert "SumCombiner" in findings[0].message


def test_rpc013_near_miss_combiner_declared():
    src = """
        class P(VertexProgram):
            combiner = SumCombiner()

            def compute(self, ctx, state, messages):
                total = sum(messages)
                ctx.send_to_neighbors(total)
                ctx.vote_to_halt()
                return total
    """
    assert "RPC013" not in fired(src)


def test_rpc013_near_miss_non_commutative_fold():
    # Order-dependent consumption is not combiner-eligible.
    src = """
        class P(VertexProgram):
            def compute(self, ctx, state, messages):
                latest = None
                for m in messages:
                    latest = m
                ctx.vote_to_halt()
                return latest
    """
    assert "RPC013" not in fired(src)


# ----------------------------------------------------------------------
# RPC014 — payload references an unbounded state accumulator
# ----------------------------------------------------------------------
def test_rpc014_fires_on_grown_list_in_payload():
    src = """
        class P(VertexProgram):
            def compute(self, ctx, state, messages):
                state.path.append(ctx.vertex_id)
                ctx.send_to_neighbors(tuple(state.path))
                ctx.vote_to_halt()
                return state
    """
    assert "RPC014" in fired(src)


def test_rpc014_fires_on_subscript_grown_dict():
    src = """
        class P(VertexProgram):
            def compute(self, ctx, state, messages):
                state.seen[ctx.superstep] = len(messages)
                ctx.send(0, state.seen)
                ctx.vote_to_halt()
                return state
    """
    assert "RPC014" in fired(src)


def test_rpc014_near_miss_growth_not_sent():
    src = """
        class P(VertexProgram):
            def compute(self, ctx, state, messages):
                state.path.append(ctx.vertex_id)
                ctx.send_to_neighbors(len(messages))
                ctx.vote_to_halt()
                return state
    """
    assert "RPC014" not in fired(src)


def test_rpc014_near_miss_bounded_summary_sent():
    src = """
        class P(VertexProgram):
            def compute(self, ctx, state, messages):
                state.path.append(ctx.vertex_id)
                ctx.send_to_neighbors(len(state.path))
                ctx.vote_to_halt()
                return state
    """
    # len(state.path) reads the accumulator but ships 8 bytes... the
    # analyzer is conservative here: reading the grown path at all flags.
    # The *local* accumulator case must stay silent though:
    src2 = """
        class P(VertexProgram):
            def compute(self, ctx, state, messages):
                hops = []
                hops.append(ctx.vertex_id)
                ctx.send_to_neighbors(tuple(hops))
                ctx.vote_to_halt()
                return state
    """
    assert "RPC014" not in fired(src2)


def test_new_rules_are_warnings_not_errors():
    from repro.check import Severity
    from repro.check.rules import RULES

    for rule in RULES:
        if rule.id in {"RPC011", "RPC012", "RPC013", "RPC014"}:
            assert rule.severity is Severity.WARNING


def test_noqa_suppresses_cost_rules():
    src = """
        class P(VertexProgram):  # repro: noqa[RPC012]
            def compute(self, ctx, state, messages):
                for m in messages:
                    ctx.send_to_neighbors(m)
                ctx.vote_to_halt()
                return state
    """
    assert "RPC012" not in fired(src)
