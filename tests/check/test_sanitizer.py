"""Dynamic-sanitizer tests: payload fingerprinting, the 1-vs-N worker
determinism diff, aggregator law probes, and the CI smoke harness.

The racy fixtures here are *deliberately* order-dependent; they exist to
prove the sanitizer catches what the static rules cannot.
"""

from __future__ import annotations

from types import SimpleNamespace

import numpy as np
import pytest

from repro.bsp.aggregators import Aggregator, CountAggregator, SumAggregator
from repro.bsp.api import VertexProgram
from repro.bsp.engine import BSPEngine
from repro.bsp.job import JobSpec
from repro.check import (
    SanitizerObserver,
    SanitizingProgram,
    certify_determinism,
    check_aggregator_laws,
    freeze,
    run_sanitize_smoke,
)
from repro.graph import generators as gen
from repro.obs.metrics import MetricsRegistry


# ----------------------------------------------------------------------
# freeze(): structural fingerprints
# ----------------------------------------------------------------------
def test_freeze_detects_container_mutation():
    payload = {"dist": [1.0, 2.0], "hops": 3}
    before = freeze(payload)
    assert freeze(payload) == before
    payload["dist"].append(9.0)
    assert freeze(payload) != before


def test_freeze_detects_ndarray_mutation():
    arr = np.zeros(4)
    before = freeze(arr)
    arr[2] = 1.5
    assert freeze(arr) != before


def test_freeze_distinguishes_list_from_tuple_but_not_set_order():
    assert freeze([1, 2]) != freeze((1, 2))
    assert freeze({1, 2, 3}) == freeze({3, 1, 2})


# ----------------------------------------------------------------------
# Sanitizer fixtures
# ----------------------------------------------------------------------
class EchoProgram(VertexProgram):
    """Well-behaved: floods one list payload, then halts."""

    def compute(self, ctx, state, messages):
        if ctx.superstep == 0:
            ctx.send_to_neighbors([float(ctx.vertex_id)])
            return state
        ctx.vote_to_halt()
        return sum(m[0] for m in messages) if messages else state


class MutatingEcho(EchoProgram):
    """Broken: mutates delivered payloads in place at superstep 1."""

    def compute(self, ctx, state, messages):
        if ctx.superstep >= 1:
            for m in messages:
                m.append(99.0)  # repro: noqa[RPC001] — deliberate violation
        return super().compute(ctx, state, messages)


class _StubCtx(SimpleNamespace):
    superstep = 2
    vertex_id = 7


def test_sanitizing_program_catches_direct_payload_mutation():
    wrapper = SanitizingProgram(MutatingEcho())
    wrapper.compute(_StubCtx(vote_to_halt=lambda: None), 0.0, [[1.0], [2.0]])
    kinds = {v.kind for v in wrapper.violations}
    assert kinds == {"payload-mutated"}
    assert wrapper.violations[0].vertex == 7
    assert wrapper.violations[0].superstep == 2


def test_sanitizing_program_catches_resized_messages():
    class Resizer(VertexProgram):
        def compute(self, ctx, state, messages):
            messages.append(0.0)  # repro: noqa[RPC001]
            return state

    wrapper = SanitizingProgram(Resizer())
    wrapper.compute(_StubCtx(), None, [1.0])
    assert [v.kind for v in wrapper.violations] == ["messages-resized"]


def test_sanitizing_program_is_transparent():
    inner = EchoProgram()
    wrapper = SanitizingProgram(inner)
    assert wrapper.name == "Sanitizing(EchoProgram)"
    assert wrapper.combiner is inner.combiner
    assert wrapper.extract(0, 1.25) == inner.extract(0, 1.25)
    assert wrapper.payload_nbytes((1.0, 2.0)) == inner.payload_nbytes((1.0, 2.0))
    assert wrapper.state_nbytes(3.0) == inner.state_nbytes(3.0)
    assert wrapper.aggregators() == inner.aggregators()


def test_observer_catches_mutation_in_real_run_and_emits_metrics():
    registry = MetricsRegistry()
    program = SanitizingProgram(MutatingEcho())
    observer = SanitizerObserver(program, metrics=registry)
    BSPEngine(
        JobSpec(
            program=program, graph=gen.ring(10), num_workers=2,
            observers=[observer],
        )
    ).run()
    assert not observer.ok
    assert {v.kind for v in observer.violations} == {"payload-mutated"}
    counter = registry.get(
        "repro_sanitizer_violations_total", kind="payload-mutated"
    )
    assert counter is not None and counter.value == len(observer.violations)


def test_observer_binds_program_lazily_from_job():
    program = SanitizingProgram(MutatingEcho())
    observer = SanitizerObserver()  # no program at construction
    BSPEngine(
        JobSpec(
            program=program, graph=gen.ring(6), num_workers=2,
            observers=[observer],
        )
    ).run()
    assert not observer.ok


def test_clean_program_produces_no_violations():
    program = SanitizingProgram(EchoProgram())
    observer = SanitizerObserver(program)
    BSPEngine(
        JobSpec(
            program=program, graph=gen.ring(10), num_workers=2,
            observers=[observer],
        )
    ).run()
    assert observer.ok


# ----------------------------------------------------------------------
# Worker-count determinism
# ----------------------------------------------------------------------
class DeliveryOrderLeak(VertexProgram):
    """Racy: vertex 0's result depends on message delivery order — local
    sends land before remote flush batches, so the order (legally) differs
    by worker count and any program that keys on it is nondeterministic."""

    def compute(self, ctx, state, messages):
        if ctx.superstep == 0:
            if ctx.vertex_id != 0:
                ctx.send(0, float(ctx.vertex_id))
            ctx.vote_to_halt()
            return ()
        if ctx.vertex_id == 0 and messages:
            state = tuple(float(m) for m in messages)
        ctx.vote_to_halt()
        return state


def test_determinism_diff_catches_order_dependent_program():
    report = certify_determinism(DeliveryOrderLeak, gen.ring(16), num_workers=4)
    assert not report.ok
    assert report.total_mismatches >= 1
    assert any(v == 0 for v, _, _ in report.mismatches)
    assert "NONDETERMINISTIC" in report.summary()


def test_determinism_diff_passes_order_independent_program():
    report = certify_determinism(EchoProgram, gen.ring(16), num_workers=4)
    assert report.ok
    assert "deterministic across 1 vs 4 workers" in report.summary()


def test_determinism_requires_multiple_workers():
    with pytest.raises(ValueError):
        certify_determinism(EchoProgram, gen.ring(4), num_workers=1)


# ----------------------------------------------------------------------
# Aggregator algebra probes
# ----------------------------------------------------------------------
class LastWinsAggregator(Aggregator):
    """Broken on purpose: reduce keeps the most recent contribution."""

    def identity(self):
        return None

    def reduce(self, acc, value):
        return value

    def merge(self, acc, partial):
        return partial


class _AggProgram(VertexProgram):
    def __init__(self, agg):
        self._agg = agg

    def aggregators(self):
        return {"probe": self._agg}

    def compute(self, ctx, state, messages):
        ctx.vote_to_halt()
        return state


def test_lawful_aggregators_pass():
    for agg in (SumAggregator(), CountAggregator()):
        reports = check_aggregator_laws(_AggProgram(agg))
        assert len(reports) == 1 and reports[0].ok, reports[0].failures


def test_order_dependent_aggregator_fails_commutativity():
    (report,) = check_aggregator_laws(_AggProgram(LastWinsAggregator()))
    assert not report.ok
    assert any("commutative" in f for f in report.failures)


def test_observer_reports_aggregator_law_violations_at_job_start():
    program = SanitizingProgram(_AggProgram(LastWinsAggregator()))
    observer = SanitizerObserver(program)
    observer.on_job_start(SimpleNamespace(job=SimpleNamespace(program=program)))
    assert not observer.ok
    assert {v.kind for v in observer.violations} == {"aggregator-law"}


# ----------------------------------------------------------------------
# The CI smoke harness
# ----------------------------------------------------------------------
def test_smoke_passes_on_pagerank_and_bc():
    report = run_sanitize_smoke(scale=0.05, num_workers=4)
    assert [c.name for c in report.cases] == ["pagerank", "bc"]
    assert report.ok, report.summary()
    payload = report.as_dict()
    assert payload["ok"] and payload["num_workers"] == 4
    assert all("deterministic" in c["determinism"] for c in payload["cases"])
