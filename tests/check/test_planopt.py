"""KernelPlan optimizer: passes, digests, rules RPC019-022, certification."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.algorithms import (
    ConnectedComponentsProgram,
    KCoreProgram,
    PageRankProgram,
)
from repro.bsp import JobSpec
from repro.bsp.dense_ref import DenseRefEngine
from repro.check.costmodel import FanoutClass, profile_source
from repro.check.planopt import (
    PASS_VERSIONS,
    PLANOPT_SIGNATURE,
    certify_optimization,
    optimize_plan,
    optimize_source,
    plan_profile_disagreements,
)
from repro.check.vectorize import lift_of, lift_source, render_expr
from repro.graph import generators as gen

# ----------------------------------------------------------------------
# Fixture programs
# ----------------------------------------------------------------------
MINI_CC = """\
from repro.bsp.api import VertexProgram
from repro.bsp.combiners import MinCombiner

class MiniCC(VertexProgram):
    combiner = MinCombiner()
    def init_state(self, vertex_id, graph):
        return vertex_id
    def compute(self, ctx, state, messages):
        candidate = min(messages, default=state)
        if ctx.superstep == 0:
            ctx.send_to_neighbors(state)
        elif candidate < state:
            state = candidate
            ctx.send_to_neighbors(state)
        ctx.vote_to_halt()
        return state
"""

# Two phases guarded `superstep == 0` separated by an unguarded phase
# whose scatter float-sums: merging would reorder accumulation (RPC020).
BLOCKED = """\
from repro.bsp.api import VertexProgram

class Blocky(VertexProgram):
    def init_state(self, vertex_id, graph):
        return 0.0
    def compute(self, ctx, state, messages):
        total = sum(messages)
        if ctx.superstep == 0:
            ctx.send_to_neighbors(1.0)
        ctx.send_to_neighbors(state + total)
        if ctx.superstep == 0:
            ctx.send_to_neighbors(2.0)
        if ctx.superstep > 4:
            ctx.vote_to_halt()
        return state + total
"""

# Same shape but min-gather: delivery order is irrelevant, so the
# same-guard phases fuse across the intervening scatter.
FUSABLE = """\
from repro.bsp.api import VertexProgram
from repro.bsp.combiners import MinCombiner

class Fusy(VertexProgram):
    combiner = MinCombiner()
    def init_state(self, vertex_id, graph):
        return float(vertex_id)
    def compute(self, ctx, state, messages):
        best = min(messages, default=state)
        if ctx.superstep == 0:
            ctx.send_to_neighbors(1.0)
        ctx.send_to_neighbors(best)
        if ctx.superstep == 0:
            ctx.send_to_neighbors(2.0)
        if ctx.superstep > 4:
            ctx.vote_to_halt()
        return best
"""

# Broadcast fan-out (data-dependent send targets -> RPC016 refusal) plus
# an unpicklable lambda attribute (RPC011) -> only sim/threaded remain.
HAZARD = """\
from repro.bsp.api import VertexProgram

class Gossip(VertexProgram):
    def __init__(self):
        self.score = lambda x: x + 1
    def init_state(self, vertex_id, graph):
        return vertex_id
    def compute(self, ctx, state, messages):
        for m in messages:
            for n in ctx.out_neighbors():
                ctx.send(n, m)
        for n in ctx.out_neighbors():
            for m in ctx.out_neighbors():
                ctx.send(m, state)
        ctx.vote_to_halt()
        return state
"""


def _plan(source: str):
    (res,) = lift_source(source, filename="<test>")
    assert res.plan is not None, (res.rule_id, res.reason)
    return res.plan


def _findings(source: str):
    from repro.check.analyzer import analyze_source

    return analyze_source(source, filename="<test>", kernel_plan=True)


# ----------------------------------------------------------------------
# Pass behavior
# ----------------------------------------------------------------------
def test_signature_mirrors_pass_versions():
    assert PLANOPT_SIGNATURE == ";".join(
        f"{n}={v}" for n, v in PASS_VERSIONS
    )
    assert [n for n, _ in PASS_VERSIONS] == [
        "fuse-masks", "const-fold", "dead-op", "phase-fuse",
        "hoist-scatter", "cse",
    ]


def test_mask_fusion_collapses_restated_conditions():
    out = optimize_plan(lift_of(ConnectedComponentsProgram()).plan)
    assert out.changed
    (phase,) = out.plan.phases
    scatter = next(op for op in phase.ops if op.kind == "scatter")
    # the lifted mask restates the superstep==0 test inside a where;
    # assumption tracking folds it to a flat disjunction
    assert render_expr(scatter.where) == (
        "(or (eq superstep 0) (lt msg state))"
    )


def test_optimized_digest_is_recomputed_and_stable():
    out = optimize_plan(_plan(MINI_CC))
    assert out.plan.digest != out.original.digest
    assert len(out.plan.digest) == 64
    again = optimize_plan(_plan(MINI_CC))
    assert again.plan.digest == out.plan.digest
    assert out.plan.digest == out.plan.as_dict()["digest"]


def test_optimizer_is_idempotent():
    once = optimize_plan(_plan(MINI_CC))
    twice = optimize_plan(once.plan)
    assert not twice.changed
    assert twice.plan.digest == once.plan.digest


def test_const_folding_uses_numpy_semantics():
    from repro.check.planopt import _fold_compound

    assert _fold_compound("add", [2, 3]) == ("const", 5)
    assert _fold_compound("mul", [2.0, 4.0]) == ("const", 8.0)
    # div-by-zero folds to the executor's inf, not a ZeroDivisionError
    folded = _fold_compound("div", [1.0, 0.0])
    assert folded is not None and folded[1] == float("inf")
    assert _fold_compound("min2", [3, 7]) == ("const", 3)
    assert _fold_compound("not", [True]) == ("const", False)
    # results are python scalars (json-serializable for the digest)
    assert all(
        type(_fold_compound(op, args)[1]) in (bool, int, float)
        for op, args in [("add", [1, 1]), ("lt", [1, 2]), ("abs", [-2.0])]
    )
    json.dumps(_fold_compound("add", [1, 2]))


def test_phase_fusion_blocked_for_sum_reduce():
    plan = _plan(BLOCKED)
    assert plan.reduce == "sum"
    out = optimize_plan(plan)
    assert out.fused_phases == 0
    assert out.blocked, "expected a FusionBlock for the sum-reduce scatter"
    block = out.blocked[0]
    assert block.op == "scatter"
    assert "sum" in block.reason
    # phase structure untouched: the same-guard phases stay separate
    assert len(out.plan.phases) == len(plan.phases)


def test_phase_fusion_merges_order_free_reduce():
    plan = _plan(FUSABLE)
    assert plan.reduce == "min"
    out = optimize_plan(plan)
    assert out.fused_phases >= 1
    assert not out.blocked
    assert len(out.plan.phases) < len(plan.phases)
    # ops survive the merge, nothing dropped
    assert out.plan.num_ops == plan.num_ops


def test_scatter_hoisting_marks_shared_payloads():
    verdict = lift_of(PageRankProgram(iterations=5))
    out = optimize_plan(verdict.plan)
    assert out.hoisted == 1
    hoisted = [
        op for p in out.plan.phases for op in p.ops if op.hoist
    ]
    assert len(hoisted) == 1 and hoisted[0].kind == "scatter"
    # the mark rides the digest: hoisted and unhoisted plans differ
    assert "hoist" in json.dumps(out.plan.as_dict())


def test_cse_is_digest_invariant():
    from repro.check.planopt import _cse_pass

    plan = _plan(MINI_CC)
    interned, shared = _cse_pass(plan)
    assert interned.digest == plan.digest
    assert shared > 0


def test_dead_op_elimination():
    # `if False:` guards never lift (constant branches fold at lift time),
    # so exercise the pass directly on a doctored plan.
    from dataclasses import replace

    from repro.check.planopt import _dead_op_pass
    from repro.check.vectorize import KernelPhase, KOp

    plan = _plan(MINI_CC)
    dead_phase = KernelPhase(
        guard=("const", False), ops=(KOp(kind="vote"),)
    )
    dead_op = KOp(kind="vote", where=("const", False))
    live = KernelPhase(
        guard=("const", True),
        ops=(dead_op, KOp(kind="vote", where=("const", True))),
    )
    doctored = replace(plan, phases=(*plan.phases, dead_phase, live))
    out, removed = _dead_op_pass(doctored)
    assert removed > 0
    assert len(out.phases) == len(plan.phases) + 1
    tail = out.phases[-1]
    assert tail.guard is None  # const-true guard normalized away
    (kept,) = tail.ops
    assert kept.where is None  # const-true mask normalized away


# ----------------------------------------------------------------------
# Differential certification
# ----------------------------------------------------------------------
def test_certify_optimization_bit_identical():
    und = gen.watts_strogatz(40, 4, 0.3, seed=5).as_undirected()
    cert = certify_optimization(
        lambda: JobSpec(ConnectedComponentsProgram(), und, num_workers=1)
    )
    assert cert.ok, cert.summary()
    assert cert.optimized_digest != cert.original_digest
    assert "bit-identical" in cert.summary()


def test_certify_optimization_rejects_unliftable():
    from repro.algorithms import BCProgram

    und = gen.path(8).as_undirected()
    with pytest.raises(ValueError, match="liftable"):
        certify_optimization(
            lambda: JobSpec(BCProgram(), und, num_workers=1)
        )


def test_dense_ref_runs_optimized_plan_by_default():
    g = gen.erdos_renyi(40, 0.1, seed=2, directed=True)
    job = JobSpec(PageRankProgram(iterations=6), g, num_workers=1)
    raw = lift_of(job.program).plan
    engine = DenseRefEngine(job)
    assert engine.plan.digest != raw.digest  # optimized form
    unopt = DenseRefEngine(
        JobSpec(PageRankProgram(iterations=6), g, num_workers=1),
        optimize=False,
    )
    assert unopt.plan.digest == raw.digest
    a = engine.run()
    b = unopt.run()
    assert a.values == b.values and a.supersteps == b.supersteps


def test_explicit_plan_is_never_optimized():
    g = gen.path(10).as_undirected()
    plan = lift_of(ConnectedComponentsProgram()).plan
    job = JobSpec(ConnectedComponentsProgram(), g, num_workers=1)
    engine = DenseRefEngine(job, plan=plan)
    assert engine.plan is plan


def test_hoisted_evaluation_matches_plain_arc_eval():
    rng = np.random.default_rng(9)
    g = gen.erdos_renyi(50, 0.12, seed=4, directed=True)
    mk = lambda: JobSpec(  # noqa: E731
        PageRankProgram(iterations=8), g, num_workers=1
    )
    opt = optimize_plan(lift_of(mk().program).plan).plan
    assert any(op.hoist for p in opt.phases for op in p.ops)
    res = DenseRefEngine(mk(), plan=opt).run()
    ref = DenseRefEngine(mk(), optimize=False).run()
    for v in ref.values:
        assert res.values[v] == ref.values[v]  # bitwise, not approx
    del rng


# ----------------------------------------------------------------------
# Rules RPC019-022
# ----------------------------------------------------------------------
def test_rpc019_reports_optimized_digest():
    findings = [f for f in _findings(MINI_CC) if f.rule_id == "RPC019"]
    assert len(findings) == 1
    (verdict,) = optimize_source(MINI_CC)
    assert verdict.opt.plan.digest[:16] in findings[0].message
    assert verdict.lift.plan.digest[:16] in findings[0].message
    assert str(findings[0].severity) == "info"


def test_rpc020_names_the_blocking_op():
    findings = [f for f in _findings(BLOCKED) if f.rule_id == "RPC020"]
    assert len(findings) == 1
    assert "scatter" in findings[0].message
    assert str(findings[0].severity) == "info"
    # the order-free variant does not fire it
    assert not [f for f in _findings(FUSABLE) if f.rule_id == "RPC020"]


def test_rpc021_disagreement_helper():
    class FakeProfile:
        fanout = FanoutClass.NONE
        reduction = "max"

    plan = _plan(MINI_CC)  # has scatters, reduce=min
    reasons = plan_profile_disagreements(FakeProfile(), plan)
    assert len(reasons) == 2
    assert any("fanout=none" in r for r in reasons)
    assert any("reduce='min'" in r and "'max'" in r for r in reasons)
    assert plan_profile_disagreements(None, plan) == []


def test_rpc021_silent_when_analyses_agree():
    for source in (MINI_CC, BLOCKED, FUSABLE):
        assert not [
            f for f in _findings(source) if f.rule_id == "RPC021"
        ], source


def test_rpc022_fires_on_pinned_broadcast():
    (profile,) = profile_source(HAZARD, filename="<test>")
    assert profile.fanout is FanoutClass.BROADCAST
    assert profile.pickle_risks
    findings = [f for f in _findings(HAZARD) if f.rule_id == "RPC022"]
    assert len(findings) == 1
    assert "broadcast" in findings[0].message
    assert str(findings[0].severity) == "warning"


def test_rpc022_silent_when_dense_eligible_or_picklable():
    # lifted program: no hazard even though it scatters
    assert not [f for f in _findings(MINI_CC) if f.rule_id == "RPC022"]


# ----------------------------------------------------------------------
# Envelope plumbing
# ----------------------------------------------------------------------
def test_plan_verdict_envelope_carries_passes():
    (verdict,) = optimize_source(MINI_CC)
    d = verdict.as_dict()
    assert d["status"] == "lifted"
    opt = d["opt"]
    assert opt["original_digest"] == verdict.lift.plan.digest
    assert opt["digest"] == verdict.opt.plan.digest
    names = [p["name"] for p in opt["passes"]]
    assert names == [n for n, _ in PASS_VERSIONS]
    assert all("elapsed_ms" in p for p in opt["passes"])
    json.dumps(d)  # JSON-serializable end to end


def test_refused_programs_have_no_opt_payload():
    source = HAZARD
    (verdict,) = optimize_source(source)
    assert not verdict.lifted
    assert verdict.opt is None
    assert "opt" not in verdict.as_dict()


def test_kcore_peel_plan_optimizes_and_certifies():
    path = gen.path(24).as_undirected()
    cert = certify_optimization(
        lambda: JobSpec(KCoreProgram(k=2), path, num_workers=1)
    )
    assert cert.ok, cert.summary()
