"""Vectorization front-end tests: lift verdicts, refusal precision, and
the certification contract (every RPC015 claim must replay bit-equivalent
on the dense executor — a false positive here is a test failure).
"""

from __future__ import annotations

import json
import textwrap
from pathlib import Path

import pytest

from repro.algorithms import (
    ConnectedComponentsProgram,
    KCoreProgram,
    LabelPropagationProgram,
    PageRankProgram,
    SSSPProgram,
    WCCProgram,
)
from repro.check.sanitizer import certify_determinism
from repro.check.vectorize import (
    lift_of,
    lift_paths,
    lift_source,
)
from repro.graph import generators as gen

REPO_ROOT = Path(__file__).resolve().parents[2]
ALGOS = REPO_ROOT / "src" / "repro" / "algorithms"
EXAMPLES = REPO_ROOT / "examples"


def _lift_one(body: str):
    src = "from repro.bsp.api import VertexProgram\n" + textwrap.dedent(body)
    results = lift_source(src, "fixture.py")
    assert len(results) == 1, results
    return results[0]


# ----------------------------------------------------------------------
# Definitive verdicts for every bundled algorithm (acceptance criteria)
# ----------------------------------------------------------------------
#: program -> ("lifted", reduce, state_dtype) or ("refused", rule_id)
EXPECTED_VERDICTS = {
    "PageRankProgram": ("lifted", "sum", "float64"),
    "SSSPProgram": ("lifted", "min", "float64"),
    "ConnectedComponentsProgram": ("lifted", "min", "int64"),
    "WCCProgram": ("lifted", "min", "int64"),
    "KCoreProgram": ("lifted", "count", "bool"),
    "LabelPropagationProgram": ("lifted", "mode", "int64"),
    "ConvergentPageRankProgram": ("refused", "RPC016"),
    "SemiClusteringProgram": ("refused", "RPC016"),
    "BCProgram": ("refused", "RPC016"),
    "APSPProgram": ("refused", "RPC016"),
    "TriangleCountProgram": ("refused", "RPC016"),
    "DiameterEstimationProgram": ("refused", "RPC017"),
    "BipartiteMatchingProgram": ("refused", "RPC017"),
}


def test_every_bundled_algorithm_gets_a_definitive_verdict():
    verdicts = {v.program: v for v in lift_paths([str(ALGOS)])}
    assert set(verdicts) == set(EXPECTED_VERDICTS)
    for name, expected in EXPECTED_VERDICTS.items():
        v = verdicts[name]
        if expected[0] == "lifted":
            assert v.lifted, f"{name}: {v.rule_id} {v.reason}"
            assert v.plan.reduce == expected[1], name
            assert v.plan.state_dtype == expected[2], name
            assert v.plan.digest and len(v.plan.digest) == 64
        else:
            assert not v.lifted, name
            assert v.rule_id == expected[1], (name, v.rule_id, v.reason)
            # Refusals must point at the blocking construct, not just
            # the class line.
            assert v.refusal_line is not None and v.refusal_line > 0
            assert v.reason


def test_refusals_point_inside_the_program_body():
    verdicts = {v.program: v for v in lift_paths([str(ALGOS)])}
    for name, v in verdicts.items():
        if v.lifted:
            continue
        assert v.refusal_line >= v.line, (
            f"{name}: refusal at {v.refusal_line} precedes class "
            f"definition at {v.line}"
        )


def test_digests_are_stable_across_lifts():
    first = {v.program: v for v in lift_paths([str(ALGOS)]) if v.lifted}
    second = {v.program: v for v in lift_paths([str(ALGOS)]) if v.lifted}
    assert {n: v.plan.digest for n, v in first.items()} == {
        n: v.plan.digest for n, v in second.items()
    }


def test_digest_ignores_file_location_but_not_semantics():
    base = """
    class P(VertexProgram):
        def init_state(self, vertex_id, graph):
            return 0.0
        def compute(self, ctx, state, messages):
            total = 0.0
            for m in messages:
                total += m
            ctx.send_to_neighbors(total)
            ctx.vote_to_halt()
            return total
    """
    a = _lift_one(base)
    moved = "\n\n\n" + "from repro.bsp.api import VertexProgram\n" + (
        textwrap.dedent(base)
    )
    b = lift_source(moved, "elsewhere.py")[0]
    assert a.plan.digest == b.plan.digest  # line/file content-addressed out
    changed = _lift_one(
        base.replace(
            "ctx.send_to_neighbors(total)",
            "ctx.send_to_neighbors(total * 0.5)",
        )
    )
    assert changed.lifted
    assert changed.plan.digest != a.plan.digest


# ----------------------------------------------------------------------
# The certification contract: zero uncertified RPC015 over the corpus
# ----------------------------------------------------------------------
#: Every program the lifter claims RPC015 for must have a certification
#: entry here; a lifted program without one fails the sweep below.  The
#: factory builds a fresh instance; the graph exercises its plan.
def _certification_matrix():
    ws = gen.watts_strogatz(60, 4, 0.3, seed=7)
    wsu = ws.as_undirected()
    ba = gen.barabasi_albert(50, 2, seed=11)
    return {
        "PageRankProgram": (lambda: PageRankProgram(iterations=15), ba),
        "SSSPProgram": (lambda: SSSPProgram(source=0), ws),
        "ConnectedComponentsProgram": (
            lambda: ConnectedComponentsProgram(), wsu,
        ),
        "WCCProgram": (lambda: WCCProgram(), wsu),
        "KCoreProgram": (lambda: KCoreProgram(k=3), wsu),
        "LabelPropagationProgram": (
            lambda: LabelPropagationProgram(max_rounds=20), wsu,
        ),
    }


def test_no_uncertified_rpc015_claims_in_the_corpus():
    """Sweep src/repro/algorithms + examples: every lifted program must be
    in the certification matrix and actually certify against BSPEngine."""
    matrix = _certification_matrix()
    lifted = [
        v for v in lift_paths([str(ALGOS), str(EXAMPLES)]) if v.lifted
    ]
    assert lifted, "corpus sweep found no lifted programs at all"
    for v in lifted:
        assert v.program in matrix, (
            f"{v.program} claims RPC015 but has no certification entry — "
            "add one (a false-positive lift claim must fail tests)"
        )
    for name, (factory, graph) in matrix.items():
        report = certify_determinism(
            factory, graph, num_workers=4, engine="dense-ref"
        )
        assert report.ok, f"{name}: {report.summary()}"
        assert report.supersteps[0] == report.supersteps[1], name
        assert report.engine == "dense-ref"


def test_certify_weighted_sssp_on_dense_ref():
    g = gen.erdos_renyi(70, 0.08, seed=5, directed=True)
    import numpy as np

    rng = np.random.default_rng(9)
    weights = rng.uniform(0.5, 3.0, g.num_arcs)
    from repro.graph.csr import CSRGraph

    gw = CSRGraph(
        g.num_vertices, g.indptr, g.indices, weights=weights
    )
    report = certify_determinism(
        lambda: SSSPProgram(source=0), gw, num_workers=3,
        engine="dense-ref",
    )
    assert report.ok, report.summary()
    assert report.supersteps[0] == report.supersteps[1]


def test_lift_of_unwraps_live_wrappers():
    class Wrapper:
        def __init__(self, inner):
            self.inner = inner

    v = lift_of(Wrapper(PageRankProgram()))
    assert v is not None and v.lifted
    assert v.program == "PageRankProgram"


# ----------------------------------------------------------------------
# Near-miss fixtures: programs that *almost* lift, and why they don't
# ----------------------------------------------------------------------
def test_rpc016_data_dependent_branch_points_at_the_span():
    v = _lift_one("""
    class DataBranch(VertexProgram):
        def init_state(self, vertex_id, graph):
            return 0.0
        def compute(self, ctx, state, messages):
            total = 0.0
            for m in messages:
                total += m
            if total > state:
                for i, m in enumerate(messages):
                    if i < 3:
                        ctx.send_to_neighbors(m)
            ctx.vote_to_halt()
            return total
    """)
    assert not v.lifted
    assert v.rule_id == "RPC016"
    assert v.refusal_line is not None


def test_rpc017_container_state_is_refused():
    v = _lift_one("""
    class DictState(VertexProgram):
        def init_state(self, vertex_id, graph):
            return {"dist": 0.0}
        def compute(self, ctx, state, messages):
            ctx.vote_to_halt()
            return state
    """)
    assert not v.lifted
    assert v.rule_id == "RPC017"
    assert "init_state" in v.reason


def test_rpc017_tuple_message_payload_refused():
    v = _lift_one("""
    class ListPayload(VertexProgram):
        def init_state(self, vertex_id, graph):
            return 0.0
        def compute(self, ctx, state, messages):
            ctx.send_to_neighbors([state, 1.0])
            ctx.vote_to_halt()
            return state
    """)
    assert not v.lifted
    assert v.rule_id in ("RPC016", "RPC017")


def test_rpc018_unknown_reduction_is_refused():
    v = _lift_one("""
    class ProductFold(VertexProgram):
        def init_state(self, vertex_id, graph):
            return 1.0
        def compute(self, ctx, state, messages):
            total = 1.0
            for m in messages:
                total *= m
            ctx.send_to_neighbors(total)
            ctx.vote_to_halt()
            return total
    """)
    assert not v.lifted
    assert v.rule_id == "RPC018"


def test_rpc018_combiner_monoid_mismatch_is_refused():
    v = _lift_one("""
    from repro.bsp.combiners import MaxCombiner

    class Mismatch(VertexProgram):
        combiner = MaxCombiner()
        def init_state(self, vertex_id, graph):
            return 0.0
        def compute(self, ctx, state, messages):
            total = 0.0
            for m in messages:
                total += m
            ctx.send_to_neighbors(total)
            ctx.vote_to_halt()
            return total
    """)
    assert not v.lifted
    assert v.rule_id == "RPC018"


def test_walrus_and_match_lift():
    v = _lift_one("""
    class WalrusMatch(VertexProgram):
        def init_state(self, vertex_id, graph):
            return vertex_id
        def compute(self, ctx, state, messages):
            candidate = min(messages, default=state)
            match ctx.superstep:
                case 0:
                    ctx.send_to_neighbors(state)
                case _:
                    if (better := candidate < state):
                        state = candidate
                        ctx.send_to_neighbors(state)
            ctx.vote_to_halt()
            return state
    """)
    assert v.lifted, (v.rule_id, v.reason)
    assert v.plan.reduce == "min"


def test_chained_send_alias_lifts():
    v = _lift_one("""
    from repro.bsp.combiners import SumCombiner

    class Alias(VertexProgram):
        combiner = SumCombiner()
        def init_state(self, vertex_id, graph):
            return 1.0
        def compute(self, ctx, state, messages):
            total = 0.0
            for m in messages:
                total += m
            emit = ctx.send_to_neighbors
            send = emit
            send(total / 2.0)
            ctx.vote_to_halt()
            return total
    """)
    assert v.lifted, (v.rule_id, v.reason)
    assert v.plan.reduce == "sum"


# ----------------------------------------------------------------------
# Analyzer integration: the kernel rules are opt-in and INFO-severity
# ----------------------------------------------------------------------
def test_kernel_rules_do_not_run_by_default():
    from repro.check.analyzer import analyze_source

    src = (
        "from repro.bsp.api import VertexProgram\n"
        "class P(VertexProgram):\n"
        "    def init_state(self, vertex_id, graph):\n"
        "        return 0.0\n"
        "    def compute(self, ctx, state, messages):\n"
        "        ctx.vote_to_halt()\n"
        "        return state\n"
    )
    assert analyze_source(src, "p.py") == []
    kernel = analyze_source(src, "p.py", kernel_plan=True)
    assert [f.rule_id for f in kernel] == ["RPC015"]
    assert all(str(f.severity) == "info" for f in kernel)


def test_cli_json_envelope_carries_plan_digests(tmp_path, capsys):
    import argparse

    from repro.check.cli import add_check_arguments, run_check

    target = tmp_path / "prog.py"
    target.write_text(
        "from repro.bsp.api import VertexProgram\n"
        "from repro.bsp.combiners import MinCombiner\n"
        "class MiniCC(VertexProgram):\n"
        "    combiner = MinCombiner()\n"
        "    def init_state(self, vertex_id, graph):\n"
        "        return vertex_id\n"
        "    def compute(self, ctx, state, messages):\n"
        "        candidate = min(messages, default=state)\n"
        "        if ctx.superstep == 0:\n"
        "            ctx.send_to_neighbors(state)\n"
        "        elif candidate < state:\n"
        "            state = candidate\n"
        "            ctx.send_to_neighbors(state)\n"
        "        ctx.vote_to_halt()\n"
        "        return state\n"
    )
    parser = argparse.ArgumentParser()
    add_check_arguments(parser)
    args = parser.parse_args(
        [str(target), "--no-config", "--format", "json", "--kernel-plan",
         "--no-cache", "--strict"]
    )
    # INFO findings must never fail the build, even under --strict.
    assert run_check(args) == 0
    payload = json.loads(capsys.readouterr().out)
    # RPC015 (lifted) + RPC019 (the optimizer fuses MiniCC's masks)
    assert payload["infos"] == 2
    assert payload["warnings"] == 0
    (plan,) = payload["plans"]
    assert plan["status"] == "lifted"
    assert len(plan["digest"]) == 64
    assert plan["reduce"] == "min"
    info = [f for f in payload["findings"] if f["rule"] == "RPC015"]
    assert info and plan["digest"][:16] in info[0]["message"]
    opt = plan["opt"]
    assert opt["changed"] and opt["original_digest"] == plan["digest"]
    assert len(opt["digest"]) == 64 and opt["digest"] != plan["digest"]
    # the small-fix satellite: per-pass elapsed_ms rides in the envelope
    assert [p["name"] for p in opt["passes"]] == [
        "fuse-masks", "const-fold", "dead-op", "phase-fuse",
        "hoist-scatter", "cse",
    ]
    assert all(p["elapsed_ms"] >= 0 for p in opt["passes"])
    opt_info = [f for f in payload["findings"] if f["rule"] == "RPC019"]
    assert opt_info and opt["digest"][:16] in opt_info[0]["message"]


def test_runner_attaches_plan_and_coverage_gauges():
    from repro.analysis.runner import RunConfig, run_pagerank
    from repro.obs import MetricsRegistry

    metrics = MetricsRegistry()
    g = gen.barabasi_albert(40, 2, seed=3)
    res = run_pagerank(g, RunConfig(num_workers=2, metrics=metrics),
                       iterations=5)
    assert res.kernel_plan is not None
    assert res.kernel_plan.reduce == "sum"
    lifted = metrics.get(
        "repro_kernel_plan_lifted", program="PageRankProgram"
    )
    assert lifted is not None and lifted.value == 1
    phases = metrics.get(
        "repro_kernel_plan_phases", program="PageRankProgram"
    )
    assert phases is not None and phases.value == 2


def test_runner_plan_attachment_can_be_disabled():
    from dataclasses import replace

    from repro.analysis.runner import RunConfig, run_pagerank

    g = gen.barabasi_albert(40, 2, seed=3)
    cfg = replace(RunConfig(num_workers=2), auto_kernel_plan=False)
    res = run_pagerank(g, cfg, iterations=5)
    assert res.kernel_plan is None
