"""CLI tests for ``repro check``: exit codes, output formats, target
resolution, and config/flag interplay — driven in-process through
:func:`repro.check.cli.run_check` with parsed namespaces.
"""

from __future__ import annotations

import argparse
import json
from pathlib import Path

import pytest

from repro.check.cli import add_check_arguments, run_check

REPO_ROOT = Path(__file__).resolve().parents[2]

BAD_SOURCE = """\
class Bad(VertexProgram):
    def compute(self, ctx, state, messages):
        messages.sort()
        ctx.vote_to_halt()
        return state
"""

WARN_ONLY_SOURCE = """\
class NeverHalts(VertexProgram):
    def compute(self, ctx, state, messages):
        ctx.send_to_neighbors(state)
        return state
"""

CLEAN_SOURCE = """\
class Clean(VertexProgram):
    def compute(self, ctx, state, messages):
        ctx.vote_to_halt()
        return state
"""


def check(*argv: str) -> int:
    parser = argparse.ArgumentParser()
    add_check_arguments(parser)
    return run_check(parser.parse_args(list(argv)))


@pytest.fixture
def bad_file(tmp_path):
    p = tmp_path / "bad.py"
    p.write_text(BAD_SOURCE)
    return p


def test_clean_file_exits_zero(tmp_path, capsys):
    p = tmp_path / "clean.py"
    p.write_text(CLEAN_SOURCE)
    assert check(str(p), "--no-config") == 0
    assert "0 error(s), 0 warning(s)" in capsys.readouterr().out


def test_error_finding_exits_one_and_renders(bad_file, capsys):
    assert check(str(bad_file), "--no-config") == 1
    out = capsys.readouterr().out
    assert "RPC001" in out and "bad.py:3:" in out
    assert "1 error(s)" in out


def test_json_format_is_machine_readable(bad_file, capsys):
    assert check(str(bad_file), "--no-config", "--format", "json") == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["errors"] == 1 and payload["warnings"] == 0
    assert payload["sanitize"] is None
    (finding,) = payload["findings"]
    assert finding["rule"] == "RPC001"
    assert finding["severity"] == "error"
    assert finding["line"] == 3 and finding["hint"]


def test_ignore_flag_disables_rule(bad_file):
    assert check(str(bad_file), "--no-config", "--ignore", "RPC001") == 0


def test_select_flag_narrows_rules(bad_file):
    assert check(str(bad_file), "--no-config", "--select", "RPC002") == 0


def test_warnings_only_fail_under_strict(tmp_path):
    p = tmp_path / "warn.py"
    p.write_text(WARN_ONLY_SOURCE)
    assert check(str(p), "--no-config") == 0
    assert check(str(p), "--no-config", "--strict") == 1


def test_missing_target_exits_two(capsys):
    assert check("no/such/path.py", "--no-config") == 2
    assert "neither a path nor an importable module" in capsys.readouterr().err


def test_dotted_module_target_resolves():
    assert check("repro.algorithms.pagerank", "--no-config") == 0


def test_directory_target_scans_recursively(tmp_path):
    (tmp_path / "pkg").mkdir()
    (tmp_path / "pkg" / "deep.py").write_text(BAD_SOURCE)
    assert check(str(tmp_path), "--no-config") == 1


def test_list_rules_text_and_json(capsys):
    assert check("--list-rules") == 0
    text = capsys.readouterr().out
    assert "RPC001" in text and "RPC014" in text and "fix:" in text
    assert "RPC015" in text and "RPC018" in text
    assert "RPC019" in text and "RPC022" in text
    assert check("--list-rules", "--format", "json") == 0
    envelope = json.loads(capsys.readouterr().out)
    assert envelope["version"].count(".") == 1
    catalog = envelope["rules"]
    assert len(catalog) == 22
    assert {r["id"] for r in catalog} == {f"RPC{i:03d}" for i in range(1, 23)}
    # Sorted by id — the envelope is golden-tested, so order is contract.
    assert [r["id"] for r in catalog] == sorted(r["id"] for r in catalog)


def test_repo_algorithms_and_examples_are_clean():
    targets = [
        str(REPO_ROOT / "src" / "repro" / "algorithms"),
        str(REPO_ROOT / "examples"),
    ]
    assert check(*targets, "--strict") == 0


def test_json_envelope_is_stable(bad_file, capsys):
    assert check(str(bad_file), "--no-config", "--format", "json") == 1
    payload = json.loads(capsys.readouterr().out)
    # Stable envelope: version, rule metadata, per-file timing.
    assert payload["version"].count(".") == 1
    assert {r["id"] for r in payload["rules"]} >= {"RPC001", "RPC014"}
    for rule in payload["rules"]:
        assert set(rule) == {"id", "severity", "summary", "hint"}
    (entry,) = payload["files"]
    assert entry["path"].endswith("bad.py")
    assert entry["elapsed_ms"] >= 0
    assert [f["rule"] for f in entry["findings"]] == ["RPC001"]
    assert payload["profiles"] is None  # --profile not requested


def test_profile_flag_text_and_json(capsys):
    target = str(REPO_ROOT / "src" / "repro" / "algorithms" / "bc.py")
    assert check(target, "--no-config", "--profile") == 0
    out = capsys.readouterr().out
    assert "cost profiles" in out and "fan-out=broadcast" in out
    assert check(target, "--no-config", "--profile", "--format", "json") == 0
    payload = json.loads(capsys.readouterr().out)
    (profile,) = payload["profiles"]
    assert profile["program"] == "BCProgram"
    assert profile["fanout"] == "broadcast"
    assert profile["message_driven"] is True
    assert profile["payload"]["nbytes"] > 0
