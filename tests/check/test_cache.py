"""Analyzer result cache: warm-run skips, keying, invalidation, CLI flag,
plus the golden-file contract for ``repro check --list-rules``.
"""

from __future__ import annotations

import argparse
import json
from pathlib import Path

import pytest

from repro.check.analyzer import ANALYZER_VERSION, analyze_paths_detailed
from repro.check.cache import AnalysisCache
from repro.check.cli import add_check_arguments, run_check

REPO_ROOT = Path(__file__).resolve().parents[2]
GOLDEN = Path(__file__).parent / "data" / "list_rules_golden.json"

PROGRAM = """\
from repro.bsp.api import VertexProgram
from repro.bsp.combiners import MinCombiner

class MiniCC(VertexProgram):
    combiner = MinCombiner()
    def init_state(self, vertex_id, graph):
        return vertex_id
    def compute(self, ctx, state, messages):
        candidate = min(messages, default=state)
        if ctx.superstep == 0:
            ctx.send_to_neighbors(state)
        elif candidate < state:
            state = candidate
            ctx.send_to_neighbors(state)
        ctx.vote_to_halt()
        return state
"""

BAD = """\
class Bad(VertexProgram):
    def compute(self, ctx, state, messages):
        messages.sort()
        ctx.vote_to_halt()
        return state
"""


@pytest.fixture
def tree(tmp_path):
    (tmp_path / "good.py").write_text(PROGRAM)
    (tmp_path / "bad.py").write_text(BAD)
    return tmp_path


def test_warm_run_skips_all_unchanged_files(tree, tmp_path):
    cache = AnalysisCache(root=tmp_path)
    cold = analyze_paths_detailed(
        [str(tree)], profile=True, kernel_plan=True, cache=cache
    )
    assert all(not fr.cached for fr in cold)
    assert cache.hits == 0 and cache.misses == len(cold)

    warm_cache = AnalysisCache(root=tmp_path)
    warm = analyze_paths_detailed(
        [str(tree)], profile=True, kernel_plan=True, cache=warm_cache
    )
    assert all(fr.cached for fr in warm)
    assert warm_cache.hits == len(warm) and warm_cache.misses == 0
    # Replayed results are structurally identical.
    for a, b in zip(cold, warm):
        assert a.path == b.path
        assert a.findings == b.findings
        assert [p.as_dict() for p in a.profiles] == [
            p.as_dict() for p in b.profiles
        ]
        assert [v.as_dict() for v in a.plans] == [
            v.as_dict() for v in b.plans
        ]
        # Cached elapsed_ms reports the original analysis time.
        assert b.elapsed_ms == pytest.approx(a.elapsed_ms)


def test_source_change_invalidates_only_that_file(tree, tmp_path):
    cache = AnalysisCache(root=tmp_path)
    analyze_paths_detailed([str(tree)], cache=cache)
    (tree / "bad.py").write_text(BAD + "\n# touched\n")
    again = analyze_paths_detailed(
        [str(tree)], cache=AnalysisCache(root=tmp_path)
    )
    by_name = {Path(fr.path).name: fr for fr in again}
    assert by_name["good.py"].cached
    assert not by_name["bad.py"].cached


def test_flags_and_config_partition_the_cache(tree, tmp_path):
    cache = AnalysisCache(root=tmp_path)
    analyze_paths_detailed([str(tree)], cache=cache)
    # Same files, different flags: no hit (the stored envelope would be
    # missing the profile/plan payloads).
    other = AnalysisCache(root=tmp_path)
    res = analyze_paths_detailed(
        [str(tree)], profile=True, cache=other
    )
    assert all(not fr.cached for fr in res)


def test_analyzer_version_invalidates(tree, tmp_path):
    cache = AnalysisCache(root=tmp_path)
    source = (tree / "good.py").read_text()
    key = cache.key_for(source, ANALYZER_VERSION, "sig", False, False)
    cache.store(key, {"analyzer_version": "0.0", "findings": []})
    assert cache.load(key, ANALYZER_VERSION) is None


def test_planopt_signature_partitions_the_key(tree, tmp_path):
    # A pass-version bump must produce a different key (stale optimized
    # plans can never replay), while the empty signature — every
    # non-kernel-plan run — must keep the historical key shape.
    cache = AnalysisCache(root=tmp_path)
    source = (tree / "good.py").read_text()
    base = cache.key_for(source, ANALYZER_VERSION, "sig", False, True)
    assert base == cache.key_for(
        source, ANALYZER_VERSION, "sig", False, True, ""
    )
    now = cache.key_for(
        source, ANALYZER_VERSION, "sig", False, True, "fuse-masks=1"
    )
    bumped = cache.key_for(
        source, ANALYZER_VERSION, "sig", False, True, "fuse-masks=2"
    )
    assert len({base, now, bumped}) == 3


def test_planopt_version_bump_invalidates_kernel_plan_entries(
    tree, tmp_path, monkeypatch
):
    import repro.check.planopt as planopt

    cache = AnalysisCache(root=tmp_path)
    analyze_paths_detailed([str(tree)], kernel_plan=True, cache=cache)
    warm = analyze_paths_detailed(
        [str(tree)], kernel_plan=True, cache=AnalysisCache(root=tmp_path)
    )
    assert all(fr.cached for fr in warm)
    monkeypatch.setattr(
        planopt, "PLANOPT_SIGNATURE", planopt.PLANOPT_SIGNATURE + ";new=1"
    )
    cold = analyze_paths_detailed(
        [str(tree)], kernel_plan=True, cache=AnalysisCache(root=tmp_path)
    )
    assert all(not fr.cached for fr in cold)


def test_corrupt_entry_is_a_miss(tree, tmp_path):
    cache = AnalysisCache(root=tmp_path)
    analyze_paths_detailed([str(tree)], cache=cache)
    for entry in cache.directory.iterdir():
        entry.write_text("{not json")
    res = analyze_paths_detailed(
        [str(tree)], cache=AnalysisCache(root=tmp_path)
    )
    assert all(not fr.cached for fr in res)


def test_library_default_is_no_cache(tree, monkeypatch, tmp_path):
    monkeypatch.chdir(tmp_path)
    analyze_paths_detailed([str(tree)])
    assert not (tmp_path / ".repro-cache").exists()


def _check(*argv: str) -> int:
    parser = argparse.ArgumentParser()
    add_check_arguments(parser)
    return run_check(parser.parse_args(list(argv)))


def test_cli_cache_default_on_and_no_cache_flag(
    tree, monkeypatch, tmp_path, capsys
):
    monkeypatch.chdir(tmp_path)
    assert _check(str(tree), "--no-config", "--format", "json") == 1
    assert (tmp_path / ".repro-cache" / "check").exists()
    capsys.readouterr()
    assert _check(str(tree), "--no-config", "--format", "json") == 1
    payload = json.loads(capsys.readouterr().out)
    assert all(entry["cached"] for entry in payload["files"])

    # --no-cache neither reads nor grows the store.
    before = sorted((tmp_path / ".repro-cache" / "check").iterdir())
    capsys.readouterr()
    assert _check(
        str(tree), "--no-config", "--format", "json", "--no-cache"
    ) == 1
    payload = json.loads(capsys.readouterr().out)
    assert all(not entry["cached"] for entry in payload["files"])
    assert sorted((tmp_path / ".repro-cache" / "check").iterdir()) == before


def test_list_rules_json_matches_golden(capsys):
    assert _check("--list-rules", "--format", "json") == 0
    out = capsys.readouterr().out
    golden = GOLDEN.read_text()
    assert json.loads(out) == json.loads(golden)
    # Byte-stable, not just structurally equal: consumers diff this.
    assert out == golden, (
        "repro check --list-rules --format json output changed; if the "
        "rule catalog legitimately changed, regenerate "
        "tests/check/data/list_rules_golden.json"
    )
