"""Static cost models (repro.check.costmodel): fan-out classification,
payload/combiner/aggregator inference, live-object profiling, and the
bytes-per-root prior that seeds swath sizing.
"""

from __future__ import annotations

import textwrap
from pathlib import Path

import pytest

from repro.check.costmodel import (
    FanoutClass,
    estimate_bytes_per_root,
    profile_of,
    profile_paths,
    profile_source,
)

REPO_ROOT = Path(__file__).resolve().parents[2]
ALGOS = REPO_ROOT / "src" / "repro" / "algorithms"


def one_profile(source: str):
    profiles = profile_source(textwrap.dedent(source), filename="<fixture>")
    assert len(profiles) == 1
    return profiles[0]


# ----------------------------------------------------------------------
# Fan-out classification
# ----------------------------------------------------------------------
def test_no_sends_is_none_class():
    p = one_profile("""
        class P(VertexProgram):
            def compute(self, ctx, state, messages):
                ctx.vote_to_halt()
                return state
    """)
    assert p.fanout is FanoutClass.NONE
    assert p.fanout_coeffs == (0, 0, 0)
    assert p.send_sites == ()


def test_single_send_is_constant_class():
    p = one_profile("""
        class P(VertexProgram):
            def compute(self, ctx, state, messages):
                ctx.send(0, state)
                return state
    """)
    assert p.fanout is FanoutClass.CONSTANT
    assert p.fanout_coeffs == (1, 0, 0)


def test_send_to_neighbors_is_out_degree_class():
    p = one_profile("""
        class P(VertexProgram):
            def compute(self, ctx, state, messages):
                ctx.send_to_neighbors(state)
                return state
    """)
    assert p.fanout is FanoutClass.OUT_DEGREE
    assert p.fanout_coeffs == (0, 1, 0)


def test_send_in_neighbors_loop_is_out_degree_class():
    p = one_profile("""
        class P(VertexProgram):
            def compute(self, ctx, state, messages):
                for u in ctx.out_neighbors:
                    ctx.send(int(u), state)
                return state
    """)
    assert p.fanout is FanoutClass.OUT_DEGREE


def test_neighbor_alias_chain_still_out_degree():
    # Names derived from ctx.out_neighbors stay neighbor-classed.
    p = one_profile("""
        class P(VertexProgram):
            def compute(self, ctx, state, messages):
                nbrs = sorted(ctx.out_neighbors)
                targets = nbrs
                for u in targets:
                    ctx.send(int(u), state)
                return state
    """)
    assert p.fanout is FanoutClass.OUT_DEGREE


def test_reply_loop_over_messages_is_out_degree_class():
    # One data loop over the in-flow is non-amplifying (reply pattern).
    p = one_profile("""
        class P(VertexProgram):
            def compute(self, ctx, state, messages):
                for sender in messages:
                    ctx.send(sender, state)
                return state
    """)
    assert p.fanout is FanoutClass.OUT_DEGREE
    assert p.fanout_coeffs == (0, 0, 1)


def test_degree_inside_data_loop_is_broadcast():
    p = one_profile("""
        class P(VertexProgram):
            def compute(self, ctx, state, messages):
                for m in messages:
                    ctx.send_to_neighbors(m)
                return state
    """)
    assert p.fanout is FanoutClass.BROADCAST
    assert p.fanout_coeffs is None


def test_nested_data_loops_are_broadcast():
    p = one_profile("""
        class P(VertexProgram):
            def compute(self, ctx, state, messages):
                for src, candidates in messages:
                    for other in candidates:
                        ctx.send(other, src)
                return state
    """)
    assert p.fanout is FanoutClass.BROADCAST


def test_constant_loop_does_not_amplify():
    p = one_profile("""
        class P(VertexProgram):
            def compute(self, ctx, state, messages):
                for i in range(3):
                    ctx.send(i, state)
                return state
    """)
    assert p.fanout is FanoutClass.CONSTANT


def test_while_loop_counts_as_data_loop():
    p = one_profile("""
        class P(VertexProgram):
            def compute(self, ctx, state, messages):
                while state > 0:
                    ctx.send_to_neighbors(state)
                    state -= 1
                return state
    """)
    assert p.fanout is FanoutClass.BROADCAST


def test_branch_sensitivity_takes_the_worst_branch():
    p = one_profile("""
        class P(VertexProgram):
            def compute(self, ctx, state, messages):
                if state:
                    ctx.send(0, state)
                else:
                    for m in messages:
                        ctx.send_to_neighbors(m)
                return state
    """)
    assert p.fanout is FanoutClass.BROADCAST


def test_superstep_pinned_sites_get_per_superstep_classes():
    p = one_profile("""
        class P(VertexProgram):
            def compute(self, ctx, state, messages):
                if ctx.superstep == 0:
                    ctx.send_to_neighbors(state)
                if ctx.superstep == 1:
                    for m in messages:
                        ctx.send_to_neighbors(m)
                return state
    """)
    assert dict(p.fanout_by_superstep) == {
        0: FanoutClass.OUT_DEGREE,
        1: FanoutClass.BROADCAST,
    }
    assert p.fanout is FanoutClass.BROADCAST


def test_sends_in_self_helper_methods_are_found():
    p = one_profile("""
        class P(VertexProgram):
            def compute(self, ctx, state, messages):
                return self._step(ctx, state, messages)

            def _step(self, c, s, msgs):
                for sender in msgs:
                    c.send(sender, s)
                return s
    """)
    assert p.fanout is FanoutClass.OUT_DEGREE
    assert len(p.send_sites) == 1


def test_fanout_class_ordering():
    order = [
        FanoutClass.NONE,
        FanoutClass.CONSTANT,
        FanoutClass.OUT_DEGREE,
        FanoutClass.BROADCAST,
    ]
    for hi_idx, hi in enumerate(order):
        for lo in order[: hi_idx + 1]:
            assert hi.covers(lo)
    assert not FanoutClass.CONSTANT.covers(FanoutClass.BROADCAST)


# ----------------------------------------------------------------------
# Payload model
# ----------------------------------------------------------------------
def test_tuple_payload_width_and_bytes():
    p = one_profile("""
        class P(VertexProgram):
            def compute(self, ctx, state, messages):
                ctx.send(0, (1, state, 2.5))
                return state
    """)
    assert p.payload.kind == "tuple"
    assert p.payload.width == 3
    assert p.payload.nbytes == 24
    assert p.payload.bounded


def test_container_construction_payload_is_unbounded():
    p = one_profile("""
        class P(VertexProgram):
            def compute(self, ctx, state, messages):
                ctx.send_to_neighbors(tuple(state))
                return state
    """)
    assert p.payload.kind == "sequence"
    assert not p.payload.bounded


def test_widest_payload_wins():
    p = one_profile("""
        class P(VertexProgram):
            def compute(self, ctx, state, messages):
                ctx.send(0, state)
                ctx.send(1, (state, 1, 2, 3, 4))
                return state
    """)
    assert p.payload.nbytes == 40


# ----------------------------------------------------------------------
# Combiner / reduction / aggregator inference
# ----------------------------------------------------------------------
def test_sum_reduction_suggests_sum_combiner():
    p = one_profile("""
        class P(VertexProgram):
            def compute(self, ctx, state, messages):
                total = sum(messages)
                ctx.send_to_neighbors(total)
                return total
    """)
    assert p.reduction == "sum"
    assert p.combiner_declared is None
    assert p.combiner_suggested == "SumCombiner"


def test_accumulation_loop_detected_as_sum():
    p = one_profile("""
        class P(VertexProgram):
            def compute(self, ctx, state, messages):
                acc = 0.0
                for m in messages:
                    acc += m
                ctx.send_to_neighbors(acc)
                return acc
    """)
    assert p.reduction == "sum"
    assert p.combiner_suggested == "SumCombiner"


def test_declared_combiner_silences_suggestion():
    p = one_profile("""
        class P(VertexProgram):
            combiner = MinCombiner()

            def compute(self, ctx, state, messages):
                best = min(messages, default=state)
                ctx.send_to_neighbors(best)
                return best
    """)
    assert p.combiner_declared == "MinCombiner"
    assert p.combiner_suggested is None


def test_instance_level_combiner_is_detected():
    p = one_profile("""
        class P(VertexProgram):
            def __init__(self):
                self.combiner = SumCombiner()

            def compute(self, ctx, state, messages):
                ctx.send_to_neighbors(sum(messages))
                return state
    """)
    assert p.combiner_declared == "SumCombiner"


def test_wide_tuple_payload_blocks_combiner_suggestion():
    # The fold target isn't the message scalar itself: don't suggest.
    p = one_profile("""
        class P(VertexProgram):
            def compute(self, ctx, state, messages):
                total = sum(messages)
                ctx.send(0, (total, state, 1))
                return state
    """)
    assert p.combiner_suggested is None


def test_aggregator_types_inferred():
    p = one_profile("""
        class P(VertexProgram):
            def aggregators(self):
                return {"mass": SumAggregator(), "seen": MaxAggregator()}

            def compute(self, ctx, state, messages):
                ctx.vote_to_halt()
                return state
    """)
    assert dict(p.aggregators) == {
        "mass": "SumAggregator",
        "seen": "MaxAggregator",
    }


# ----------------------------------------------------------------------
# Bundled algorithms match their analytic classes (acceptance criteria)
# ----------------------------------------------------------------------
EXPECTED_CLASSES = {
    "PageRankProgram": FanoutClass.OUT_DEGREE,
    "ConvergentPageRankProgram": FanoutClass.OUT_DEGREE,
    "ConnectedComponentsProgram": FanoutClass.OUT_DEGREE,
    "WCCProgram": FanoutClass.OUT_DEGREE,
    "LabelPropagationProgram": FanoutClass.OUT_DEGREE,
    "SSSPProgram": FanoutClass.OUT_DEGREE,
    "DiameterEstimationProgram": FanoutClass.OUT_DEGREE,
    "KCoreProgram": FanoutClass.OUT_DEGREE,
    "SemiClusteringProgram": FanoutClass.OUT_DEGREE,
    "BipartiteMatchingProgram": FanoutClass.OUT_DEGREE,
    "BCProgram": FanoutClass.BROADCAST,
    "APSPProgram": FanoutClass.BROADCAST,
    "TriangleCountProgram": FanoutClass.BROADCAST,
}


def test_bundled_algorithms_match_analytic_classes():
    profiles = {p.program: p for p in profile_paths([str(ALGOS)])}
    assert set(profiles) == set(EXPECTED_CLASSES)
    for name, expected in EXPECTED_CLASSES.items():
        assert profiles[name].fanout is expected, name


def test_traversal_programs_are_message_driven():
    profiles = {p.program: p for p in profile_paths([str(ALGOS)])}
    assert profiles["BCProgram"].message_driven
    assert profiles["APSPProgram"].message_driven
    assert not profiles["PageRankProgram"].message_driven


def test_pagerank_gets_sum_combiner_and_dangling_aggregator():
    profiles = {p.program: p for p in profile_paths([str(ALGOS)])}
    pr = profiles["PageRankProgram"]
    assert pr.combiner_declared == "SumCombiner"
    assert dict(pr.aggregators) == {"dangling": "SumAggregator"}


# ----------------------------------------------------------------------
# profile_of: live objects, wrappers, as_dict
# ----------------------------------------------------------------------
def test_profile_of_live_program_object():
    from repro.algorithms.bc import BCProgram

    p = profile_of(BCProgram())
    assert p is not None
    assert p.program == "BCProgram"
    assert p.fanout is FanoutClass.BROADCAST


def test_profile_of_accepts_class_and_unwraps_inner():
    from repro.algorithms.pagerank import PageRankProgram
    from repro.check import SanitizingProgram

    direct = profile_of(PageRankProgram)
    wrapped = profile_of(SanitizingProgram(PageRankProgram(iterations=3)))
    assert direct is not None and wrapped is not None
    assert direct.program == wrapped.program == "PageRankProgram"


def test_profile_of_sourceless_class_returns_none():
    cls = eval("type('Ghost', (), {})")  # no source file on disk
    assert profile_of(cls) is None


def test_as_dict_round_trips_through_json():
    import json

    from repro.algorithms.bc import BCProgram

    p = profile_of(BCProgram)
    d = json.loads(json.dumps(p.as_dict()))
    assert d["program"] == "BCProgram"
    assert d["fanout"] == "broadcast"
    assert d["fanout_coeffs"] is None
    assert len(d["send_sites"]) == len(p.send_sites)
    assert d["payload"]["bounded"] is True


# ----------------------------------------------------------------------
# Bytes-per-root prior
# ----------------------------------------------------------------------
def test_broadcast_prior_scales_with_edges():
    from repro.algorithms.bc import BCProgram
    from repro.algorithms.pagerank import PageRankProgram

    bc = profile_of(BCProgram)
    pr = profile_of(PageRankProgram)
    bc_cost = estimate_bytes_per_root(
        bc, num_vertices=1000, num_edges=8000, num_workers=4
    )
    pr_cost = estimate_bytes_per_root(
        pr, num_vertices=1000, num_edges=8000, num_workers=4
    )
    assert bc_cost > pr_cost > 0
    denser = estimate_bytes_per_root(
        bc, num_vertices=1000, num_edges=64_000, num_workers=4
    )
    assert denser > bc_cost


def test_prior_rejects_bad_worker_count():
    from repro.algorithms.bc import BCProgram

    with pytest.raises(ValueError):
        estimate_bytes_per_root(
            profile_of(BCProgram), num_vertices=10, num_edges=10, num_workers=0
        )


# ----------------------------------------------------------------------
# Robustness: walrus bindings, match statements, chained send aliasing
# ----------------------------------------------------------------------
def test_chained_send_alias_is_a_send_site():
    p = one_profile("""
        class Alias(VertexProgram):
            def compute(self, ctx, state, messages):
                emit = ctx.send_to_neighbors
                send = emit
                send(state + 1.0)
                ctx.vote_to_halt()
                return state
    """)
    assert p.fanout is FanoutClass.OUT_DEGREE
    assert [s.call for s in p.send_sites] == ["send_to_neighbors"]


def test_aliased_point_to_point_send_in_message_loop():
    p = one_profile("""
        class AliasSend(VertexProgram):
            def compute(self, ctx, state, messages):
                point = ctx.send
                for m in messages:
                    point(m[0], (state, 1.0))
                ctx.vote_to_halt()
                return state
    """)
    assert p.fanout is FanoutClass.OUT_DEGREE
    (site,) = p.send_sites
    assert site.call == "send"
    assert site.payload.kind == "tuple"


def test_match_statement_pins_supersteps():
    p = one_profile("""
        class MatchPin(VertexProgram):
            def compute(self, ctx, state, messages):
                match ctx.superstep:
                    case 0:
                        ctx.send_to_neighbors(state)
                    case 1:
                        ctx.send_to_neighbors(state * 2.0)
                    case _:
                        ctx.vote_to_halt()
                return state
    """)
    assert [s.superstep for s in p.send_sites] == [0, 1]


def test_walrus_bound_neighbors_classify_as_degree_fanout():
    p = one_profile("""
        class WalrusNeighbors(VertexProgram):
            def compute(self, ctx, state, messages):
                if (ns := ctx.out_neighbors()) is not None:
                    for v in ns:
                        ctx.send(v, 1.0)
                ctx.vote_to_halt()
                return state
    """)
    assert p.fanout is FanoutClass.OUT_DEGREE


def test_near_miss_alias_of_unrelated_method_is_not_a_send():
    p = one_profile("""
        class NotASend(VertexProgram):
            def compute(self, ctx, state, messages):
                halt = ctx.vote_to_halt
                halt()
                return state
    """)
    assert p.fanout is FanoutClass.NONE
    assert p.send_sites == ()
