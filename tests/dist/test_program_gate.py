"""RPC011 process-engine gate: unpicklable program state is rejected
*before* any child process forks, with an actionable error."""

import multiprocessing

import pytest

from repro.algorithms import PageRankProgram
from repro.bsp import JobSpec, VertexProgram, run_job, run_job_process
from repro.dist import ProcessBSPEngine, ProgramSafetyError


class LambdaStateProgram(VertexProgram):
    """Fixture: stores a lambda on ``self`` — pickles fine nowhere."""

    def __init__(self):
        self.score = lambda x: x * 2

    def compute(self, ctx, state, messages):
        ctx.vote_to_halt()
        return self.score(len(messages))


class ClosureStateProgram(VertexProgram):
    """Fixture: closure escapes into per-vertex state."""

    def compute(self, ctx, state, messages):
        def scorer(m):
            return m + ctx.superstep

        ctx.vote_to_halt()
        return scorer


class TestGateRejects:
    def test_lambda_state_raises_before_forking(self, ring10):
        before = set(multiprocessing.active_children())
        with pytest.raises(ProgramSafetyError) as exc_info:
            ProcessBSPEngine(
                JobSpec(program=LambdaStateProgram(), graph=ring10, num_workers=2)
            )
        # Constructor failed before super().__init__: no fleet was spawned.
        assert set(multiprocessing.active_children()) == before
        err = exc_info.value
        assert err.program_name == "LambdaStateProgram"
        assert err.risks and err.risks[0].method == "__init__"
        assert "lambda" in str(err)
        assert "check_program=False" in str(err)  # actionable override

    def test_closure_in_state_rejected(self, ring10):
        with pytest.raises(ProgramSafetyError):
            run_job_process(
                JobSpec(program=ClosureStateProgram(), graph=ring10, num_workers=2)
            )

    def test_run_job_process_propagates(self, ring10):
        with pytest.raises(ProgramSafetyError, match="unpicklable"):
            run_job_process(
                JobSpec(program=LambdaStateProgram(), graph=ring10, num_workers=2)
            )


class TestGateAllows:
    def test_clean_program_unaffected(self, ring10):
        spec = lambda: JobSpec(
            program=PageRankProgram(4), graph=ring10, num_workers=2
        )
        assert run_job_process(spec()).values == run_job(spec()).values

    def test_override_skips_gate(self, ring10):
        # The fixture never actually ships its lambda through a pickle
        # boundary mid-run (no checkpoints), so with the gate off the run
        # completes.
        engine = ProcessBSPEngine(
            JobSpec(program=LambdaStateProgram(), graph=ring10, num_workers=2),
            check_program=False,
        )
        res = engine.run()
        assert res.supersteps >= 1

    def test_sequential_engine_never_gated(self, ring10):
        res = run_job(
            JobSpec(program=LambdaStateProgram(), graph=ring10, num_workers=2)
        )
        assert res.supersteps >= 1


def test_cli_surfaces_gate_error(monkeypatch, capsys):
    """`repro run --engine process` prints the gate error and exits 1."""
    from repro import cli as cli_mod
    from repro.check.costmodel import PickleRisk

    def boom(*args, **kwargs):
        raise ProgramSafetyError(
            "LambdaStateProgram",
            [PickleRisk(line=7, method="__init__", detail="lambda stored in self.score")],
        )

    monkeypatch.setattr(cli_mod, "run_pagerank", boom)
    rc = cli_mod.main(
        ["run", "--dataset", "WG", "--scale", "0.01", "--app", "pagerank",
         "--engine", "process"]
    )
    assert rc == 1
    err = capsys.readouterr().err
    assert "unpicklable" in err and "check_program=False" in err
