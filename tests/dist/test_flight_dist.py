"""Flight recorder under the process engine: child events marshalled to
the coordinator ring at barriers, respawn budget exhaustion, and the
postmortem bundle that names the killed worker."""

import pytest

from repro.algorithms import PageRankProgram
from repro.bsp import JobSpec
from repro.dist import ProcessBSPEngine
from repro.obs import (
    FlightRecorder,
    PostmortemWriter,
    load_postmortem,
    render_incident_report,
)


def pr_job(graph, **kw):
    kw.setdefault("flight", FlightRecorder(capacity=8192))
    return JobSpec(
        program=PageRankProgram(6), graph=graph, num_workers=3,
        checkpoint_interval=2, **kw,
    )


class TestChildEventMarshalling:
    def test_child_events_reach_coordinator_ring(self, small_world):
        job = pr_job(small_world)
        # fast heartbeats so several beats land inside the short run
        res = ProcessBSPEngine(job, heartbeat_interval=0.005).run()
        events = job.flight.snapshot()
        child = [e for e in events if e.worker >= 0]
        assert child, "child events must be merged at barriers"
        kinds = {e.kind for e in child}
        assert "worker-compute" in kinds
        assert "heartbeat-send" in kinds
        # every worker reported compute events for every superstep
        computes = [e for e in child if e.kind == "worker-compute"]
        workers = {e.worker for e in computes}
        assert workers == {0, 1, 2}
        steps = sorted({e.superstep for e in computes})
        assert steps == list(range(res.supersteps))

    def test_merge_preserves_per_worker_order(self, small_world):
        job = pr_job(small_world)
        ProcessBSPEngine(job).run()
        for worker, events in job.flight.by_worker().items():
            if worker < 0:
                continue
            # child-side stamps survive the restamp and stay ordered
            child_seqs = [e.attrs["worker_seq"] for e in events]
            assert child_seqs == sorted(child_seqs)
            coord_seqs = [e.seq for e in events]
            assert coord_seqs == sorted(coord_seqs)

    def test_order_preserved_across_kill_and_respawn(self, small_world):
        job = pr_job(small_world)
        engine = ProcessBSPEngine(job)
        engine.kill_worker_at(2, 1)
        res = engine.run()
        assert res.recoveries and res.recoveries[0].failed_worker == 1
        kinds = [e.kind for e in job.flight.snapshot()]
        assert "worker-lost" in kinds
        assert "worker-respawn" in kinds
        assert "recovery" in kinds
        # the respawned worker 1 keeps a monotonic per-worker view: the
        # replacement child restarts its private seq at 0, but the merge
        # restamps onto the coordinator clock so ring order holds
        w1 = job.flight.by_worker()[1]
        coord_seqs = [e.seq for e in w1]
        assert coord_seqs == sorted(coord_seqs)
        lost = [e for e in job.flight.snapshot() if e.kind == "worker-lost"]
        assert lost[0].attrs["lost_worker"] == 1
        assert "SIGKILL" in lost[0].attrs["reason"]

    def test_worker_liveness_shape(self, small_world):
        engine = ProcessBSPEngine(pr_job(small_world))
        try:
            rows = engine.worker_liveness()
            assert [r["worker"] for r in rows] == [0, 1, 2]
            assert all(r["alive"] for r in rows)
            assert all(r["heartbeat_age_seconds"] >= 0 for r in rows)
        finally:
            engine.run()  # drain children cleanly


class TestRespawnBudget:
    def test_negative_budget_rejected(self, small_world):
        with pytest.raises(ValueError, match="max_respawns"):
            ProcessBSPEngine(pr_job(small_world), max_respawns=-1)

    def test_budget_allows_counted_respawns(self, small_world):
        engine = ProcessBSPEngine(pr_job(small_world), max_respawns=1)
        engine.kill_worker_at(2, 0)
        res = engine.run()
        assert res.recoveries
        respawns = [
            e for e in engine.job.flight.snapshot()
            if e.kind == "worker-respawn"
        ]
        assert respawns and respawns[0].attrs["budget"] == 1

    def test_exhausted_budget_aborts_with_bundle(self, small_world, tmp_path):
        pm = PostmortemWriter(tmp_path / "budget")
        job = pr_job(small_world, postmortem=pm)
        engine = ProcessBSPEngine(job, max_respawns=0)
        engine.kill_worker_at(2, 1)
        with pytest.raises(RuntimeError, match="respawn budget"):
            engine.run()
        assert pm.written is not None
        bundle = load_postmortem(pm.written)
        assert bundle["reason"]["type"] == "RuntimeError"
        assert "worker 1" in bundle["reason"]["message"]
        # last committed superstep marker survives into the bundle: the
        # checkpoint at superstep 1 committed before the kill at 2
        assert bundle["progress"]["last_committed_superstep"] >= 0
        report = render_incident_report(bundle)
        assert "worker 1" in report
        assert "SIGKILL" in report
        assert "last committed superstep" in report
