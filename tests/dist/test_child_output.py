"""Child process output must route through the coordinator, atomically.

Worker processes redirect their stdout/stderr into a buffer that ships
back with the flush reply; the coordinator prints it as whole
``[worker N]``-prefixed lines in one write.  Nothing a vertex program
prints may reach the terminal directly from a child — that is what
interleaved half-lines under ``--engine process --progress`` looked like.
"""

import re

from repro.algorithms import PageRankProgram
from repro.bsp import JobSpec, run_job, run_job_process


class NoisyPageRank(PageRankProgram):
    def compute(self, ctx, state, messages):
        if ctx.superstep == 1 and ctx.vertex_id % 25 == 0:
            print(f"probe vertex={ctx.vertex_id}")
        return super().compute(ctx, state, messages)


def test_child_prints_arrive_prefixed_and_whole(small_world, capfd):
    res = run_job_process(
        JobSpec(program=NoisyPageRank(6), graph=small_world, num_workers=3)
    )
    err = capfd.readouterr().err
    probes = [ln for ln in err.splitlines() if "probe" in ln]
    assert probes, "the child's prints must surface on coordinator stderr"
    # Every surfaced line is whole and carries its worker's prefix.
    assert all(
        re.fullmatch(r"\[worker \d\] probe vertex=\d+", ln) for ln in probes
    )
    # All three workers host multiples of 25 among 60 vertices? At least
    # one does; more importantly, the prefix matches the printing worker.
    workers = {int(ln[8]) for ln in probes}
    assert workers <= {0, 1, 2}
    # Routing the output must not perturb the result.
    clean = run_job(
        JobSpec(program=PageRankProgram(6), graph=small_world, num_workers=3)
    )
    assert res.values == clean.values


def test_quiet_programs_emit_nothing(small_world, capfd):
    run_job_process(
        JobSpec(program=PageRankProgram(4), graph=small_world, num_workers=2)
    )
    assert "[worker" not in capfd.readouterr().err
