"""ProcessBSPEngine: bit-equality with the sequential engine, transport
metrics, span/violation marshalling, and failure modes of live children."""

import numpy as np
import pytest

from repro.algorithms import BCProgram, PageRankProgram, betweenness_reference
from repro.algorithms import bc as bc_mod
from repro.analysis import RunConfig, run_pagerank, run_traversal
from repro.bsp import JobSpec, run_job, run_job_process
from repro.check.sanitizer import certify_determinism
from repro.dist import ChildError, ProcessBSPEngine
from repro.obs import MetricsRegistry, SpanTracer, to_json_dict


def pr_job(graph, **kw):
    return JobSpec(
        program=PageRankProgram(8), graph=graph, num_workers=4, **kw
    )


class TestEquivalence:
    def test_pagerank_identical(self, small_world):
        seq = run_job(pr_job(small_world))
        proc = run_job_process(pr_job(small_world))
        assert seq.values == proc.values
        assert seq.supersteps == proc.supersteps
        assert seq.total_time == pytest.approx(proc.total_time)
        assert (
            seq.trace.series_messages().tolist()
            == proc.trace.series_messages().tolist()
        )

    def test_bc_identical(self, small_world):
        roots = range(6)
        mk = lambda: JobSpec(
            program=BCProgram(), graph=small_world, num_workers=3,
            initially_active=False,
            initial_messages=bc_mod.start_messages(roots),
        )
        seq = run_job(mk())
        proc = run_job_process(mk())
        assert seq.values == proc.values
        ref = betweenness_reference(small_world, roots=roots)
        assert np.allclose(proc.values_array(), ref, atol=1e-9)

    def test_repeated_runs_deterministic(self, ring10):
        runs = [
            run_job_process(pr_job(ring10)).values_array() for _ in range(2)
        ]
        assert np.array_equal(runs[0], runs[1])

    def test_certify_determinism_process(self, small_world):
        report = certify_determinism(
            lambda: PageRankProgram(6), small_world, num_workers=4,
            engine="process",
        )
        assert report.ok
        assert report.engine == "process"

    def test_certify_determinism_unknown_engine(self, ring10):
        with pytest.raises(ValueError, match="unknown engine"):
            certify_determinism(
                lambda: PageRankProgram(2), ring10, engine="fpga"
            )


class TestRunnerIntegration:
    def test_run_pagerank_engine_process(self, small_world):
        cfg_sim = RunConfig(num_workers=4)
        cfg_proc = RunConfig(num_workers=4, engine="process")
        sim = run_pagerank(small_world, cfg_sim, iterations=6)
        proc = run_pagerank(small_world, cfg_proc, iterations=6)
        assert sim.values == proc.values

    def test_run_traversal_engine_process(self, small_world):
        sim = run_traversal(
            small_world, RunConfig(num_workers=3), range(4), kind="bc"
        )
        proc = run_traversal(
            small_world, RunConfig(num_workers=3, engine="process"),
            range(4), kind="bc",
        )
        assert sim.result.values == proc.result.values
        assert sim.num_swaths == proc.num_swaths

    def test_unknown_engine_rejected(self, ring10):
        with pytest.raises(ValueError, match="unknown engine"):
            run_pagerank(
                ring10, RunConfig(num_workers=2, engine="gpu"), iterations=2
            )


class TestTelemetry:
    def test_transport_and_worker_metrics(self, small_world):
        m_seq, m_proc = MetricsRegistry(), MetricsRegistry()
        run_job(pr_job(small_world, metrics=m_seq))
        run_job_process(pr_job(small_world, metrics=m_proc))

        def series(reg, name):
            for metric in to_json_dict(reg)["metrics"]:
                if metric["name"] == name:
                    return metric["series"]
            return None

        frames = series(m_proc, "dist_frames_total")
        assert frames and frames[0]["value"] > 0
        assert series(m_proc, "dist_frame_bytes_total")[0]["value"] > 0
        assert series(m_proc, "dist_heartbeats_total") is not None
        assert series(m_proc, "dist_workers_alive")[0]["value"] == 4
        # Child-side instruments marshal back with identical totals.
        for name in (
            "bsp_worker_compute_calls_total",
            "bsp_worker_messages_in_total",
        ):
            totals = lambda reg: sorted(
                (tuple(sorted(s["labels"].items())), s["value"])
                for s in series(reg, name)
            )
            assert totals(m_proc) == totals(m_seq)

    def test_worker_compute_spans(self, ring10):
        tracer = SpanTracer()
        run_job_process(pr_job(ring10, tracer=tracer))
        spans = [s for s in tracer.spans if s.name == "worker-compute"]
        assert spans
        assert {s.attrs["worker"] for s in spans} == {0, 1, 2, 3}
        assert all(s.host_duration >= 0 for s in spans)


class TestChildFailureModes:
    def test_compute_exception_surfaces_as_child_error(self, ring10):
        class Boom(PageRankProgram):
            def compute(self, ctx, state, messages):
                if ctx.superstep == 2 and ctx.vertex_id == 0:
                    raise RuntimeError("kaboom in child")
                return super().compute(ctx, state, messages)

        engine = ProcessBSPEngine(
            JobSpec(program=Boom(8), graph=ring10, num_workers=2)
        )
        with pytest.raises(ChildError, match="kaboom in child"):
            engine.run()
        # run() tears the fleet down even on error.
        assert all(not h.proc.is_alive() for h in engine._handles)

    def test_unplanned_death_without_checkpoints_raises(self, ring10):
        import os

        class Die(PageRankProgram):
            def compute(self, ctx, state, messages):
                if ctx.superstep == 2 and ctx.vertex_id == 0:
                    os._exit(1)
                return super().compute(ctx, state, messages)

        engine = ProcessBSPEngine(
            JobSpec(program=Die(8), graph=ring10, num_workers=2)
        )
        with pytest.raises(RuntimeError, match="checkpointing"):
            engine.run()


class TestConfigValidation:
    def test_bad_heartbeat_interval(self, ring10):
        with pytest.raises(ValueError, match="heartbeat_interval"):
            ProcessBSPEngine(pr_job(ring10), heartbeat_interval=0.0)

    def test_bad_heartbeat_timeout(self, ring10):
        with pytest.raises(ValueError, match="heartbeat_timeout"):
            ProcessBSPEngine(
                pr_job(ring10), heartbeat_interval=1.0, heartbeat_timeout=0.5
            )

    def test_kill_worker_at_requires_checkpointing(self, ring10):
        engine = ProcessBSPEngine(pr_job(ring10))
        try:
            with pytest.raises(ValueError, match="checkpoint"):
                engine.kill_worker_at(1, 0)
        finally:
            engine.shutdown()

    def test_kill_worker_at_rejects_unknown_worker(self, ring10):
        engine = ProcessBSPEngine(pr_job(ring10, checkpoint_interval=2))
        try:
            with pytest.raises(ValueError, match="unknown worker"):
                engine.kill_worker_at(1, 99)
        finally:
            engine.shutdown()
