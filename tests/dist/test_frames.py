"""Frame codec: pickle-5 out-of-band roundtrips and framing errors."""

import numpy as np
import pytest

from repro.dist import pack_frame, unpack_frame
from repro.dist.frames import _U32


class TestRoundtrip:
    def test_plain_objects(self):
        obj = ("computed", 3, {"stats": [1, 2.5, None], "ok": True})
        assert unpack_frame(pack_frame(obj)) == obj

    def test_no_buffers_for_plain_pickle(self):
        blob = pack_frame({"a": 1})
        (n_buffers,) = _U32.unpack_from(blob, 0)
        assert n_buffers == 0

    def test_numpy_out_of_band(self):
        arr = np.arange(1000, dtype=np.float64)
        obj = {"payload": arr, "tag": "bulk"}
        out = unpack_frame(pack_frame(obj))
        assert np.array_equal(out["payload"], arr)
        assert out["tag"] == "bulk"

    def test_numpy_buffers_are_zero_copy_readonly(self):
        # Out-of-band buffers come back as views into the received blob —
        # read-only, which is exactly the message contract (RPC001).
        arr = np.ones(64)
        out = unpack_frame(pack_frame({"a": arr}))
        assert not out["a"].flags.writeable

    def test_nested_mixed(self):
        obj = [
            (7, [np.arange(5), 3.5]),
            (9, [np.zeros(3, dtype=np.int32)]),
        ]
        out = unpack_frame(pack_frame(obj))
        assert out[0][0] == 7
        assert np.array_equal(out[0][1][0], np.arange(5))
        assert np.array_equal(out[1][1][0], np.zeros(3, dtype=np.int32))

    def test_memoryview_input(self):
        blob = pack_frame(("x", 1, None))
        assert unpack_frame(memoryview(blob)) == ("x", 1, None)


class TestFramingErrors:
    def test_trailing_bytes_rejected(self):
        with pytest.raises(ValueError, match="trailing"):
            unpack_frame(pack_frame("ok") + b"junk")

    def test_empty_frame_rejected(self):
        with pytest.raises(Exception):
            unpack_frame(b"")
