"""Failure + checkpointed recovery must not change extract() output.

The satellite contract: for PageRank and SSSP, a run with an injected
worker failure (and the checkpoint/rollback recovery it triggers) produces
``extract()`` output identical to a failure-free run — on both the
simulated-failure engine (sim) and the real-process engine (process, where
the failure is an actual SIGKILL and recovery restarts a replacement
process).
"""

import os

import pytest

from repro.algorithms import PageRankProgram, SSSPProgram
from repro.bsp import JobSpec, run_job, run_job_process
from repro.dist import ProcessBSPEngine

PROGRAMS = {
    "pagerank": lambda: PageRankProgram(8),
    "sssp": lambda: SSSPProgram(source=0),
}


def make_job(graph, program_factory, **kw):
    return JobSpec(
        program=program_factory(), graph=graph, num_workers=4,
        checkpoint_interval=2, **kw,
    )


@pytest.mark.parametrize("app", sorted(PROGRAMS))
@pytest.mark.parametrize("engine", ["sim", "process"])
class TestScheduledFailure:
    def test_recovered_equals_failure_free(self, small_world, app, engine):
        factory = PROGRAMS[app]
        runner = run_job if engine == "sim" else run_job_process
        clean = runner(make_job(small_world, factory))
        failed = runner(
            make_job(small_world, factory, failure_schedule={3: 1})
        )
        assert failed.recoveries, "the scheduled failure must have fired"
        assert failed.recoveries[0].failed_worker == 1
        assert clean.values == failed.values
        # Recovery costs simulated time; it must never be free.
        assert failed.total_time > clean.total_time


class TestKillWorkerAt:
    def test_real_sigkill_recovers_bit_identical(self, small_world):
        clean = run_job(make_job(small_world, PROGRAMS["pagerank"]))
        engine = ProcessBSPEngine(make_job(small_world, PROGRAMS["pagerank"]))
        engine.kill_worker_at(2, 0)
        res = engine.run()
        assert res.recoveries and res.recoveries[0].failed_worker == 0
        assert clean.values == res.values

    def test_matches_sim_engine_accounting(self, small_world):
        """The same schedule prices identically on sim and process."""
        schedule = {2: 3}
        sim = run_job(
            make_job(small_world, PROGRAMS["pagerank"], failure_schedule=schedule)
        )
        proc = run_job_process(
            make_job(small_world, PROGRAMS["pagerank"], failure_schedule=schedule)
        )
        assert sim.values == proc.values
        assert sim.total_time == pytest.approx(proc.total_time)
        assert [r.resumed_from for r in sim.recoveries] == [
            r.resumed_from for r in proc.recoveries
        ]


class TestUnplannedDeath:
    def test_mid_compute_exit_recovers(self, small_world, tmp_path):
        """A worker that dies *unscheduled* mid-compute (os._exit, no reply)
        is detected by the liveness monitor and replayed from checkpoint."""
        flag = tmp_path / "died-once"

        class DieOnce(PageRankProgram):
            def compute(self, ctx, state, messages):
                if (
                    ctx.superstep == 3
                    and ctx.vertex_id == 0
                    and not flag.exists()
                ):
                    flag.write_text("x")  # the respawned replacement survives
                    os._exit(1)
                return super().compute(ctx, state, messages)

        clean = run_job(make_job(small_world, PROGRAMS["pagerank"]))
        res = run_job_process(make_job(small_world, lambda: DieOnce(8)))
        assert flag.exists()
        assert res.recoveries
        assert clean.values == res.values
