"""Elastic scaling: policies, extrapolation model, Fig. 16 reporting."""

import numpy as np
import pytest

from repro.cloud import LARGE_VM, PerfModel
from repro.elastic import (
    ActiveFractionPolicy,
    AlignedTraces,
    ElasticityModel,
    FixedWorkers,
    OraclePolicy,
    ScalingContext,
    normalize_outcomes,
    render_fig16,
)


def traces(time_low, time_high, active, low=4, high=8, n_vertices=100):
    return AlignedTraces(
        low=low, high=high,
        time_low=np.asarray(time_low, dtype=float),
        time_high=np.asarray(time_high, dtype=float),
        active=np.asarray(active, dtype=np.int64),
        num_graph_vertices=n_vertices,
    )


@pytest.fixture
def simple_traces():
    # Peak at step 1 (8 workers superlinear), tail at steps 2-3 (4 faster).
    return traces(
        time_low=[10.0, 100.0, 4.0, 4.0],
        time_high=[8.0, 20.0, 5.0, 5.0],
        active=[50, 100, 10, 5],
    )


class TestAlignedTraces:
    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            traces([1, 2], [1], [1, 1])

    def test_low_ge_high_rejected(self):
        with pytest.raises(ValueError):
            traces([1], [1], [1], low=8, high=4)

    def test_from_traces_rejects_mismatched_runs(self):
        from repro.bsp.superstep import JobTrace, SuperstepStats

        a, b = JobTrace(), JobTrace()
        a.append(SuperstepStats(index=0, num_workers=4))
        with pytest.raises(ValueError, match="lengths differ"):
            AlignedTraces.from_traces(a, b, 4, 8, 10)


class TestPolicies:
    def ctx(self, **kw):
        defaults = dict(
            step=0, active_vertices=50, max_active=100, num_graph_vertices=200,
            time_low=10.0, time_high=5.0, low=4, high=8,
        )
        defaults.update(kw)
        return ScalingContext(**defaults)

    def test_fixed(self):
        assert FixedWorkers(4).choose(self.ctx()) == 4
        assert FixedWorkers(8).choose(self.ctx()) == 8

    def test_fixed_outside_measured_sizes(self):
        with pytest.raises(ValueError):
            FixedWorkers(6).choose(self.ctx())

    def test_fixed_validation(self):
        with pytest.raises(ValueError):
            FixedWorkers(0)

    def test_active_fraction_peak_reference(self):
        p = ActiveFractionPolicy(0.5, reference="peak")
        assert p.choose(self.ctx(active_vertices=50, max_active=100)) == 8
        assert p.choose(self.ctx(active_vertices=49, max_active=100)) == 4

    def test_active_fraction_graph_reference(self):
        p = ActiveFractionPolicy(0.25, reference="graph")
        assert p.choose(self.ctx(active_vertices=50, num_graph_vertices=200)) == 8
        assert p.choose(self.ctx(active_vertices=49, num_graph_vertices=200)) == 4

    def test_active_fraction_validation(self):
        with pytest.raises(ValueError):
            ActiveFractionPolicy(0.0)
        with pytest.raises(ValueError):
            ActiveFractionPolicy(0.5, reference="swath")

    def test_oracle_picks_faster_side(self):
        p = OraclePolicy()
        assert p.choose(self.ctx(time_low=10.0, time_high=5.0)) == 8
        assert p.choose(self.ctx(time_low=5.0, time_high=10.0)) == 4

    def test_zero_max_active(self):
        p = ActiveFractionPolicy(0.5)
        assert p.choose(self.ctx(active_vertices=0, max_active=0)) == 4


class TestElasticityModel:
    def test_speedup_series(self, simple_traces):
        em = ElasticityModel(simple_traces)
        assert em.speedup_series().tolist() == [1.25, 5.0, 0.8, 0.8]

    def test_fixed_outcomes_sum_measured_times(self, simple_traces):
        em = ElasticityModel(simple_traces)
        assert em.evaluate(FixedWorkers(4)).total_time == pytest.approx(118.0)
        assert em.evaluate(FixedWorkers(8)).total_time == pytest.approx(38.0)

    def test_oracle_bounds_every_policy(self, simple_traces):
        em = ElasticityModel(simple_traces)
        oracle = em.evaluate(OraclePolicy()).total_time
        for p in (FixedWorkers(4), FixedWorkers(8), ActiveFractionPolicy(0.5)):
            assert oracle <= em.evaluate(p).total_time + 1e-12

    def test_dynamic_beats_fixed4_on_peaky_traces(self, simple_traces):
        em = ElasticityModel(simple_traces)
        dyn = em.evaluate(ActiveFractionPolicy(0.5))
        assert dyn.total_time < em.evaluate(FixedWorkers(4)).total_time
        # Chose 8 only at the peak: cheaper than fixed 8.
        assert dyn.cost < em.evaluate(FixedWorkers(8)).cost

    def test_cost_accounting(self, simple_traces):
        em = ElasticityModel(simple_traces)
        out = em.evaluate(FixedWorkers(4))
        assert out.vm_seconds == pytest.approx(4 * 118.0)
        assert out.cost == pytest.approx(4 * 118.0 * LARGE_VM.price_per_second)

    def test_scaling_overheads_add_time_and_cost(self, simple_traces):
        m = PerfModel()
        plain = ElasticityModel(simple_traces).evaluate(ActiveFractionPolicy(0.5))
        loaded = ElasticityModel(
            simple_traces, include_scaling_overheads=True, perf_model=m
        ).evaluate(ActiveFractionPolicy(0.5))
        assert loaded.total_time > plain.total_time
        assert loaded.cost > plain.cost
        assert loaded.num_scale_events == plain.num_scale_events > 0

    def test_policy_choosing_invalid_size_rejected(self, simple_traces):
        class Weird(FixedWorkers):
            def choose(self, ctx):
                return 6

        em = ElasticityModel(simple_traces)
        with pytest.raises(ValueError):
            em.evaluate(Weird(4))


class TestReporting:
    def test_normalization(self, simple_traces):
        em = ElasticityModel(simple_traces)
        outs = em.evaluate_all(
            [FixedWorkers(4), FixedWorkers(8), ActiveFractionPolicy(0.5), OraclePolicy()]
        )
        rows = normalize_outcomes(outs, "Fixed-4")
        base = rows[0]
        assert base.norm_time == pytest.approx(1.0)
        assert base.norm_cost == pytest.approx(1.0)
        # Fixed-8 burns 2x the VM-seconds per wall second.
        assert rows[1].norm_cost / rows[1].norm_time == pytest.approx(2.0)

    def test_missing_baseline_raises(self, simple_traces):
        em = ElasticityModel(simple_traces)
        outs = [em.evaluate(FixedWorkers(8))]
        with pytest.raises(ValueError):
            normalize_outcomes(outs, "Fixed-4")

    def test_render_fig16(self, simple_traces):
        em = ElasticityModel(simple_traces)
        outs = em.evaluate_all([FixedWorkers(4), OraclePolicy()])
        text = render_fig16(normalize_outcomes(outs, "Fixed-4"), title="WG")
        assert "WG" in text and "Oracle" in text and "1.000x" in text
