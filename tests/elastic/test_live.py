"""Live elastic scaling: correctness invariance and accounting."""

import numpy as np
import pytest

from repro.algorithms import (
    BCProgram,
    PageRankProgram,
    betweenness_reference,
    pagerank_reference,
)
from repro.algorithms import bc as bc_mod
from repro.bsp import JobSpec, run_job
from repro.cloud.costmodel import SCALED_PERF_MODEL
from repro.elastic import (
    LiveActiveFraction,
    LiveElasticEngine,
    LiveFixed,
    run_live,
)
from repro.graph import generators as gen
from repro.scheduling import StaticSizer, SwathController


class _EveryStepToggle(LiveActiveFraction):
    """Policy that alternates fleet size every superstep (stress case)."""

    def decide(self, engine, stats):
        return self.high if engine.num_workers == self.low else self.low


@pytest.fixture
def graph():
    return gen.watts_strogatz(60, 4, 0.3, seed=7)


def bc_job(graph, roots, **kw):
    return JobSpec(
        program=BCProgram(), graph=graph, num_workers=4,
        initially_active=False,
        initial_messages=bc_mod.start_messages(roots),
        **kw,
    )


class TestCorrectnessInvariance:
    def test_pagerank_identical_under_scaling(self, graph):
        job = JobSpec(program=PageRankProgram(12), graph=graph, num_workers=4)
        res = run_live(job, _EveryStepToggle(low=4, high=8))
        ref = pagerank_reference(graph, iterations=12)
        assert np.allclose(res.values_array(), ref, atol=1e-10)

    def test_bc_identical_under_scaling(self, graph):
        roots = range(8)
        res = run_live(bc_job(graph, roots), _EveryStepToggle(low=2, high=6))
        ref = betweenness_reference(graph, roots=roots)
        assert np.allclose(res.values_array(), ref, atol=1e-9)

    def test_bc_with_swath_controller_and_scaling(self, graph):
        roots = list(range(10))
        ctrl = SwathController(
            roots=roots, start_factory=bc_mod.start_messages,
            sizer=StaticSizer(4),
        )
        job = JobSpec(
            program=BCProgram(), graph=graph, num_workers=4,
            initially_active=False, observers=[ctrl],
        )
        res = run_live(job, _EveryStepToggle(low=3, high=5))
        ref = betweenness_reference(graph, roots=roots)
        assert np.allclose(res.values_array(), ref, atol=1e-9)
        assert ctrl.completed_all

    def test_fixed_policy_equals_plain_engine(self, graph):
        job1 = JobSpec(program=PageRankProgram(8), graph=graph, num_workers=4)
        job2 = JobSpec(program=PageRankProgram(8), graph=graph, num_workers=4)
        live = run_live(job1, LiveFixed(4))
        plain = run_job(job2)
        assert live.values == plain.values
        assert live.total_time == pytest.approx(plain.total_time)

    def test_message_totals_preserved_across_scaling(self, graph):
        roots = range(6)
        live = run_live(bc_job(graph, roots), _EveryStepToggle(low=2, high=7))
        plain = run_job(bc_job(graph, roots))
        # Local/remote split changes with the fleet; totals must not.
        assert live.trace.total_messages == plain.trace.total_messages


class TestMechanics:
    def test_fleet_actually_changes(self, graph):
        job = JobSpec(program=PageRankProgram(10), graph=graph, num_workers=4)
        engine = LiveElasticEngine(job, _EveryStepToggle(low=4, high=8))
        res = engine.run()
        widths = {s.num_workers for s in res.trace}
        assert widths == {4, 8}
        assert len(engine.scale_events) >= 5

    def test_scaling_charges_time_and_money(self, graph):
        job1 = JobSpec(program=PageRankProgram(10), graph=graph, num_workers=4)
        job2 = JobSpec(program=PageRankProgram(10), graph=graph, num_workers=4)
        engine = LiveElasticEngine(job1, _EveryStepToggle(low=4, high=8))
        live = engine.run()
        plain = run_job(job2)
        assert engine.scale_overhead_total > 0
        assert live.total_time > plain.total_time  # paid for the thrashing

    def test_migration_counts_recorded(self, graph):
        job = JobSpec(program=PageRankProgram(6), graph=graph, num_workers=4)
        engine = LiveElasticEngine(job, _EveryStepToggle(low=4, high=8))
        engine.run()
        # Hash partitions for 4 vs 8 differ for most vertices.
        ev = engine.scale_events[0]
        assert ev.old_workers == 4 and ev.new_workers == 8
        assert ev.overhead_seconds > 0

    def test_cooldown_suppresses_thrash(self, graph):
        job = JobSpec(program=PageRankProgram(12), graph=graph, num_workers=4)
        policy = LiveActiveFraction(low=4, high=8, threshold=0.5, cooldown=100)
        engine = LiveElasticEngine(job, policy)
        engine.run()
        assert len(engine.scale_events) <= 1

    def test_invalid_policy_size_rejected(self, graph):
        class Bad(LiveFixed):
            def decide(self, engine, stats):
                return 0

        job = JobSpec(program=PageRankProgram(4), graph=graph, num_workers=2)
        with pytest.raises(ValueError, match="invalid fleet size"):
            run_live(job, Bad(2))

    def test_failure_injection_incompatible(self, graph):
        job = JobSpec(
            program=PageRankProgram(4), graph=graph, num_workers=2,
            checkpoint_interval=2, failure_schedule={1: 0},
        )
        with pytest.raises(ValueError, match="failure injection"):
            LiveElasticEngine(job, LiveFixed(2))

    def test_custom_partition_factory(self, graph):
        from repro.partition import ModuloPartitioner

        job = JobSpec(program=PageRankProgram(6), graph=graph, num_workers=4)
        engine = LiveElasticEngine(
            job, _EveryStepToggle(low=4, high=8),
            partition_for=lambda k: ModuloPartitioner().partition(graph, k),
        )
        res = engine.run()
        ref = pagerank_reference(graph, iterations=6)
        assert np.allclose(res.values_array(), ref, atol=1e-10)


class TestLivePolicyBehaviour:
    def test_active_fraction_scales_out_at_peak(self, graph):
        roots = range(12)
        job = bc_job(graph, roots, perf_model=SCALED_PERF_MODEL)
        policy = LiveActiveFraction(low=4, high=8, threshold=0.5, cooldown=1)
        engine = LiveElasticEngine(job, policy)
        res = engine.run()
        assert engine.scale_events  # it did react
        # High-fleet supersteps are the high-activity ones on average.
        active = res.trace.series_active_vertices().astype(float)
        widths = np.array([s.num_workers for s in res.trace], dtype=float)
        if (widths == 8).any() and (widths == 4).any():
            assert active[widths == 8].mean() > active[widths == 4].mean()

    def test_labels(self):
        assert "LiveFixed-4" == LiveFixed(4).label
        assert "50%" in LiveActiveFraction().label


class TestLiveSkewGuard:
    class _Monitor:
        def __init__(self, skew):
            self.skew = skew

        def skew_signal(self):
            return self.skew

    class _Engine:
        num_workers = 6

    def test_vetoes_scale_in_under_skew(self):
        from repro.elastic import LiveSkewGuard

        guard = LiveSkewGuard(LiveFixed(4), self._Monitor(2.0))
        assert guard.decide(self._Engine(), None) == 6
        assert guard.vetoes == 1

    def test_scale_in_passes_when_balanced(self):
        from repro.elastic import LiveSkewGuard

        guard = LiveSkewGuard(LiveFixed(4), self._Monitor(1.0))
        assert guard.decide(self._Engine(), None) == 4
        assert guard.vetoes == 0

    def test_scale_out_always_passes(self):
        from repro.elastic import LiveSkewGuard

        guard = LiveSkewGuard(LiveFixed(8), self._Monitor(99.0))
        assert guard.decide(self._Engine(), None) == 8
        assert guard.vetoes == 0
        assert "SkewGuard" in guard.label

    def test_guarded_run_stays_correct(self, graph):
        from repro.elastic import LiveSkewGuard
        from repro.obs import DiagnosticMonitor

        monitor = DiagnosticMonitor()
        job = JobSpec(
            program=PageRankProgram(10), graph=graph, num_workers=4,
            observers=[monitor],
        )
        res = run_live(
            job, LiveSkewGuard(_EveryStepToggle(low=3, high=5), monitor)
        )
        ref = pagerank_reference(graph, iterations=10)
        assert np.allclose(res.values_array(), ref, atol=1e-10)
