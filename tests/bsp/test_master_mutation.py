"""Master compute (GPS-style) and topology mutation (Pregel extension)."""

import networkx as nx
import numpy as np
import pytest

from repro.algorithms import (
    ConvergentPageRankProgram,
    KCoreProgram,
    PageRankProgram,
)
from repro.bsp import JobSpec, SumAggregator, VertexProgram, run_job
from repro.graph import generators as gen
from tests.conftest import to_networkx


class TestMasterCompute:
    def test_master_halt_stops_job(self, ring10):
        class HaltAtThree(VertexProgram):
            def compute(self, ctx, state, messages):
                ctx.send(ctx.vertex_id, 1)  # would run forever
                ctx.vote_to_halt()
                return (state or 0) + 1

            def master_compute(self, master):
                if master.superstep == 3:
                    master.halt_job()

        res = run_job(JobSpec(program=HaltAtThree(), graph=ring10, num_workers=2))
        assert res.halted
        assert res.supersteps == 4  # supersteps 0..3

    def test_master_publish_visible_to_vertices(self, ring10):
        seen = {}

        class PublishDemo(VertexProgram):
            def aggregators(self):
                return {"broadcast": SumAggregator()}

            def compute(self, ctx, state, messages):
                if ctx.superstep == 1:
                    seen[ctx.vertex_id] = ctx.aggregated("broadcast")
                    ctx.vote_to_halt()
                else:
                    ctx.send(ctx.vertex_id, 1)
                    ctx.vote_to_halt()
                return state

            def master_compute(self, master):
                if master.superstep == 0:
                    master.publish("broadcast", 42)

        run_job(JobSpec(program=PublishDemo(), graph=ring10, num_workers=3))
        assert all(v == 42 for v in seen.values())

    def test_publish_unknown_aggregator_raises(self, ring10):
        class Bad(VertexProgram):
            def compute(self, ctx, state, messages):
                ctx.vote_to_halt()
                return state

            def master_compute(self, master):
                master.publish("nope", 1)

        with pytest.raises(KeyError):
            run_job(JobSpec(program=Bad(), graph=ring10, num_workers=2))

    def test_master_context_exposes_job_state(self, ring10):
        observed = []

        class Spy(VertexProgram):
            def compute(self, ctx, state, messages):
                ctx.vote_to_halt()
                return state

            def master_compute(self, master):
                observed.append(
                    (master.superstep, master.num_workers, master.active_vertices)
                )

        run_job(JobSpec(program=Spy(), graph=ring10, num_workers=3))
        assert observed == [(0, 3, 0)]


class TestConvergentPageRank:
    def test_converges_to_fixed_iteration_answer(self, small_world):
        prog = ConvergentPageRankProgram(tol=1e-12)
        res = run_job(JobSpec(program=prog, graph=small_world, num_workers=4))
        fixed = run_job(
            JobSpec(program=PageRankProgram(100), graph=small_world, num_workers=4)
        )
        assert np.allclose(res.values_array(), fixed.values_array(), atol=1e-9)
        assert prog.converged_at is not None

    def test_loose_tolerance_halts_earlier(self, small_world):
        loose = run_job(
            JobSpec(
                program=ConvergentPageRankProgram(tol=1e-3),
                graph=small_world, num_workers=4,
            )
        )
        tight = run_job(
            JobSpec(
                program=ConvergentPageRankProgram(tol=1e-12),
                graph=small_world, num_workers=4,
            )
        )
        assert loose.supersteps < tight.supersteps

    def test_max_iterations_guard(self, small_world):
        res = run_job(
            JobSpec(
                program=ConvergentPageRankProgram(tol=1e-30, max_iterations=5),
                graph=small_world, num_workers=4,
            )
        )
        assert res.supersteps <= 6

    def test_validation(self):
        with pytest.raises(ValueError):
            ConvergentPageRankProgram(tol=0)
        with pytest.raises(ValueError):
            ConvergentPageRankProgram(damping=1.5)


class TestTopologyMutation:
    def test_removed_edge_invisible_next_superstep(self, ring10):
        degrees = {}

        class RemoveOne(VertexProgram):
            def compute(self, ctx, state, messages):
                if ctx.superstep == 0:
                    ctx.remove_out_edge(int(ctx.out_neighbors[0]))
                    assert ctx.out_degree == 2  # not yet applied
                    ctx.send(ctx.vertex_id, 1)
                else:
                    degrees[ctx.vertex_id] = ctx.out_degree
                ctx.vote_to_halt()
                return state

        run_job(JobSpec(program=RemoveOne(), graph=ring10, num_workers=3))
        assert all(d == 1 for d in degrees.values())

    def test_added_edge_used_by_send_to_neighbors(self, path5):
        received = {}

        class AddShortcut(VertexProgram):
            def compute(self, ctx, state, messages):
                for m in messages:
                    received.setdefault(ctx.vertex_id, []).append(m)
                if ctx.superstep == 0 and ctx.vertex_id == 0:
                    ctx.add_out_edge(4)
                    ctx.send(ctx.vertex_id, "tick")
                elif ctx.superstep == 1 and ctx.vertex_id == 0:
                    ctx.send_to_neighbors("hello")
                ctx.vote_to_halt()
                return state

        run_job(JobSpec(program=AddShortcut(), graph=path5, num_workers=2))
        assert "hello" in received.get(4, [])
        assert "hello" in received.get(1, [])

    def test_remove_nonexistent_edge_is_noop(self, ring10):
        class RemoveBogus(VertexProgram):
            def compute(self, ctx, state, messages):
                if ctx.superstep == 0:
                    ctx.remove_out_edge((ctx.vertex_id + 5) % 10)
                    ctx.send(ctx.vertex_id, 1)
                else:
                    assert ctx.out_degree == 2
                ctx.vote_to_halt()
                return state

        run_job(JobSpec(program=RemoveBogus(), graph=ring10, num_workers=2))

    def test_mutation_to_unknown_vertex_rejected(self, ring10):
        class Bad(VertexProgram):
            def compute(self, ctx, state, messages):
                ctx.add_out_edge(999)
                return state

        with pytest.raises(ValueError, match="unknown vertex"):
            run_job(JobSpec(program=Bad(), graph=ring10, num_workers=2))

    def test_mutations_survive_checkpoint_recovery(self, ring10):
        class RemoveThenCount(VertexProgram):
            def compute(self, ctx, state, messages):
                if ctx.superstep == 0:
                    ctx.remove_out_edge(int(ctx.out_neighbors[0]))
                if ctx.superstep < 6:
                    ctx.send(ctx.vertex_id, 1)
                ctx.vote_to_halt()
                return ctx.out_degree

        res = run_job(
            JobSpec(
                program=RemoveThenCount(), graph=ring10, num_workers=2,
                checkpoint_interval=2, failure_schedule={4: 1},
            )
        )
        assert len(res.recoveries) == 1
        assert all(v == 1 for v in res.values.values())


class TestKCore:
    @pytest.mark.parametrize("k", [1, 2, 3])
    def test_matches_networkx(self, small_world, k):
        res = run_job(
            JobSpec(program=KCoreProgram(k), graph=small_world, num_workers=4)
        )
        ours = {v for v, alive in res.values.items() if alive}
        theirs = set(nx.k_core(to_networkx(small_world), k).nodes())
        assert ours == theirs

    def test_k2_on_tree_is_empty(self, tree3):
        res = run_job(JobSpec(program=KCoreProgram(2), graph=tree3, num_workers=2))
        assert not any(res.values.values())

    def test_complete_graph_survives(self, k5):
        res = run_job(JobSpec(program=KCoreProgram(4), graph=k5, num_workers=2))
        assert all(res.values.values())

    def test_ring_with_tail(self):
        from repro.graph.builder import from_edges

        # Ring 0-5 plus a dangling path 6-7: 2-core = the ring.
        edges = [(i, (i + 1) % 6) for i in range(6)] + [(0, 6), (6, 7)]
        g = from_edges(8, edges, undirected=True)
        res = run_job(JobSpec(program=KCoreProgram(2), graph=g, num_workers=3))
        assert {v for v, a in res.values.items() if a} == {0, 1, 2, 3, 4, 5}

    def test_validation(self):
        with pytest.raises(ValueError):
            KCoreProgram(0)

    def test_kcore_under_live_scaling(self, small_world):
        """Mutations must migrate correctly when the fleet resizes."""
        from repro.elastic import LiveActiveFraction, run_live

        class Toggle(LiveActiveFraction):
            def decide(self, engine, stats):
                return 6 if engine.num_workers == 3 else 3

        res = run_live(
            JobSpec(program=KCoreProgram(2), graph=small_world, num_workers=3),
            Toggle(low=3, high=6),
        )
        ours = {v for v, alive in res.values.items() if alive}
        theirs = set(nx.k_core(to_networkx(small_world), 2).nodes())
        assert ours == theirs
