"""Worker-level resource accounting: routing, buffers, memory footprint."""

import numpy as np
import pytest

from repro.bsp import BSPEngine, JobSpec, VertexProgram, run_job
from repro.cloud.costmodel import PerfModel
from repro.graph import generators as gen


class Broadcaster(VertexProgram):
    """Every vertex sends one fixed-size message per neighbor in step 0."""

    def compute(self, ctx, state, messages):
        if ctx.superstep == 0:
            ctx.send_to_neighbors("payload")
        ctx.vote_to_halt()
        return state

    def payload_nbytes(self, payload):
        return 100


class TestRouting:
    def test_local_remote_split_matches_partition(self, ring10):
        from repro.partition import ModuloPartitioner

        # Modulo on a ring: every edge crosses workers when k=2.
        res = run_job(
            JobSpec(
                program=Broadcaster(), graph=ring10, num_workers=2,
                partitioner=ModuloPartitioner(),
            )
        )
        step0 = res.trace.steps[0]
        assert step0.remote_messages == 20
        assert sum(w.msgs_out_local for w in step0.workers) == 0

    def test_single_worker_all_local(self, ring10):
        res = run_job(JobSpec(program=Broadcaster(), graph=ring10, num_workers=1))
        step0 = res.trace.steps[0]
        assert step0.remote_messages == 0
        assert step0.workers[0].msgs_out_local == 20

    def test_bytes_out_use_wire_size(self, ring10):
        from repro.partition import ModuloPartitioner

        model = PerfModel()
        res = run_job(
            JobSpec(
                program=Broadcaster(), graph=ring10, num_workers=2,
                partitioner=ModuloPartitioner(), perf_model=model,
            )
        )
        step0 = res.trace.steps[0]
        total_out = sum(w.bytes_out for w in step0.workers)
        assert total_out == 20 * model.message_wire_bytes(100)

    def test_bytes_in_equal_bytes_out_cluster_wide(self, small_world):
        res = run_job(JobSpec(program=Broadcaster(), graph=small_world, num_workers=4))
        step0 = res.trace.steps[0]
        assert sum(w.bytes_in for w in step0.workers) == pytest.approx(
            sum(w.bytes_out for w in step0.workers)
        )

    def test_peer_counts_bounded_by_fleet(self, small_world):
        res = run_job(JobSpec(program=Broadcaster(), graph=small_world, num_workers=4))
        for s in res.trace:
            for w in s.workers:
                assert 0 <= w.peers_out <= 3
                assert 0 <= w.peers_in <= 3


class TestMemoryAccounting:
    def test_footprint_includes_buffered_messages(self, ring10):
        res = run_job(JobSpec(program=Broadcaster(), graph=ring10, num_workers=2))
        # Step 0 buffers 20 messages for step 1; step 1 buffers none.
        assert res.trace.steps[0].peak_memory > res.trace.steps[1].peak_memory

    def test_state_growth_is_tracked(self):
        class Accumulator(VertexProgram):
            def init_state(self, v, g):
                return []

            def compute(self, ctx, state, messages):
                state.extend(["x"] * 50)
                if ctx.superstep < 3:
                    ctx.send(ctx.vertex_id, 1)
                ctx.vote_to_halt()
                return state

            def state_nbytes(self, state):
                return 16 + len(state)

        g = gen.ring(6)
        res = run_job(JobSpec(program=Accumulator(), graph=g, num_workers=2))
        mems = res.trace.series_peak_memory()
        assert np.all(np.diff(mems[:3]) > 0)  # grows while accumulating

    def test_spill_penalty_applied_when_tiny_memory(self, small_world):
        from repro.cloud.specs import scaled_large

        ample = run_job(
            JobSpec(
                program=Broadcaster(), graph=small_world, num_workers=2,
                vm_spec=scaled_large(1 << 40),
            )
        )
        tiny = run_job(
            JobSpec(
                program=Broadcaster(), graph=small_world, num_workers=2,
                vm_spec=scaled_large(10_000),
                perf_model=PerfModel(restart_overflow_ratio=1e9),
            )
        )
        assert tiny.total_time > ample.total_time
        assert tiny.trace.steps[0].workers[0].mem_slowdown > 1.0

    def test_restart_recorded_and_charged(self, small_world):
        from repro.cloud.specs import scaled_large

        model = PerfModel(restart_overflow_ratio=0.01, restart_time=500.0)
        res = run_job(
            JobSpec(
                program=Broadcaster(), graph=small_world, num_workers=2,
                vm_spec=scaled_large(10_000), perf_model=model,
            )
        )
        assert res.trace.num_restarts > 0
        assert res.total_time > 500.0


class TestStateBytesEstimator:
    def test_default_estimates(self):
        from repro.bsp.api import _estimate_nbytes

        assert _estimate_nbytes(None) == 0
        assert _estimate_nbytes(3) == 8
        assert _estimate_nbytes(3.5) == 8
        assert _estimate_nbytes("abcd") == 4
        assert _estimate_nbytes(np.zeros(10)) == 80
        assert _estimate_nbytes((1, 2)) == 16 + 2 * 16
        assert _estimate_nbytes({"a": 1}) > 0

    def test_deep_nesting_capped(self):
        from repro.bsp.api import _estimate_nbytes

        deep = [[[[[1]]]]]
        assert _estimate_nbytes(deep) < 1000
