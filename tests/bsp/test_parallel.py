"""Threaded compute-phase execution: bit-equality with the sequential engine."""

import numpy as np
import pytest

from repro.algorithms import (
    BCProgram,
    KCoreProgram,
    PageRankProgram,
    betweenness_reference,
)
from repro.algorithms import bc as bc_mod
from repro.bsp import JobSpec, run_job, run_job_threaded
from repro.bsp.parallel import ThreadedBSPEngine
from repro.graph import generators as gen


class TestEquivalence:
    def test_pagerank_identical(self, small_world):
        seq = run_job(
            JobSpec(program=PageRankProgram(10), graph=small_world, num_workers=4)
        )
        par = run_job_threaded(
            JobSpec(program=PageRankProgram(10), graph=small_world, num_workers=4)
        )
        assert seq.values == par.values
        assert seq.total_time == pytest.approx(par.total_time)
        assert seq.trace.series_messages().tolist() == par.trace.series_messages().tolist()

    def test_bc_identical(self, small_world):
        roots = range(8)
        mk = lambda: JobSpec(
            program=BCProgram(), graph=small_world, num_workers=6,
            initially_active=False,
            initial_messages=bc_mod.start_messages(roots),
        )
        seq = run_job(mk())
        par = run_job_threaded(mk(), max_threads=6)
        ref = betweenness_reference(small_world, roots=roots)
        assert np.allclose(par.values_array(), ref, atol=1e-9)
        assert seq.values == par.values

    def test_mutating_program_identical(self, small_world):
        seq = run_job(
            JobSpec(program=KCoreProgram(2), graph=small_world, num_workers=4)
        )
        par = run_job_threaded(
            JobSpec(program=KCoreProgram(2), graph=small_world, num_workers=4)
        )
        assert seq.values == par.values

    def test_repeated_runs_deterministic(self, small_world):
        runs = [
            run_job_threaded(
                JobSpec(program=PageRankProgram(6), graph=small_world, num_workers=8)
            ).values_array()
            for _ in range(3)
        ]
        assert np.array_equal(runs[0], runs[1])
        assert np.array_equal(runs[0], runs[2])


class TestMechanics:
    def test_worker_exception_propagates(self, ring10):
        from repro.bsp import VertexProgram

        class Boom(VertexProgram):
            def compute(self, ctx, state, messages):
                if ctx.vertex_id == 7:
                    raise RuntimeError("kaboom")
                ctx.vote_to_halt()
                return state

        with pytest.raises(RuntimeError, match="kaboom"):
            run_job_threaded(JobSpec(program=Boom(), graph=ring10, num_workers=3))

    def test_thread_cap_validation(self, ring10):
        with pytest.raises(ValueError):
            ThreadedBSPEngine(
                JobSpec(program=PageRankProgram(2), graph=ring10, num_workers=2),
                max_threads=0,
            )

    def test_single_thread_works(self, ring10):
        res = run_job_threaded(
            JobSpec(program=PageRankProgram(3), graph=ring10, num_workers=4),
            max_threads=1,
        )
        assert res.halted


class TestDefaultPoolSize:
    def test_caps_at_num_workers(self, monkeypatch):
        from repro.bsp import parallel

        monkeypatch.setattr(parallel.os, "cpu_count", lambda: 64)
        assert parallel.default_pool_size(8) == 8

    def test_caps_at_32(self, monkeypatch):
        from repro.bsp import parallel

        monkeypatch.setattr(parallel.os, "cpu_count", lambda: 256)
        assert parallel.default_pool_size(100) == 32

    def test_caps_at_cpu_count(self, monkeypatch):
        from repro.bsp import parallel

        monkeypatch.setattr(parallel.os, "cpu_count", lambda: 4)
        assert parallel.default_pool_size(16) == 4

    def test_cpu_count_unknown_means_one(self, monkeypatch):
        from repro.bsp import parallel

        monkeypatch.setattr(parallel.os, "cpu_count", lambda: None)
        assert parallel.default_pool_size(16) == 1

    def test_never_below_one(self, monkeypatch):
        from repro.bsp import parallel

        monkeypatch.setattr(parallel.os, "cpu_count", lambda: 8)
        assert parallel.default_pool_size(0) == 1

    def test_engine_uses_default(self, ring10, monkeypatch):
        from repro.bsp import parallel

        monkeypatch.setattr(parallel.os, "cpu_count", lambda: 2)
        engine = ThreadedBSPEngine(
            JobSpec(program=PageRankProgram(2), graph=ring10, num_workers=4)
        )
        assert engine._pool._max_workers == 2
