"""Superstep statistics and JobTrace series extraction."""

import numpy as np
import pytest

from repro.algorithms import PageRankProgram
from repro.bsp import JobSpec, run_job
from repro.bsp.superstep import JobTrace, SuperstepStats, WorkerStepStats


def make_step(index, msgs_per_worker, elapsed=1.0):
    s = SuperstepStats(index=index, num_workers=len(msgs_per_worker))
    for w, m in enumerate(msgs_per_worker):
        ws = WorkerStepStats(worker=w, msgs_out_remote=m, compute_time=0.1)
        s.workers.append(ws)
    s.elapsed = elapsed
    return s


class TestWorkerStepStats:
    def test_busy_time_sums_components(self):
        ws = WorkerStepStats(
            worker=0, compute_time=1.0, serialize_time=0.5, network_time=0.25
        )
        assert ws.busy_time == 1.75

    def test_elapsed_applies_slowdown(self):
        ws = WorkerStepStats(worker=0, compute_time=2.0, mem_slowdown=3.0)
        assert ws.elapsed == 6.0

    def test_msgs_out_totals(self):
        ws = WorkerStepStats(worker=0, msgs_out_local=3, msgs_out_remote=4)
        assert ws.msgs_out == 7


class TestSuperstepStats:
    def test_totals(self):
        s = make_step(0, [10, 20, 30])
        assert s.total_messages == 60
        assert s.messages_per_worker.tolist() == [10, 20, 30]

    def test_imbalance(self):
        s = make_step(0, [10, 10, 40])
        assert s.message_imbalance == pytest.approx(2.0)

    def test_imbalance_no_messages(self):
        s = make_step(0, [0, 0])
        assert s.message_imbalance == 1.0

    def test_peak_memory(self):
        s = make_step(0, [1, 1])
        s.workers[1].memory_bytes = 500.0
        assert s.peak_memory == 500.0


class TestJobTrace:
    @pytest.fixture
    def trace(self):
        t = JobTrace()
        t.append(make_step(0, [5, 5], elapsed=1.0))
        t.append(make_step(1, [50, 10], elapsed=2.0))
        t.append(make_step(2, [1, 1], elapsed=0.5))
        return t

    def test_total_time(self, trace):
        assert trace.total_time == 3.5

    def test_series_messages(self, trace):
        assert trace.series_messages().tolist() == [10, 60, 2]

    def test_series_per_worker_matrix(self, trace):
        m = trace.series_messages_per_worker()
        assert m.shape == (3, 2)
        assert m[1].tolist() == [50, 10]

    def test_series_per_worker_pads_elastic_runs(self):
        t = JobTrace()
        t.append(make_step(0, [5, 5, 5, 5]))
        t.append(make_step(1, [9, 9]))
        m = t.series_messages_per_worker()
        assert m.shape == (2, 4)
        assert m[1].tolist() == [9, 9, 0, 0]

    def test_indexing_and_iteration(self, trace):
        assert len(trace) == 3
        assert trace[1].index == 1
        assert [s.index for s in trace] == [0, 1, 2]

    def test_empty_trace(self):
        t = JobTrace()
        assert t.total_time == 0.0
        assert t.peak_memory == 0.0
        assert t.series_messages_per_worker().shape == (0, 0)
        assert t.utilization() == 0.0


class TestTraceFromRealRun:
    @pytest.fixture(scope="class")
    def result(self):
        from repro.graph import generators as gen

        g = gen.watts_strogatz(60, 4, 0.3, seed=7)
        return run_job(JobSpec(program=PageRankProgram(10), graph=g, num_workers=4))

    def test_pagerank_messages_flat(self, result):
        msgs = result.trace.series_messages()[1:-1]  # steady-state steps
        assert msgs.std() / msgs.mean() < 0.01  # the paper's flat line

    def test_utilization_between_zero_and_one(self, result):
        u = result.trace.utilization()
        assert 0.0 < u < 1.0

    def test_breakdown_sums_to_total(self, result):
        b = result.trace.breakdown()
        assert b["compute_io"] + b["barrier_wait"] == pytest.approx(b["total"])
        assert b["compute_io"] > 0 and b["barrier_wait"] > 0

    def test_sim_time_is_cumulative(self, result):
        st = result.trace.series_sim_time()
        assert np.all(np.diff(st) > 0)
        assert st[-1] == pytest.approx(result.total_time)

    def test_active_vertices_drop_at_end(self, result):
        active = result.trace.series_active_vertices()
        assert active[0] == 60
        assert active[-1] == 0
