"""Pregel execution semantics: supersteps, halting, message delivery."""

import numpy as np
import pytest

from repro.bsp import BSPEngine, JobSpec, SumCombiner, VertexProgram, run_job
from repro.graph import generators as gen
from repro.graph.builder import from_edges


class EchoOnce(VertexProgram):
    """Sends its id to neighbors in superstep 0, then halts."""

    def compute(self, ctx, state, messages):
        if ctx.superstep == 0:
            ctx.send_to_neighbors(ctx.vertex_id)
        ctx.vote_to_halt()
        return sorted(messages)


class CountSupersteps(VertexProgram):
    def __init__(self, rounds):
        self.rounds = rounds

    def compute(self, ctx, state, messages):
        state = (state or 0) + 1
        if ctx.superstep < self.rounds:
            ctx.send(ctx.vertex_id, "tick")  # self-message keeps it alive
        ctx.vote_to_halt()
        return state


class TestHalting:
    def test_all_halt_no_messages_ends_job(self, ring10):
        res = run_job(JobSpec(program=EchoOnce(), graph=ring10, num_workers=2))
        assert res.halted
        assert res.supersteps == 2  # step 0 sends, step 1 drains

    def test_message_reactivates_halted_vertex(self, ring10):
        res = run_job(JobSpec(program=EchoOnce(), graph=ring10, num_workers=2))
        # every vertex received both neighbors' ids in superstep 1
        assert res.values[0] == [1, 9]
        assert res.values[5] == [4, 6]

    def test_self_message_loop_runs_n_rounds(self, ring10):
        res = run_job(
            JobSpec(program=CountSupersteps(5), graph=ring10, num_workers=2)
        )
        assert res.supersteps == 6
        assert all(v == 6 for v in res.values.values())

    def test_max_supersteps_cap(self, ring10):
        class Forever(VertexProgram):
            def compute(self, ctx, state, messages):
                ctx.send(ctx.vertex_id, 1)
                ctx.vote_to_halt()
                return None

        res = run_job(
            JobSpec(program=Forever(), graph=ring10, num_workers=2, max_supersteps=7)
        )
        assert not res.halted
        assert res.supersteps == 7

    def test_initially_inactive_job_ends_immediately(self, ring10):
        res = run_job(
            JobSpec(
                program=EchoOnce(), graph=ring10, num_workers=2,
                initially_active=False,
            )
        )
        assert res.supersteps == 0
        assert res.halted

    def test_initially_active_subset(self, ring10):
        res = run_job(
            JobSpec(
                program=EchoOnce(), graph=ring10, num_workers=2,
                initially_active=[3],
            )
        )
        # Only vertex 3 computes in step 0; its neighbors drain in step 1.
        assert res.values[2] == [3] and res.values[4] == [3]
        assert res.values[7] is None  # never computed: initial state

    def test_initial_messages_wake_targets(self, ring10):
        res = run_job(
            JobSpec(
                program=EchoOnce(), graph=ring10, num_workers=2,
                initially_active=False, initial_messages=[(4, "go")],
            )
        )
        # Vertex 4 computed (receiving "go"), its sends reached 3 and 5.
        assert res.values[4] == ["go"]
        assert res.values[3] == [4] and res.values[5] == [4]


class TestMessageSemantics:
    def test_messages_visible_next_superstep_only(self, path5):
        seen_at = {}

        class Recorder(VertexProgram):
            def compute(self, ctx, state, messages):
                if messages:
                    seen_at[ctx.vertex_id] = ctx.superstep
                if ctx.superstep == 0 and ctx.vertex_id == 0:
                    ctx.send(1, "x")
                ctx.vote_to_halt()
                return None

        run_job(JobSpec(program=Recorder(), graph=path5, num_workers=2))
        assert seen_at == {1: 1}

    def test_send_to_unknown_vertex_raises(self, path5):
        class Bad(VertexProgram):
            def compute(self, ctx, state, messages):
                ctx.send(999, "x")
                return None

        with pytest.raises(ValueError, match="unknown vertex"):
            run_job(JobSpec(program=Bad(), graph=path5, num_workers=2))

    def test_messages_travel_one_edge_per_superstep(self):
        g = gen.path(6)
        arrival = {}

        class Wave(VertexProgram):
            def compute(self, ctx, state, messages):
                if messages and ctx.vertex_id not in arrival:
                    arrival[ctx.vertex_id] = ctx.superstep
                    ctx.send_to_neighbors("w")
                if ctx.superstep == 0 and ctx.vertex_id == 0:
                    arrival[0] = 0
                    ctx.send_to_neighbors("w")
                ctx.vote_to_halt()
                return None

        run_job(JobSpec(program=Wave(), graph=g, num_workers=3))
        assert arrival == {0: 0, 1: 1, 2: 2, 3: 3, 4: 4, 5: 5}

    def test_message_to_self_delivered(self, ring10):
        class SelfSend(VertexProgram):
            def compute(self, ctx, state, messages):
                if ctx.superstep == 0:
                    ctx.send(ctx.vertex_id, "me")
                ctx.vote_to_halt()
                return list(messages)

        res = run_job(JobSpec(program=SelfSend(), graph=ring10, num_workers=3))
        assert all(v == ["me"] for v in res.values.values())

    def test_duplicate_messages_all_delivered(self, path5):
        class Multi(VertexProgram):
            def compute(self, ctx, state, messages):
                if ctx.superstep == 0 and ctx.vertex_id == 0:
                    for _ in range(3):
                        ctx.send(1, 7)
                ctx.vote_to_halt()
                return list(messages)

        res = run_job(JobSpec(program=Multi(), graph=path5, num_workers=2))
        assert res.values[1] == [7, 7, 7]


class TestDeterminism:
    def test_identical_runs_identical_traces(self, small_world):
        from repro.algorithms import PageRankProgram

        specs = [
            JobSpec(program=PageRankProgram(5), graph=small_world, num_workers=4)
            for _ in range(2)
        ]
        r1, r2 = run_job(specs[0]), run_job(specs[1])
        assert r1.values == r2.values
        assert r1.trace.series_messages().tolist() == r2.trace.series_messages().tolist()
        assert r1.total_time == r2.total_time

    def test_worker_count_does_not_change_results(self, small_world):
        from repro.algorithms import PageRankProgram

        vals = []
        for w in (1, 3, 8):
            res = run_job(
                JobSpec(program=PageRankProgram(8), graph=small_world, num_workers=w)
            )
            vals.append(res.values_array())
        assert np.allclose(vals[0], vals[1])
        assert np.allclose(vals[0], vals[2])

    def test_partitioner_does_not_change_results(self, small_world):
        from repro.algorithms import PageRankProgram
        from repro.partition import MultilevelPartitioner, StreamingGreedy

        base = run_job(
            JobSpec(program=PageRankProgram(8), graph=small_world, num_workers=4)
        ).values_array()
        for part in (MultilevelPartitioner(seed=1), StreamingGreedy()):
            res = run_job(
                JobSpec(
                    program=PageRankProgram(8), graph=small_world, num_workers=4,
                    partitioner=part,
                )
            )
            assert np.allclose(base, res.values_array())


class TestJobSpecValidation:
    def test_zero_workers_rejected(self, ring10):
        with pytest.raises(ValueError):
            JobSpec(program=EchoOnce(), graph=ring10, num_workers=0)

    def test_failure_without_checkpointing_rejected(self, ring10):
        with pytest.raises(ValueError, match="checkpoint"):
            JobSpec(
                program=EchoOnce(), graph=ring10, num_workers=2,
                failure_schedule={1: 0},
            )

    def test_explicit_partition_must_match_workers(self, ring10):
        from repro.partition import HashPartitioner

        p = HashPartitioner().partition(ring10, 3)
        with pytest.raises(ValueError, match="num_parts"):
            JobSpec(program=EchoOnce(), graph=ring10, num_workers=2, partition=p)

    def test_explicit_partition_must_cover_graph(self, ring10, path5):
        from repro.partition import HashPartitioner

        p = HashPartitioner().partition(path5, 2)
        with pytest.raises(ValueError, match="cover"):
            JobSpec(program=EchoOnce(), graph=ring10, num_workers=2, partition=p)

    def test_inject_to_unknown_vertex_raises(self, ring10):
        engine = BSPEngine(JobSpec(program=EchoOnce(), graph=ring10, num_workers=2))
        with pytest.raises(ValueError):
            engine.inject_message(42, "x")


class TestAccountingBasics:
    def test_time_and_cost_positive(self, ring10):
        res = run_job(JobSpec(program=EchoOnce(), graph=ring10, num_workers=2))
        assert res.total_time > 0
        assert res.total_cost > 0

    def test_more_workers_cost_more_for_same_steps(self, small_world):
        from repro.algorithms import PageRankProgram

        costs = {}
        for w in (2, 8):
            res = run_job(
                JobSpec(program=PageRankProgram(5), graph=small_world, num_workers=w)
            )
            costs[w] = res.total_cost / res.total_time  # $ per second
        assert costs[8] > costs[2]

    def test_remote_vs_local_message_split(self, ring10):
        # 1 worker -> all messages local; 10 workers -> mostly remote.
        res1 = run_job(JobSpec(program=EchoOnce(), graph=ring10, num_workers=1))
        resN = run_job(JobSpec(program=EchoOnce(), graph=ring10, num_workers=10))
        assert res1.trace.steps[0].remote_messages == 0
        assert resN.trace.steps[0].remote_messages > 0
        assert res1.trace.total_messages == resN.trace.total_messages

    def test_manager_vm_billed(self, ring10):
        res = run_job(JobSpec(program=EchoOnce(), graph=ring10, num_workers=2))
        merged = res.meter.merged()
        assert any("small" in name for name in merged)
