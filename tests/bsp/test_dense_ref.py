"""DenseRefEngine: bit-equivalence against BSPEngine, refusal gates, and
the engine-selection wiring (sanitizer, runner, run_job_dense_ref).
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.algorithms import (
    BCProgram,
    ConnectedComponentsProgram,
    KCoreProgram,
    LabelPropagationProgram,
    PageRankProgram,
    SSSPProgram,
    WCCProgram,
)
from repro.bsp import BSPEngine, JobSpec
from repro.bsp.dense_ref import (
    DenseRefEngine,
    PlanRefusedError,
    run_job_dense_ref,
)
from repro.graph import generators as gen
from repro.graph.csr import CSRGraph


def _equivalent(ref, dense, rel_tol=1e-9, abs_tol=1e-12):
    assert ref.supersteps == dense.supersteps
    assert ref.halted == dense.halted
    assert set(ref.values) == set(dense.values)
    for v in ref.values:
        a, b = ref.values[v], dense.values[v]
        if isinstance(a, float):
            assert math.isclose(a, b, rel_tol=rel_tol, abs_tol=abs_tol), (
                v, a, b,
            )
        else:
            assert a == b, (v, a, b)
    assert set(ref.aggregates) == set(dense.aggregates)
    for k in ref.aggregates:
        a, b = ref.aggregates[k], dense.aggregates[k]
        if isinstance(a, float):
            assert math.isclose(a, b, rel_tol=rel_tol, abs_tol=abs_tol), k
        else:
            assert a == b, k


def _run_both(program_factory, graph, **kwargs):
    ref = BSPEngine(
        JobSpec(program=program_factory(), graph=graph, num_workers=1,
                **kwargs)
    ).run()
    dense = DenseRefEngine(
        JobSpec(program=program_factory(), graph=graph, num_workers=4,
                **kwargs)
    ).run()
    return ref, dense


@pytest.fixture(scope="module")
def directed():
    return gen.erdos_renyi(60, 0.08, seed=3, directed=True)


@pytest.fixture(scope="module")
def undirected():
    return gen.watts_strogatz(60, 4, 0.3, seed=7).as_undirected()


def test_pagerank_equivalence(directed):
    ref, dense = _run_both(lambda: PageRankProgram(iterations=12), directed)
    _equivalent(ref, dense)
    assert dense.kernel_plan is not None
    assert dense.kernel_plan.reduce == "sum"


def test_sssp_weighted_equivalence(directed):
    rng = np.random.default_rng(4)
    gw = CSRGraph(
        directed.num_vertices, directed.indptr, directed.indices,
        weights=rng.uniform(0.5, 3.0, directed.num_arcs),
    )
    ref, dense = _run_both(lambda: SSSPProgram(source=0), gw)
    _equivalent(ref, dense)


def test_cc_and_wcc_equivalence(undirected):
    for factory in (ConnectedComponentsProgram, WCCProgram):
        ref, dense = _run_both(factory, undirected)
        _equivalent(ref, dense)


def test_kcore_peel_cascade_equivalence():
    # A path peels one layer per round under k=2: the longest mutation
    # cascade a small fixture can force.
    g = gen.path(24).as_undirected()
    ref, dense = _run_both(lambda: KCoreProgram(k=2), g)
    _equivalent(ref, dense)
    assert ref.supersteps > 5  # the cascade actually happened


def test_lpa_equivalence_with_mode_ties(undirected):
    ref, dense = _run_both(
        lambda: LabelPropagationProgram(max_rounds=20), undirected
    )
    _equivalent(ref, dense)


def test_max_supersteps_cap(undirected):
    ref, dense = _run_both(WCCProgram, undirected, max_supersteps=2)
    _equivalent(ref, dense)
    assert not dense.halted


def test_initially_active_subset(undirected):
    ref, dense = _run_both(
        WCCProgram, undirected, initially_active=[0, 7, 13]
    )
    _equivalent(ref, dense)


def test_initial_messages(directed):
    ref, dense = _run_both(
        lambda: SSSPProgram(source=0), directed,
        initially_active=False, initial_messages=[(0, 0.0)],
    )
    _equivalent(ref, dense)


def test_refused_program_raises_with_rule_and_span(directed):
    with pytest.raises(PlanRefusedError, match="RPC016"):
        DenseRefEngine(
            JobSpec(program=BCProgram(), graph=directed, num_workers=2)
        )


def test_param_bound_outside_plan_is_refused(directed):
    # The plan was lifted for weight_fn=None; binding a callable breaks
    # the precondition and must refuse, not silently ignore the function.
    prog = SSSPProgram(source=0, weight_fn=lambda u, v: 2.0)
    with pytest.raises(PlanRefusedError, match="weight_fn"):
        DenseRefEngine(
            JobSpec(program=prog, graph=directed, num_workers=2)
        )


def test_peel_plan_refuses_injected_messages():
    g = gen.path(10).as_undirected()
    with pytest.raises(PlanRefusedError, match="injected"):
        DenseRefEngine(
            JobSpec(
                program=KCoreProgram(k=2), graph=g, num_workers=2,
                initial_messages=[(0, (1, 2))],
            )
        )


def test_run_job_dense_ref_helper(directed):
    res = run_job_dense_ref(
        JobSpec(
            program=PageRankProgram(iterations=5), graph=directed,
            num_workers=2,
        )
    )
    assert res.supersteps == 6
    assert res.halted


def test_runner_engine_dense_ref(directed):
    from repro.analysis.runner import RunConfig, run_pagerank

    sim = run_pagerank(directed, RunConfig(num_workers=2), iterations=8)
    dense = run_pagerank(
        directed, RunConfig(num_workers=2, engine="dense-ref"),
        iterations=8,
    )
    _equivalent(sim, dense)


def test_certify_determinism_dense_ref_engine(undirected):
    from repro.check.sanitizer import certify_determinism

    report = certify_determinism(
        WCCProgram, undirected, num_workers=4, engine="dense-ref"
    )
    assert report.ok, report.summary()
    assert report.engine == "dense-ref"


def test_explicit_plan_override(directed):
    from repro.check.vectorize import lift_of

    plan = lift_of(PageRankProgram).plan
    assert plan is not None
    res = DenseRefEngine(
        JobSpec(
            program=PageRankProgram(iterations=4), graph=directed,
            num_workers=2,
        ),
        plan=plan,
    ).run()
    assert res.kernel_plan is plan
