"""Tracing wrapper and invariant checker."""

import numpy as np
import pytest

from repro.algorithms import BCProgram, PageRankProgram, betweenness_reference
from repro.algorithms import bc as bc_mod
from repro.bsp import JobSpec, run_job
from repro.bsp.debug import InvariantChecker, TracingProgram


class TestTracingProgram:
    def test_results_unchanged(self, small_world):
        plain = run_job(
            JobSpec(program=PageRankProgram(6), graph=small_world, num_workers=3)
        )
        traced = run_job(
            JobSpec(
                program=TracingProgram(PageRankProgram(6)),
                graph=small_world, num_workers=3,
            )
        )
        assert np.allclose(plain.values_array(), traced.values_array(), atol=1e-12)

    def test_records_all_sends(self, ring10):
        tracer = TracingProgram(PageRankProgram(2))
        res = run_job(JobSpec(program=tracer, graph=ring10, num_workers=2))
        # Messages recorded pre-combine; trace >= transferred count.
        assert len(tracer.messages) >= res.trace.total_messages
        assert len(tracer.messages) == 2 * 10 * 2  # 2 rounds x 10 vertices x 2 nbrs

    def test_send_metadata(self, ring10):
        tracer = TracingProgram(PageRankProgram(1))
        run_job(JobSpec(program=tracer, graph=ring10, num_workers=2))
        from_zero = tracer.sends_from(0)
        assert {m.dst for m in from_zero if m.superstep == 0} == {1, 9}
        first = from_zero[0]
        assert first.superstep == 0
        assert first.payload == pytest.approx(0.05)  # 1/10 rank over 2 edges

    def test_query_helpers(self, ring10):
        tracer = TracingProgram(PageRankProgram(1))
        run_job(JobSpec(program=tracer, graph=ring10, num_workers=2))
        assert len(tracer.sends_from(3)) == 2
        assert len(tracer.sends_to(3)) == 2
        assert len(tracer.messages_in_superstep(0)) == 20

    def test_computes_recorded(self, ring10):
        tracer = TracingProgram(PageRankProgram(1))
        run_job(JobSpec(program=tracer, graph=ring10, num_workers=2))
        step0 = [c for c in tracer.computes if c[0] == 0]
        assert len(step0) == 10

    def test_works_with_bc(self, small_world):
        tracer = TracingProgram(BCProgram())
        res = run_job(
            JobSpec(
                program=tracer, graph=small_world, num_workers=3,
                initially_active=False,
                initial_messages=bc_mod.start_messages(range(4)),
            )
        )
        ref = betweenness_reference(small_world, roots=range(4))
        assert np.allclose(res.values_array(), ref, atol=1e-9)
        assert tracer.messages  # the waves were recorded

    def test_unbound_context_raises_explicitly(self):
        from repro.bsp.debug import _TracingContext

        ctx = _TracingContext(log=[])
        with pytest.raises(AttributeError, match="not bound to a vertex"):
            ctx.superstep
        with pytest.raises(AttributeError, match="not bound to a vertex"):
            ctx.send(0, 1.0)
        with pytest.raises(AttributeError, match="not bound to a vertex"):
            ctx.send_to_neighbors(1.0)

    def test_forwards_resource_and_aggregator_hooks(self):
        class Hooked(PageRankProgram):
            def aggregators(self):
                return {"probe": object()}

            def payload_nbytes(self, payload):
                return 123

            def state_nbytes(self, state):
                return 456

        tracer = TracingProgram(Hooked(3))
        assert tracer.payload_nbytes(0.5) == 123
        assert tracer.state_nbytes(0.5) == 456
        assert set(tracer.aggregators()) == {"probe"}
        assert tracer.extract(0, 1.5) == Hooked(3).extract(0, 1.5)


class TestInvariantChecker:
    @pytest.mark.parametrize("workers", [1, 3, 8])
    def test_clean_run_has_no_violations(self, small_world, workers):
        checker = InvariantChecker()
        run_job(
            JobSpec(
                program=PageRankProgram(6), graph=small_world,
                num_workers=workers, observers=[checker],
            )
        )
        assert checker.ok, checker.violations

    def test_bc_with_swaths_clean(self, small_world):
        from repro.scheduling import DynamicPeakDetect, StaticSizer, SwathController

        checker = InvariantChecker()
        ctrl = SwathController(
            roots=list(range(8)), start_factory=bc_mod.start_messages,
            sizer=StaticSizer(3), initiation=DynamicPeakDetect(),
        )
        run_job(
            JobSpec(
                program=BCProgram(), graph=small_world, num_workers=4,
                initially_active=False, observers=[ctrl, checker],
            )
        )
        assert checker.ok, checker.violations

    def test_detects_seeded_violation(self):
        # Feed the checker a fabricated inconsistent stats object directly.
        from repro.bsp.superstep import SuperstepStats, WorkerStepStats

        from types import SimpleNamespace

        FakeEngine = lambda: SimpleNamespace(
            graph=SimpleNamespace(num_vertices=10),
            job=SimpleNamespace(program=SimpleNamespace(combiner=None)),
        )

        checker = InvariantChecker()
        s = SuperstepStats(index=0, num_workers=1)
        w = WorkerStepStats(worker=0, msgs_in=5)  # drained 5, buffered was 0
        s.workers.append(w)
        s.elapsed = 1.0
        checker.on_superstep_end(FakeEngine(), s)
        assert not checker.ok
        assert "drained" in checker.violations[0]
