"""Combiners and aggregators (Pregel extensions)."""

import pytest

from repro.bsp import (
    AndAggregator,
    CountAggregator,
    JobSpec,
    MaxAggregator,
    MaxCombiner,
    MinAggregator,
    MinCombiner,
    OrAggregator,
    SumAggregator,
    SumCombiner,
    VertexProgram,
    run_job,
)
from repro.graph import generators as gen


class TestCombinerPrimitives:
    def test_sum(self):
        assert SumCombiner().combine(2, 3) == 5

    def test_min(self):
        assert MinCombiner().combine(2, 3) == 2

    def test_max(self):
        assert MaxCombiner().combine(2, 3) == 3


class TestAggregatorPrimitives:
    @pytest.mark.parametrize(
        "agg,values,expected",
        [
            (SumAggregator(), [1, 2, 3], 6),
            (MinAggregator(), [5, 2, 9], 2),
            (MaxAggregator(), [5, 2, 9], 9),
            (AndAggregator(), [True, True, False], False),
            (AndAggregator(), [True, True], True),
            (OrAggregator(), [False, False, True], True),
            (OrAggregator(), [False], False),
            (CountAggregator(), ["a", "b", "c"], 3),
        ],
    )
    def test_reduce(self, agg, values, expected):
        acc = agg.identity()
        for v in values:
            acc = agg.reduce(acc, v)
        assert acc == expected

    def test_count_merge_adds_partials(self):
        agg = CountAggregator()
        assert agg.merge(3, 4) == 7

    def test_default_merge_is_reduce(self):
        agg = SumAggregator()
        assert agg.merge(3, 4) == 7


class _StarBroadcast(VertexProgram):
    """Hub sends one value to every leaf; leaves sum what they get."""

    combiner = SumCombiner()

    def compute(self, ctx, state, messages):
        if ctx.superstep == 0 and ctx.vertex_id == 1:
            for _ in range(4):
                ctx.send(0, 10)  # four messages to the hub, combinable
        ctx.vote_to_halt()
        return sum(messages) if messages else state


class TestCombinerInEngine:
    def test_combined_value_correct(self, star8):
        res = run_job(JobSpec(program=_StarBroadcast(), graph=star8, num_workers=3))
        assert res.values[0] == 40

    def test_combiner_reduces_transferred_messages(self, star8):
        class NoCombiner(_StarBroadcast):
            combiner = None

        with_c = run_job(
            JobSpec(program=_StarBroadcast(), graph=star8, num_workers=3)
        )
        without_c = run_job(
            JobSpec(program=NoCombiner(), graph=star8, num_workers=3)
        )
        assert with_c.values[0] == without_c.values[0] == 40
        # Combined messages count once post-combine at the receiving side.
        assert (
            with_c.trace.steps[1].workers[0].msgs_in
            < without_c.trace.steps[1].workers[0].msgs_in
            or with_c.trace.steps[1].compute_calls
            == without_c.trace.steps[1].compute_calls
        )

    def test_combiner_applies_local_and_remote(self, ring10):
        class FanIn(VertexProgram):
            combiner = SumCombiner()

            def compute(self, ctx, state, messages):
                if ctx.superstep == 0:
                    ctx.send(0, 1)  # all 10 vertices send to vertex 0
                ctx.vote_to_halt()
                return sum(messages) if messages else None

        res = run_job(JobSpec(program=FanIn(), graph=ring10, num_workers=4))
        assert res.values[0] == 10


class _AggregatingProgram(VertexProgram):
    def aggregators(self):
        return {"total": SumAggregator(), "largest": MaxAggregator()}

    def compute(self, ctx, state, messages):
        if ctx.superstep == 0:
            ctx.aggregate("total", ctx.vertex_id)
            ctx.aggregate("largest", ctx.vertex_id)
            ctx.send(ctx.vertex_id, "again")
            ctx.vote_to_halt()
            return None
        ctx.vote_to_halt()
        return (ctx.aggregated("total"), ctx.aggregated("largest"))


class TestAggregatorsInEngine:
    def test_values_visible_next_superstep(self, ring10):
        res = run_job(
            JobSpec(program=_AggregatingProgram(), graph=ring10, num_workers=3)
        )
        assert all(v == (45, 9) for v in res.values.values())

    def test_final_aggregates_in_result(self, ring10):
        res = run_job(
            JobSpec(program=_AggregatingProgram(), graph=ring10, num_workers=3)
        )
        # Last superstep had no contributions -> identity values.
        assert res.aggregates["total"] == 0

    def test_unknown_aggregator_raises(self, ring10):
        class Bad(VertexProgram):
            def compute(self, ctx, state, messages):
                ctx.aggregate("nope", 1)
                return None

        with pytest.raises(KeyError):
            run_job(JobSpec(program=Bad(), graph=ring10, num_workers=2))

    def test_unknown_aggregated_read_raises(self, ring10):
        class Bad(VertexProgram):
            def compute(self, ctx, state, messages):
                ctx.aggregated("nope")
                return None

        with pytest.raises(KeyError):
            run_job(JobSpec(program=Bad(), graph=ring10, num_workers=2))

    def test_engine_aggregated_accessor(self, ring10):
        from repro.bsp import BSPEngine

        engine = BSPEngine(
            JobSpec(program=_AggregatingProgram(), graph=ring10, num_workers=2)
        )
        assert engine.aggregated("total") == 0  # identity before run
        with pytest.raises(KeyError):
            engine.aggregated("nope")
