"""Checkpointing and coordinated failure recovery."""

import numpy as np
import pytest

from repro.algorithms import PageRankProgram, pagerank_reference
from repro.bsp import JobSpec, run_job


class TestCheckpointing:
    def test_checkpointing_does_not_change_results(self, small_world):
        plain = run_job(
            JobSpec(program=PageRankProgram(10), graph=small_world, num_workers=3)
        )
        ckpt = run_job(
            JobSpec(
                program=PageRankProgram(10), graph=small_world, num_workers=3,
                checkpoint_interval=3,
            )
        )
        assert np.allclose(plain.values_array(), ckpt.values_array())

    def test_checkpointing_costs_time(self, small_world):
        plain = run_job(
            JobSpec(program=PageRankProgram(10), graph=small_world, num_workers=3)
        )
        ckpt = run_job(
            JobSpec(
                program=PageRankProgram(10), graph=small_world, num_workers=3,
                checkpoint_interval=2,
            )
        )
        assert ckpt.total_time > plain.total_time


class TestFailureRecovery:
    def test_recovery_reproduces_exact_results(self, small_world):
        ref = pagerank_reference(small_world, iterations=12)
        res = run_job(
            JobSpec(
                program=PageRankProgram(12), graph=small_world, num_workers=4,
                checkpoint_interval=4, failure_schedule={6: 2},
            )
        )
        assert res.halted
        assert len(res.recoveries) == 1
        assert np.allclose(res.values_array(), ref, atol=1e-6)

    def test_recovery_event_metadata(self, small_world):
        res = run_job(
            JobSpec(
                program=PageRankProgram(12), graph=small_world, num_workers=4,
                checkpoint_interval=4, failure_schedule={6: 2},
            )
        )
        ev = res.recoveries[0]
        assert ev.failed_superstep == 6
        assert ev.failed_worker == 2
        assert ev.resumed_from == 4  # last checkpoint before the failure
        assert ev.recovery_seconds > 0

    def test_failure_before_first_periodic_checkpoint(self, small_world):
        # Rolls back to the initial (superstep 0) checkpoint.
        res = run_job(
            JobSpec(
                program=PageRankProgram(8), graph=small_world, num_workers=3,
                checkpoint_interval=5, failure_schedule={2: 0},
            )
        )
        assert res.recoveries[0].resumed_from == 0
        ref = pagerank_reference(small_world, iterations=8)
        assert np.allclose(res.values_array(), ref, atol=1e-6)

    def test_multiple_failures(self, small_world):
        res = run_job(
            JobSpec(
                program=PageRankProgram(12), graph=small_world, num_workers=4,
                checkpoint_interval=3, failure_schedule={4: 1, 9: 3},
            )
        )
        assert len(res.recoveries) == 2
        ref = pagerank_reference(small_world, iterations=12)
        assert np.allclose(res.values_array(), ref, atol=1e-6)

    def test_recovery_costs_time(self, small_world):
        base = run_job(
            JobSpec(
                program=PageRankProgram(10), graph=small_world, num_workers=3,
                checkpoint_interval=4,
            )
        )
        failed = run_job(
            JobSpec(
                program=PageRankProgram(10), graph=small_world, num_workers=3,
                checkpoint_interval=4, failure_schedule={6: 1},
            )
        )
        assert failed.total_time > base.total_time

    def test_unknown_worker_in_schedule_raises(self, small_world):
        with pytest.raises(ValueError, match="unknown worker"):
            run_job(
                JobSpec(
                    program=PageRankProgram(5), graph=small_world, num_workers=3,
                    checkpoint_interval=2, failure_schedule={1: 99},
                )
            )
