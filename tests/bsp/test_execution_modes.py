"""Disk-buffered and MapReduce-style execution modes."""

from dataclasses import replace

import numpy as np
import pytest

from repro.algorithms import PageRankProgram, pagerank_reference
from repro.bsp import JobSpec, run_job
from repro.cloud.costmodel import PerfModel
from repro.cloud.specs import scaled_large


def run_pr(graph, model, memory=1 << 40):
    return run_job(
        JobSpec(
            program=PageRankProgram(8), graph=graph, num_workers=3,
            perf_model=model, vm_spec=scaled_large(memory),
        )
    )


class TestDiskBuffering:
    def test_results_identical(self, small_world):
        mem = run_pr(small_world, PerfModel())
        disk = run_pr(small_world, PerfModel(disk_buffering=True))
        assert np.allclose(mem.values_array(), disk.values_array(), atol=1e-12)

    def test_charges_disk_time(self, small_world):
        disk = run_pr(small_world, PerfModel(disk_buffering=True))
        assert any(
            w.disk_time > 0 for s in disk.trace for w in s.workers
        )
        mem = run_pr(small_world, PerfModel())
        assert all(w.disk_time == 0 for s in mem.trace for w in s.workers)

    def test_uniform_overhead(self, small_world):
        """§IV: disk buffering is a ~uniform multiplicative overhead."""
        mem = run_pr(small_world, PerfModel())
        disk = run_pr(small_world, PerfModel(disk_buffering=True, disk_bandwidth=1e5))
        ratios = disk.trace.series_elapsed()[1:-1] / mem.trace.series_elapsed()[1:-1]
        assert ratios.min() > 1.15
        assert ratios.std() / ratios.mean() < 0.2  # roughly uniform

    def test_removes_message_memory_pressure(self, small_world):
        mem = run_pr(small_world, PerfModel())
        disk = run_pr(small_world, PerfModel(disk_buffering=True))
        assert disk.trace.peak_memory < mem.trace.peak_memory

    def test_no_spill_even_with_tiny_memory(self, small_world):
        model = PerfModel(disk_buffering=True, restart_overflow_ratio=1e9)
        # Memory big enough for graph+state (~3 KB/worker) but not for the
        # ~7 KB/worker of buffered messages.
        disk = run_pr(small_world, model, memory=6_000)
        mem = run_pr(
            small_world, PerfModel(restart_overflow_ratio=1e9), memory=6_000
        )
        disk_slow = max(w.mem_slowdown for s in disk.trace for w in s.workers)
        mem_slow = max(w.mem_slowdown for s in mem.trace for w in s.workers)
        assert mem_slow > disk_slow


class TestMapReduceIteration:
    def test_results_identical(self, small_world):
        mem = run_pr(small_world, PerfModel())
        mr = run_pr(small_world, PerfModel(mapreduce_iteration=True))
        assert np.allclose(mem.values_array(), mr.values_array(), atol=1e-12)
        ref = pagerank_reference(small_world, iterations=8)
        assert np.allclose(mr.values_array(), ref, atol=1e-10)

    def test_slower_than_disk_buffering(self, small_world):
        bw = 1e5
        disk = run_pr(
            small_world, PerfModel(disk_buffering=True, disk_bandwidth=bw)
        )
        mr = run_pr(
            small_world, PerfModel(mapreduce_iteration=True, disk_bandwidth=bw)
        )
        assert mr.total_time > disk.total_time

    def test_reload_charged_even_on_quiet_supersteps(self, ring10):
        from repro.bsp import VertexProgram

        class Quiet(VertexProgram):
            def compute(self, ctx, state, messages):
                if ctx.superstep < 3:
                    ctx.send(ctx.vertex_id, 1)
                ctx.vote_to_halt()
                return state

        mr = run_job(
            JobSpec(
                program=Quiet(), graph=ring10, num_workers=2,
                perf_model=PerfModel(mapreduce_iteration=True, disk_bandwidth=1e5),
            )
        )
        # Graph/state reload cost appears every superstep, messages or not.
        assert all(
            any(w.disk_time > 0 for w in s.workers) for s in mr.trace
        )
