"""`repro perf`: report rendering, regression diffing, and the CLI.

Carries the issue's acceptance scenario: a BC swath run with injected
jitter on one worker must produce a report attributing the straggler to
that worker with the jitter cause, and `perf diff` must flag a 2x compute
slowdown while staying clean on an unchanged run.
"""

import copy
import dataclasses
import json

import pytest

from repro.analysis import RunConfig, run_traversal
from repro.cli import main as cli_main
from repro.cloud.costmodel import DEFAULT_PERF_MODEL
from repro.graph import generators as gen
from repro.graph import io as graph_io
from repro.obs import RunTimeline, perf_diff, perf_report, timeline_from_dict
from repro.scheduling import StaticSizer


@pytest.fixture(scope="module")
def bc_jitter_timeline():
    """BC over swaths on a balanced graph, jitter injected on worker 2."""
    graph = gen.watts_strogatz(480, 8, 0.2, seed=3)
    tl = RunTimeline()
    cfg = RunConfig(
        num_workers=4,
        perf_model=dataclasses.replace(
            DEFAULT_PERF_MODEL, jitter=0.6, jitter_seed=5,
            jitter_workers=(2,),
        ),
        timeline=tl,
    )
    run_traversal(graph, cfg, roots=range(24), kind="bc",
                  sizer=StaticSizer(6))
    return tl


class TestReport:
    def test_attributes_jitter_to_the_injected_worker(
        self, bc_jitter_timeline
    ):
        text = perf_report(bc_jitter_timeline)
        assert "critical path" in text
        assert "per-worker totals" in text
        assert "straggler flags" in text
        assert "dominant cause: jitter" in text
        assert "w2 " in text and "(jitter_factor=" in text
        # Jitter flags must not trigger a repartitioning hint...
        assert "min-cut" not in text.split("hint:")[-1] or "hint:" not in text
        # ...and the swath controller's annotations ride along.
        assert "swath-initiation" in text

    def test_quiet_run_reports_no_flags(self, small_world):
        tl = RunTimeline()
        cfg = RunConfig(num_workers=4, timeline=tl)
        run_traversal(small_world, cfg, roots=range(6), kind="bc",
                      sizer=StaticSizer(3))
        text = perf_report(tl)
        assert "straggler flags: none" in text


def slow_compute_copy(tl, factor=2.0):
    """A doctored timeline whose every row computes ``factor`` x slower."""
    doctored = timeline_from_dict(copy.deepcopy(tl.to_dict()))
    for r in doctored.rows:
        r.compute_time *= factor
    sim = 0.0
    for s in doctored.steps:
        slowest = max(
            (r.elapsed for r in doctored.rows_of_step(s.superstep)),
            default=0.0,
        )
        s.elapsed = slowest + s.barrier_time + s.restart_time + s.overhead_time
        sim += s.elapsed
        s.sim_time_end = sim
    return doctored


class TestDiff:
    def test_unchanged_run_is_clean(self, bc_jitter_timeline):
        text, regressed = perf_diff(bc_jitter_timeline, bc_jitter_timeline)
        assert not regressed
        assert "clean" in text
        assert "REGRESSED" not in text

    def test_2x_compute_slowdown_flagged(self, bc_jitter_timeline):
        slow = slow_compute_copy(bc_jitter_timeline)
        text, regressed = perf_diff(bc_jitter_timeline, slow)
        assert regressed
        assert "REGRESSION" in text
        lines = [ln for ln in text.splitlines() if ln.lstrip().startswith("compute")]
        assert lines and "REGRESSED" in lines[0]

    def test_improvement_is_not_a_regression(self, bc_jitter_timeline):
        slow = slow_compute_copy(bc_jitter_timeline)
        _, regressed = perf_diff(slow, bc_jitter_timeline)
        assert not regressed


class TestCLI:
    @pytest.fixture
    def timeline_file(self, small_world, tmp_path, capsys):
        g = tmp_path / "g.txt"
        graph_io.write_edge_list(small_world, g)
        t = tmp_path / "tl.json"
        rc = cli_main([
            "run", "--graph", str(g), "--app", "pagerank",
            "--workers", "3", "--iterations", "6",
            "--timeline-out", str(t),
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "timeline written to" in out
        return t

    def test_report_command(self, timeline_file, capsys):
        assert cli_main(["perf", "report", str(timeline_file)]) == 0
        out = capsys.readouterr().out
        assert "critical path" in out
        assert "per-worker totals" in out

    def test_diff_clean_and_regressed_exit_codes(
        self, timeline_file, tmp_path, capsys
    ):
        assert cli_main(
            ["perf", "diff", str(timeline_file), str(timeline_file)]
        ) == 0
        assert "clean" in capsys.readouterr().out

        from repro.obs import read_timeline, timeline_to_dict

        slow = slow_compute_copy(read_timeline(timeline_file))
        slow_path = tmp_path / "slow.json"
        slow_path.write_text(json.dumps(timeline_to_dict(slow)))
        assert cli_main(
            ["perf", "diff", str(timeline_file), str(slow_path)]
        ) == 1
        assert "REGRESSION" in capsys.readouterr().out

    def test_garbage_input_exits_2(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"version": 1, "spans": []}))
        assert cli_main(["perf", "report", str(bad)]) == 2
        assert "trace or spans" in capsys.readouterr().err
