"""Straggler detection, cause attribution, and critical-path analysis."""

import dataclasses

import pytest

from repro.algorithms import PageRankProgram
from repro.bsp import JobSpec, run_job
from repro.cloud.costmodel import DEFAULT_PERF_MODEL
from repro.graph import generators as gen
from repro.obs import (
    DiagnosticMonitor,
    MetricsRegistry,
    RunTimeline,
    SpanTracer,
    attribute_run,
    critical_path,
    flag_stragglers_step,
    worker_skew,
)
from repro.obs.diagnose import dominant_cause
from repro.obs.timeline import TimelineRow
from repro.partition.advisor import repartition_hint


def row(worker, compute=1.0, serialize=0.0, network=0.0, jitter=1.0,
        mem=1.0, calls=100, remote=10, msgs_in=10, superstep=0):
    return TimelineRow(
        superstep=superstep, worker=worker, compute_calls=calls,
        msgs_in=msgs_in, msgs_out_local=10, msgs_out_remote=remote,
        compute_time=compute, serialize_time=serialize,
        network_time=network, mem_slowdown=mem, jitter_factor=jitter,
    )


class TestFlagging:
    def test_balanced_fleet_never_flags(self):
        assert flag_stragglers_step([row(w) for w in range(4)]) == []

    def test_single_worker_never_flags(self):
        assert flag_stragglers_step([row(0, compute=99.0)]) == []

    def test_outlier_flagged_with_ratio(self):
        rows = [row(0), row(1), row(2), row(3, compute=2.0)]
        flags = flag_stragglers_step(rows)
        assert len(flags) == 1
        assert flags[0].worker == 3
        assert flags[0].ratio == pytest.approx(2.0)

    def test_small_wobble_below_min_ratio_ignored(self):
        rows = [row(0), row(1), row(2), row(3, compute=1.1)]
        assert flag_stragglers_step(rows, min_ratio=1.2) == []

    def test_mad_threshold_suppresses_noisy_fleets(self):
        # A spread-out fleet: the max is < min_ratio of the median anyway,
        # but with a large MAD even a 1.3x worker is unremarkable.
        rows = [row(0, compute=0.5), row(1, compute=1.0),
                row(2, compute=1.5), row(3, compute=1.3)]
        assert flag_stragglers_step(rows, min_ratio=1.1) == []


class TestAttribution:
    def flags_for(self, rows, **kw):
        return flag_stragglers_step(rows, **kw)

    def test_jitter_wins_over_everything(self):
        rows = [row(0), row(1), row(2), row(3, jitter=2.0, mem=1.5)]
        (f,) = self.flags_for(rows)
        assert f.cause == "jitter"
        assert "jitter_factor=2.00" in f.detail

    def test_memory_pressure(self):
        rows = [row(0), row(1), row(2), row(3, mem=1.8)]
        (f,) = self.flags_for(rows)
        assert f.cause == "memory-pressure"

    def test_remote_traffic(self):
        rows = [row(0), row(1), row(2),
                row(3, compute=0.2, network=1.5, remote=500, msgs_in=500)]
        (f,) = self.flags_for(rows)
        assert f.cause == "remote-traffic"

    def test_degree_skew_from_share(self):
        rows = [row(0), row(1), row(2), row(3, compute=2.0)]
        (f,) = self.flags_for(rows, degree_share=[0.1, 0.1, 0.1, 0.7])
        assert f.cause == "degree-skew"
        assert "70%" in f.detail

    def test_degree_skew_from_compute_calls(self):
        rows = [row(0), row(1), row(2), row(3, compute=2.0, calls=600)]
        (f,) = self.flags_for(rows)
        assert f.cause == "degree-skew"

    def test_unknown_when_nothing_explains(self):
        rows = [row(0), row(1), row(2), row(3, compute=2.0)]
        (f,) = self.flags_for(rows)
        assert f.cause == "unknown"

    def test_dominant_cause_counts_and_tie_break(self):
        rows = [row(0), row(1), row(2), row(3, jitter=2.0)]
        flags = self.flags_for(rows) * 3
        assert dominant_cause(flags) == ("jitter", 3)
        assert dominant_cause([]) is None


class TestRepartitionHint:
    def make_flags(self, cause, n):
        rows = {
            "jitter": [row(0), row(1), row(2), row(3, jitter=2.0)],
            "remote-traffic": [
                row(0), row(1), row(2),
                row(3, compute=0.2, network=1.5, remote=500, msgs_in=500),
            ],
        }[cause]
        return flag_stragglers_step(rows) * n

    def test_hint_matches_cause(self):
        flags = self.make_flags("remote-traffic", 5)
        hint = repartition_hint(flags, num_steps=20)
        assert "min-cut" in hint
        jitter = repartition_hint(self.make_flags("jitter", 5), num_steps=20)
        assert "repartitioning will not help" in jitter

    def test_too_few_flags_yield_no_hint(self):
        flags = self.make_flags("remote-traffic", 1)
        assert repartition_hint(flags, num_steps=100) is None
        assert repartition_hint([], num_steps=10) is None


def jitter_job(graph, timeline=None, jitter_worker=2, **kw):
    model = dataclasses.replace(
        DEFAULT_PERF_MODEL, jitter=0.6, jitter_seed=11,
        jitter_workers=(jitter_worker,),
    )
    return JobSpec(
        program=PageRankProgram(10), graph=graph, num_workers=4,
        perf_model=model, timeline=timeline, **kw,
    )


@pytest.fixture
def balanced_graph():
    # Near-uniform degrees, so injected jitter is the only asymmetry.
    return gen.watts_strogatz(240, 6, 0.1, seed=3)


class TestDiagnosticMonitor:
    def test_targeted_jitter_attributed_to_that_worker(self, balanced_graph):
        metrics, tracer = MetricsRegistry(), SpanTracer()
        monitor = DiagnosticMonitor()
        run_job(
            jitter_job(
                balanced_graph, metrics=metrics, tracer=tracer,
                observers=[monitor],
            )
        )
        assert monitor.flags, "0.6 jitter on one worker must flag"
        # The jittered worker dominates the flags and every one of its
        # flags carries the jitter attribution (other workers may pick up
        # the odd flag from residual graph imbalance).
        by_worker = [
            sum(f.worker == w for f in monitor.flags) for w in range(4)
        ]
        assert by_worker[2] == max(by_worker) > 0
        assert all(
            f.cause == "jitter" for f in monitor.flags if f.worker == 2
        )
        assert dominant_cause(monitor.flags)[0] == "jitter"
        # Flags export as a labelled counter and as trace events.
        c = metrics.get("repro_straggler_flags_total", cause="jitter")
        assert c is not None and c.value >= by_worker[2]
        events = tracer.named("straggler")
        assert len(events) == len(monitor.flags)
        assert monitor.skew_signal() > 1.0
        assert monitor.worst_flag().ratio == max(
            f.ratio for f in monitor.flags
        )

    def test_offline_attribution_agrees_with_online(self, balanced_graph):
        tl = RunTimeline()
        monitor = DiagnosticMonitor()
        run_job(jitter_job(balanced_graph, timeline=tl, observers=[monitor]))
        offline = attribute_run(tl)
        assert [(f.superstep, f.worker, f.cause) for f in offline] == [
            (f.superstep, f.worker, f.cause) for f in monitor.flags
        ]

    def test_quiet_run_stays_silent(self, small_world):
        monitor = DiagnosticMonitor()
        run_job(
            JobSpec(
                program=PageRankProgram(6), graph=small_world,
                num_workers=4, observers=[monitor],
            )
        )
        assert monitor.flags == []
        assert monitor.skew_signal() == pytest.approx(1.0, abs=0.3)


class TestCriticalPath:
    def test_phases_sum_to_pacing_decomposition(self, small_world):
        tl = RunTimeline()
        run_job(
            JobSpec(
                program=PageRankProgram(6), graph=small_world,
                num_workers=4, timeline=tl, checkpoint_interval=2,
            )
        )
        cp = critical_path(tl)
        assert cp["total"] == pytest.approx(tl.total_time)
        assert (
            cp["compute"] + cp["comm"] + cp["barrier"] + cp["overhead"]
            == pytest.approx(cp["total"], rel=1e-9)
        )
        assert cp["overhead"] > 0  # checkpoint writes land here
        assert 0 < cp["utilization"] <= 1
        assert cp["skew_wait"] >= 0

    def test_worker_skew_totals(self, small_world):
        tl = RunTimeline()
        run_job(
            JobSpec(
                program=PageRankProgram(6), graph=small_world,
                num_workers=4, timeline=tl,
            )
        )
        skew = worker_skew(tl)
        assert skew["elapsed"].shape == (4,)
        assert skew["msgs_out"].sum() == tl.total_messages
