"""Span tracer: nesting discipline, two-clock accounting, exports."""

import json

import pytest

from repro.obs import Span, SpanTracer


class FakeClock:
    """Deterministic host clock; advance() moves time forward."""

    def __init__(self):
        self.t = 100.0

    def __call__(self):
        return self.t

    def advance(self, dt):
        self.t += dt


@pytest.fixture
def clock():
    return FakeClock()


@pytest.fixture
def tracer(clock):
    return SpanTracer(clock=clock)


class TestNesting:
    def test_parent_and_depth(self, tracer):
        job = tracer.start("job", sim=0.0, category="engine")
        step = tracer.start("superstep", sim=0.0)
        compute = tracer.start("compute", sim=0.0)
        assert (job.parent, job.depth) == (None, 0)
        assert (step.parent, step.depth) == (job.index, 1)
        assert (compute.parent, compute.depth) == (step.index, 2)
        assert tracer.open_spans == 3
        tracer.end(compute)
        tracer.end(step)
        tracer.end(job)
        assert tracer.open_spans == 0

    def test_lifo_enforced(self, tracer):
        outer = tracer.start("outer")
        tracer.start("inner")
        with pytest.raises(RuntimeError, match="innermost"):
            tracer.end(outer)

    def test_end_without_start_raises(self, tracer):
        s = Span(index=0, name="x", category="phase", host_start=0, sim_start=0)
        with pytest.raises(RuntimeError):
            tracer.end(s)


class TestClocks:
    def test_host_time_is_epoch_relative(self, tracer, clock):
        clock.advance(2.0)
        s = tracer.start("phase")
        clock.advance(0.5)
        tracer.end(s)
        assert s.host_start == pytest.approx(2.0)
        assert s.host_duration == pytest.approx(0.5)

    def test_sim_duration_from_end(self, tracer):
        s = tracer.start("superstep", sim=10.0)
        tracer.end(s, sim=13.5)
        assert s.sim_duration == pytest.approx(3.5)

    def test_bare_end_means_zero_sim(self, tracer):
        s = tracer.start("phase", sim=4.0)
        tracer.end(s)
        assert s.sim_duration == 0.0
        assert s.closed

    def test_set_sim_duration_survives_bare_end(self, tracer):
        s = tracer.start("compute", sim=7.0)
        s.set_sim_duration(1.25)
        tracer.end(s)
        assert s.sim_duration == pytest.approx(1.25)
        assert s.sim_end == pytest.approx(8.25)

    def test_explicit_end_sim_overrides(self, tracer):
        s = tracer.start("compute", sim=0.0)
        s.set_sim_duration(1.0)
        tracer.end(s, sim=2.0)
        assert s.sim_duration == pytest.approx(2.0)

    def test_record_leaf(self, tracer, clock):
        parent = tracer.start("superstep", sim=0.0)
        leaf = tracer.record(
            "barrier", sim=5.0, sim_duration=0.75, host_duration=0.01, workers=4
        )
        tracer.end(parent, sim=6.0)
        assert leaf.parent == parent.index
        assert leaf.depth == 1
        assert leaf.closed
        assert leaf.sim_duration == pytest.approx(0.75)
        assert leaf.host_duration == pytest.approx(0.01)
        assert leaf.attrs == {"workers": 4}

    def test_totals(self, tracer):
        for sim in (1.0, 2.0, 3.0):
            s = tracer.start("superstep", sim=0.0)
            tracer.end(s, sim=sim)
        assert tracer.total_sim("superstep") == pytest.approx(6.0)
        assert tracer.total_sim("absent") == 0.0
        assert len(tracer.named("superstep")) == 3


class TestExports:
    def build(self, tracer, clock):
        job = tracer.start("job", sim=0.0, category="engine")
        step = tracer.start("superstep", sim=0.0, superstep=0)
        clock.advance(0.25)
        tracer.end(step, sim=2.0)
        tracer.end(job, sim=2.0)

    def test_json_export(self, tracer, clock, tmp_path):
        self.build(tracer, clock)
        p = tmp_path / "spans.json"
        tracer.write_json(p)
        data = json.loads(p.read_text())
        assert data["version"] == 2
        assert data["counters"] == []
        assert data == tracer.to_dict()
        names = [s["name"] for s in data["spans"]]
        assert names == ["job", "superstep"]
        step = data["spans"][1]
        assert step["parent"] == 0
        assert step["depth"] == 1
        assert step["sim_duration"] == pytest.approx(2.0)
        assert step["host_duration"] == pytest.approx(0.25)
        assert step["attrs"] == {"superstep": 0}

    def test_chrome_trace_export(self, tracer, clock, tmp_path):
        self.build(tracer, clock)
        p = tmp_path / "chrome.json"
        tracer.write_chrome_trace(p)
        data = json.loads(p.read_text())
        assert data == tracer.to_chrome_trace()
        events = data["traceEvents"]
        assert len(events) == 2
        for ev in events:
            assert ev["ph"] == "X"
            assert set(ev) >= {"name", "cat", "ts", "dur", "pid", "tid", "args"}
        step = events[1]
        assert step["dur"] == pytest.approx(0.25e6)  # microseconds
        assert step["args"]["sim_duration"] == pytest.approx(2.0)
        assert step["args"]["superstep"] == 0

    def test_counter_samples(self, tracer, clock):
        self.build(tracer, clock)
        tracer.counter("messages-in-flight", sim=1.0, buffered=42)
        clock.advance(0.1)
        tracer.counter("worker-memory-mb", sim=2.0, w0=10.5, w1=12.0)
        data = tracer.to_dict()
        assert [c["name"] for c in data["counters"]] == [
            "messages-in-flight", "worker-memory-mb",
        ]
        assert data["counters"][0]["values"] == {"buffered": 42.0}
        assert data["counters"][1]["sim"] == pytest.approx(2.0)

    def test_counter_chrome_events(self, tracer, clock):
        self.build(tracer, clock)
        tracer.counter("messages-in-flight", sim=1.0, buffered=7)
        events = tracer.to_chrome_trace()["traceEvents"]
        counters = [e for e in events if e["ph"] == "C"]
        assert len(counters) == 1
        assert counters[0]["name"] == "messages-in-flight"
        assert counters[0]["args"] == {"buffered": 7.0}
        # "X" span events are unchanged alongside the counter track
        assert sum(e["ph"] == "X" for e in events) == 2
