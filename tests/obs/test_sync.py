"""Cross-process metric marshalling and instrument thread-safety."""

import threading

from repro.obs import (
    MetricsRegistry,
    apply_snapshot,
    delta_snapshot,
    snapshot_registry,
    to_json_dict,
)


def registries_equal(a: MetricsRegistry, b: MetricsRegistry) -> bool:
    return to_json_dict(a) == to_json_dict(b)


class TestSnapshotRoundtrip:
    def make_registry(self) -> MetricsRegistry:
        reg = MetricsRegistry()
        reg.counter("c_total", help="c").inc(5)
        reg.counter("lc_total", help="lc", worker="0").inc(2)
        reg.counter("lc_total", help="lc", worker="1").inc(7)
        reg.gauge("g", help="g").set(3.5)
        h = reg.histogram("h_seconds", help="h", buckets=(0.1, 1.0, 10.0))
        h.observe(0.05)
        h.observe(5.0)
        return reg

    def test_full_snapshot_replays_into_empty_registry(self):
        src = self.make_registry()
        snap = snapshot_registry(src)
        dst = MetricsRegistry()
        apply_snapshot(dst, snap)
        assert registries_equal(src, dst)

    def test_delta_only_carries_changes(self):
        reg = self.make_registry()
        before = snapshot_registry(reg)
        reg.counter("c_total", help="c").inc(3)
        reg.histogram(
            "h_seconds", help="h", buckets=(0.1, 1.0, 10.0)
        ).observe(0.5)
        delta = delta_snapshot(snapshot_registry(reg), before)
        names = {key[0] for key in delta}
        assert names == {"c_total", "h_seconds"}
        [(key, value)] = [kv for kv in delta.items() if kv[0][0] == "c_total"]
        assert value == 3

    def test_incremental_deltas_reassemble_exactly(self):
        """prev + sum(deltas) == final — the process-engine invariant."""
        src = self.make_registry()
        mirror = MetricsRegistry()
        apply_snapshot(mirror, snapshot_registry(src))
        prev = snapshot_registry(src)
        for step in range(3):
            src.counter("c_total", help="c").inc(step)
            src.gauge("g", help="g").set(step - 0.5)
            src.counter("lc_total", help="lc", worker="1").inc()
            src.histogram(
                "h_seconds", help="h", buckets=(0.1, 1.0, 10.0)
            ).observe(step)
            cur = snapshot_registry(src)
            apply_snapshot(mirror, delta_snapshot(cur, prev))
            prev = cur
        assert registries_equal(src, mirror)

    def test_empty_delta_when_nothing_changed(self):
        reg = self.make_registry()
        snap = snapshot_registry(reg)
        assert delta_snapshot(snap, snap) == {}

    def test_snapshot_is_picklable(self):
        import pickle

        snap = snapshot_registry(self.make_registry())
        assert pickle.loads(pickle.dumps(snap)) == snap


class TestThreadSafety:
    """The ThreadedBSPEngine contract: instrument mutation (and lazy
    creation through the registry) is safe from pooled worker threads."""

    THREADS = 8
    ITERS = 2000

    def hammer(self, fn):
        barrier = threading.Barrier(self.THREADS)

        def work():
            barrier.wait()
            for i in range(self.ITERS):
                fn(i)

        threads = [
            threading.Thread(target=work) for _ in range(self.THREADS)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

    def test_counter_inc_is_atomic(self):
        reg = MetricsRegistry()
        c = reg.counter("t_total", help="t")
        self.hammer(lambda i: c.inc())
        assert c.value == self.THREADS * self.ITERS

    def test_histogram_observe_is_atomic(self):
        reg = MetricsRegistry()
        h = reg.histogram("t_seconds", help="t", buckets=(10.0,))
        self.hammer(lambda i: h.observe(1.0))
        assert h.count == self.THREADS * self.ITERS
        assert h.sum == float(self.THREADS * self.ITERS)
        assert h.counts[0] == self.THREADS * self.ITERS

    def test_concurrent_lazy_creation_yields_one_instrument(self):
        reg = MetricsRegistry()
        self.hammer(
            lambda i: reg.counter("lazy_total", help="t", k=str(i % 4)).inc()
        )
        collected = {
            name: insts for name, _, _, insts in reg.collect()
        }
        assert len(collected["lazy_total"]) == 4
        assert sum(i.value for i in collected["lazy_total"]) == (
            self.THREADS * self.ITERS
        )
