"""Flight recorder ring semantics: bounded drop-oldest capture, cursor
monotonicity across wraps, child-event merging, and the NDJSON sink."""

import json
import threading

import pytest

from repro.algorithms import PageRankProgram
from repro.analysis import RunConfig, run_pagerank
from repro.bsp import JobSpec, run_job
from repro.obs import FlightEvent, FlightRecorder, read_event_log
from repro.obs.flight import COORDINATOR


class TestRingSemantics:
    def test_records_in_order_with_monotonic_seq(self):
        rec = FlightRecorder(capacity=16)
        for i in range(5):
            rec.record("tick", superstep=i)
        events = rec.snapshot()
        assert [e.seq for e in events] == [0, 1, 2, 3, 4]
        assert [e.superstep for e in events] == [0, 1, 2, 3, 4]
        assert all(e.worker == COORDINATOR for e in events)
        assert rec.dropped == 0
        assert rec.last_seq == 4

    def test_overflow_drops_oldest_keeps_order(self):
        rec = FlightRecorder(capacity=4)
        for i in range(10):
            rec.record("tick", i=i)
        events = rec.snapshot()
        # the ring holds exactly the newest `capacity` events, in order
        assert [e.seq for e in events] == [6, 7, 8, 9]
        assert [e.attrs["i"] for e in events] == [6, 7, 8, 9]
        assert rec.dropped == 6
        assert len(rec) == 4

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            FlightRecorder(capacity=0)

    def test_host_clock_is_monotonic(self):
        rec = FlightRecorder()
        hosts = [rec.record("t").host for _ in range(20)]
        assert hosts == sorted(hosts)


class TestCursorTailing:
    def test_events_since_from_beginning(self):
        rec = FlightRecorder(capacity=8)
        for i in range(3):
            rec.record("tick", i=i)
        events, cursor = rec.events_since(-1)
        assert [e.seq for e in events] == [0, 1, 2]
        assert cursor == 2

    def test_cursor_returns_only_fresh_events(self):
        rec = FlightRecorder(capacity=8)
        rec.record("a")
        _, cursor = rec.events_since(-1)
        rec.record("b")
        rec.record("c")
        events, cursor = rec.events_since(cursor)
        assert [e.kind for e in events] == ["b", "c"]
        # nothing new: cursor is returned unchanged
        again, cursor2 = rec.events_since(cursor)
        assert again == [] and cursor2 == cursor

    def test_cursor_monotonic_across_wrap(self):
        rec = FlightRecorder(capacity=4)
        for i in range(4):
            rec.record("tick", i=i)
        _, cursor = rec.events_since(-1)
        assert cursor == 3
        # wrap the ring several times over; the reader's next poll sees a
        # seq gap (evicted events) but never a regression or reorder
        for i in range(4, 14):
            rec.record("tick", i=i)
        events, cursor2 = rec.events_since(cursor)
        seqs = [e.seq for e in events]
        assert seqs == sorted(seqs)
        assert all(s > cursor for s in seqs)
        assert seqs == [10, 11, 12, 13]  # older survivors were evicted
        assert cursor2 == 13
        assert rec.dropped == 10

    def test_concurrent_record_and_tail(self):
        rec = FlightRecorder(capacity=64)
        stop = threading.Event()
        seen = []

        def tail():
            cursor = -1
            while not stop.is_set():
                fresh, cursor = rec.events_since(cursor)
                seen.extend(e.seq for e in fresh)
            fresh, _ = rec.events_since(cursor)
            seen.extend(e.seq for e in fresh)

        t = threading.Thread(target=tail)
        t.start()
        for i in range(500):
            rec.record("tick", i=i)
        stop.set()
        t.join()
        # tailing never yields duplicates or out-of-order seqs
        assert seen == sorted(set(seen))


class TestGapMarkers:
    def test_wrap_between_polls_reports_explicit_gap(self):
        rec = FlightRecorder(capacity=4)
        for i in range(3):
            rec.record("tick", i=i)
        _, cursor = rec.events_since(-1)
        for i in range(3, 10):  # wrap: seqs 3..5 evicted before the poll
            rec.record("tick", i=i)
        events, cursor2 = rec.events_since(cursor, mark_gaps=True)
        assert events[0].kind == "gap"
        assert events[0].attrs["missed"] == 3
        # the marker borrows the following event's seq - 1, so the
        # reader's cursor protocol stays monotonic
        assert events[0].seq == events[1].seq - 1
        assert [e.kind for e in events[1:]] == ["tick"] * 4
        assert cursor2 == 9
        # the marker is synthetic: the ring itself is unchanged
        assert all(e.kind == "tick" for e in rec.snapshot())

    def test_fresh_reader_sees_no_gap(self):
        rec = FlightRecorder(capacity=4)
        for i in range(10):
            rec.record("tick", i=i)
        events, _ = rec.events_since(-1, mark_gaps=True)
        assert all(e.kind == "tick" for e in events)

    def test_contiguous_poll_sees_no_gap(self):
        rec = FlightRecorder(capacity=8)
        rec.record("a")
        _, cursor = rec.events_since(-1)
        rec.record("b")
        events, _ = rec.events_since(cursor, mark_gaps=True)
        assert [e.kind for e in events] == ["b"]

    def test_dropped_counter_mirrors_evictions(self):
        from repro.obs import MetricsRegistry

        reg = MetricsRegistry()
        rec = FlightRecorder(capacity=4)
        rec.bind_dropped_counter(
            reg.counter("repro_flight_dropped_total", help="evictions")
        )
        for i in range(10):
            rec.record("tick", i=i)
        assert rec.dropped == 6
        assert reg.counter("repro_flight_dropped_total").value == 6


class TestMergeRemote:
    def test_merge_preserves_child_order_and_restamps(self):
        rec = FlightRecorder(capacity=32)
        rec.record("coordinator-side")
        child = [
            {"seq": 0, "kind": "worker-compute", "superstep": 0,
             "host": 0.5, "attrs": {"msgs": 3}},
            {"seq": 1, "kind": "heartbeat-send", "host": 0.6, "attrs": {}},
        ]
        n = rec.merge_remote(2, child)
        assert n == 2
        merged = [e for e in rec.snapshot() if e.worker == 2]
        assert [e.kind for e in merged] == ["worker-compute", "heartbeat-send"]
        # fresh coordinator seqs, child's own stamps preserved as attrs
        assert [e.seq for e in merged] == [1, 2]
        assert merged[0].attrs["worker_seq"] == 0
        assert merged[0].attrs["worker_host"] == 0.5
        assert merged[0].attrs["msgs"] == 3
        assert merged[0].superstep == 0

    def test_interleaved_merges_keep_per_worker_order(self):
        rec = FlightRecorder(capacity=64)
        for batch in range(3):
            for w in (0, 1):
                rec.merge_remote(w, [
                    {"seq": batch, "kind": f"b{batch}", "attrs": {}}
                ])
        by_worker = rec.by_worker()
        for w in (0, 1):
            assert [e.kind for e in by_worker[w]] == ["b0", "b1", "b2"]
            assert [e.attrs["worker_seq"] for e in by_worker[w]] == [0, 1, 2]


class TestSerialization:
    def test_roundtrip(self):
        rec = FlightRecorder(capacity=8)
        for i in range(12):
            rec.record("tick", superstep=i, i=i)
        data = rec.to_dict()
        back = FlightRecorder.from_dict(json.loads(json.dumps(data)))
        assert [e.to_dict() for e in back.snapshot()] == [
            e.to_dict() for e in rec.snapshot()
        ]
        assert back.dropped == rec.dropped
        assert back.last_seq == rec.last_seq

    def test_from_dict_rejects_unknown_version(self):
        with pytest.raises(ValueError, match="version"):
            FlightRecorder.from_dict({"version": 99, "events": []})

    def test_event_roundtrip_defaults(self):
        e = FlightEvent.from_dict({"seq": 3, "kind": "x"})
        assert e.superstep == -1 and e.worker == COORDINATOR
        assert FlightEvent.from_dict(e.to_dict()) == e


class TestNDJSONSink:
    def test_sink_captures_beyond_ring_capacity(self, tmp_path):
        path = tmp_path / "events.ndjson"
        rec = FlightRecorder(capacity=4)
        rec.record("early")  # pre-attach events are written out on attach
        rec.attach_sink(path)
        for i in range(10):
            rec.record("tick", i=i)
        rec.close()
        events = read_event_log(path)
        # the log is unbounded: evicted events survive on disk
        assert len(events) == 11
        assert [e.kind for e in events] == ["early"] + ["tick"] * 10
        assert [e.seq for e in events] == list(range(11))

    def test_double_attach_rejected(self, tmp_path):
        rec = FlightRecorder()
        rec.attach_sink(tmp_path / "a.ndjson")
        with pytest.raises(RuntimeError):
            rec.attach_sink(tmp_path / "b.ndjson")
        rec.close()

    def test_close_idempotent_ring_still_usable(self, tmp_path):
        rec = FlightRecorder()
        rec.attach_sink(tmp_path / "x.ndjson")
        rec.record("a")
        rec.close()
        rec.close()
        rec.record("b")  # ring keeps working without the sink
        assert [e.kind for e in rec.snapshot()] == ["a", "b"]

    def test_read_event_log_rejects_garbage(self, tmp_path):
        bad = tmp_path / "bad.ndjson"
        bad.write_text("not json\n")
        with pytest.raises(ValueError, match="NDJSON"):
            read_event_log(bad)
        nokind = tmp_path / "nokind.ndjson"
        nokind.write_text('{"seq": 0}\n')
        with pytest.raises(ValueError, match="kind"):
            read_event_log(nokind)


class TestEngineIntegration:
    def test_sim_engine_records_superstep_vocabulary(self, small_world):
        flight = FlightRecorder()
        res = run_job(JobSpec(
            program=PageRankProgram(5), graph=small_world, num_workers=3,
            flight=flight,
        ))
        kinds = {e.kind for e in flight.snapshot()}
        assert {"job-start", "superstep-open", "barrier-enter",
                "message-batch", "memory-sample", "barrier-exit",
                "job-end"} <= kinds
        opens = [e for e in flight.snapshot() if e.kind == "superstep-open"]
        assert len(opens) == res.supersteps
        assert [e.superstep for e in opens] == list(range(res.supersteps))

    def test_checkpoint_events_recorded(self, small_world):
        flight = FlightRecorder()
        run_job(JobSpec(
            program=PageRankProgram(6), graph=small_world, num_workers=3,
            checkpoint_interval=2, flight=flight,
        ))
        cps = [e for e in flight.snapshot() if e.kind == "checkpoint"]
        assert cps and all("resume_point" in e.attrs for e in cps)

    def test_tracer_echoes_spans_into_flight(self, small_world):
        from repro.obs import SpanTracer

        flight, tracer = FlightRecorder(), SpanTracer()
        cfg = RunConfig(num_workers=3, flight=flight, tracer=tracer)
        run_pagerank(small_world, cfg, iterations=4)
        opens = [e for e in flight.snapshot() if e.kind == "span-open"]
        closes = [e for e in flight.snapshot() if e.kind == "span-close"]
        # every start()/end() pair echoes; record()-style leaf spans don't
        assert opens and len(opens) == len(closes)
        assert {e.attrs["name"] for e in opens} >= {"job", "superstep",
                                                    "compute", "flush"}

    def test_unobserved_run_identical(self, small_world):
        base = run_job(JobSpec(
            program=PageRankProgram(5), graph=small_world, num_workers=3,
        ))
        flight = FlightRecorder()
        obs = run_job(JobSpec(
            program=PageRankProgram(5), graph=small_world, num_workers=3,
            flight=flight,
        ))
        assert base.values == obs.values
        assert base.total_time == obs.total_time
