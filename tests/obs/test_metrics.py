"""Metrics registry semantics and exporter formats."""

import json
import re

import pytest

from repro.obs import (
    MetricsRegistry,
    to_json_dict,
    to_prometheus_text,
    write_metrics_json,
    write_prometheus,
)

# One Prometheus text-format line: comment or `name{labels} value`.
_COMMENT = re.compile(r"^# (HELP|TYPE) [a-zA-Z_:][a-zA-Z0-9_:]* .+$")
_SAMPLE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*"
    r'(\{[a-zA-Z_][a-zA-Z0-9_]*="[^"]*"(,[a-zA-Z_][a-zA-Z0-9_]*="[^"]*")*\})?'
    r" [-+]?[0-9.eE+-]+$"
)


def assert_valid_prometheus(text: str) -> None:
    for line in text.strip().splitlines():
        assert _COMMENT.match(line) or _SAMPLE.match(line), f"bad line: {line!r}"


class TestRegistrySemantics:
    def test_get_or_create_identity(self):
        r = MetricsRegistry()
        a = r.counter("x_total", help="x", kind="a")
        assert r.counter("x_total", kind="a") is a
        assert r.counter("x_total", kind="b") is not a
        assert len(r) == 2

    def test_kind_conflict_raises(self):
        r = MetricsRegistry()
        r.counter("x_total")
        with pytest.raises(ValueError, match="already registered"):
            r.gauge("x_total")
        with pytest.raises(ValueError, match="already registered"):
            r.histogram("x_total")

    def test_histogram_bucket_conflict_raises(self):
        r = MetricsRegistry()
        r.histogram("h", buckets=(1.0, 2.0))
        with pytest.raises(ValueError, match="bucket"):
            r.histogram("h", buckets=(1.0, 3.0), worker="1")

    def test_counter_monotonic(self):
        r = MetricsRegistry()
        c = r.counter("c_total")
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_gauge_set_inc_dec(self):
        g = MetricsRegistry().gauge("g")
        g.set(10)
        g.inc(5)
        g.dec(2)
        assert g.value == 13.0

    def test_invalid_names_rejected(self):
        r = MetricsRegistry()
        with pytest.raises(ValueError, match="metric name"):
            r.counter("bad name")
        with pytest.raises(ValueError, match="label name"):
            r.counter("ok_total", **{"bad-label": "v"})

    def test_histogram_boundaries(self):
        r = MetricsRegistry()
        h = r.histogram("h_seconds", buckets=(0.1, 1.0, 10.0))
        for v in (0.05, 0.1, 0.5, 10.0, 11.0):
            h.observe(v)
        # le semantics: a value equal to a boundary lands in that bucket
        assert h.counts == [2, 1, 1, 1]
        assert h.cumulative_counts() == [2, 3, 4, 5]
        assert h.count == 5
        assert h.sum == pytest.approx(21.65)

    def test_histogram_rejects_bad_buckets(self):
        r = MetricsRegistry()
        with pytest.raises(ValueError):
            r.histogram("h", buckets=())
        with pytest.raises(ValueError):
            r.histogram("h2", buckets=(2.0, 1.0))

    def test_lookup_without_create(self):
        r = MetricsRegistry()
        assert r.get("nope") is None
        r.counter("yes_total", kind="x").inc()
        assert r.get("yes_total", kind="x").value == 1.0


class TestPrometheusExport:
    def make_registry(self):
        r = MetricsRegistry()
        r.counter("msgs_total", help="messages", kind="remote").inc(42)
        r.counter("msgs_total", kind="local").inc(7)
        r.gauge("fleet", help="workers").set(8)
        h = r.histogram("step_seconds", help="durations", buckets=(0.5, 5.0))
        h.observe(0.1)
        h.observe(1.0)
        h.observe(50.0)
        return r

    def test_syntax_valid(self):
        assert_valid_prometheus(to_prometheus_text(self.make_registry()))

    def test_counter_and_gauge_lines(self):
        text = to_prometheus_text(self.make_registry())
        assert "# TYPE msgs_total counter" in text
        assert 'msgs_total{kind="remote"} 42' in text
        assert 'msgs_total{kind="local"} 7' in text
        assert "# TYPE fleet gauge" in text
        assert "fleet 8" in text

    def test_histogram_expansion(self):
        text = to_prometheus_text(self.make_registry())
        assert 'step_seconds_bucket{le="0.5"} 1' in text
        assert 'step_seconds_bucket{le="5.0"} 2' in text
        assert 'step_seconds_bucket{le="+Inf"} 3' in text
        assert "step_seconds_sum 51.1" in text
        assert "step_seconds_count 3" in text

    def test_label_escaping(self):
        r = MetricsRegistry()
        r.counter("c_total", path='a"b\\c\nd').inc()
        text = to_prometheus_text(r)
        assert r'\"' in text and r"\\" in text and r"\n" in text

    def test_empty_registry(self):
        assert to_prometheus_text(MetricsRegistry()) == ""

    def test_write_file(self, tmp_path):
        p = tmp_path / "m.prom"
        write_prometheus(self.make_registry(), p)
        assert_valid_prometheus(p.read_text())


class TestJsonExport:
    def test_round_trip_values(self, tmp_path):
        r = MetricsRegistry()
        r.counter("c_total", kind="x").inc(3)
        h = r.histogram("h_seconds", buckets=(1.0,))
        h.observe(0.5)
        p = tmp_path / "m.json"
        write_metrics_json(r, p)
        data = json.loads(p.read_text())
        assert data == to_json_dict(r)
        by_name = {f["name"]: f for f in data["metrics"]}
        assert by_name["c_total"]["series"][0]["value"] == 3.0
        assert by_name["c_total"]["series"][0]["labels"] == {"kind": "x"}
        assert by_name["h_seconds"]["series"][0]["counts"] == [1, 0]
        assert by_name["h_seconds"]["kind"] == "histogram"


class TestHistogramQuantile:
    def make(self, values, buckets=(1.0, 2.0, 4.0, 8.0)):
        h = MetricsRegistry().histogram("q_seconds", buckets=buckets)
        for v in values:
            h.observe(v)
        return h

    def test_empty_is_nan(self):
        import math

        assert math.isnan(self.make([]).quantile(0.5))

    def test_interpolates_within_bucket(self):
        # 10 observations spread evenly through the (2, 4] bucket: the
        # median interpolates to the bucket midpoint, Prometheus-style.
        h = self.make([3.0] * 10)
        assert h.quantile(0.5) == pytest.approx(3.0)
        assert h.quantile(1.0) == pytest.approx(4.0)

    def test_lowest_bucket_spans_from_zero(self):
        h = self.make([0.5] * 4)
        assert h.quantile(1.0) == pytest.approx(1.0)
        assert h.quantile(0.5) == pytest.approx(0.5)

    def test_overflow_clamps_to_highest_bound(self):
        h = self.make([100.0] * 3)
        assert h.quantile(0.99) == pytest.approx(8.0)

    def test_spread_sample(self):
        h = self.make([0.5, 1.5, 2.5, 3.5, 5.0, 7.0])
        assert h.quantile(0.0) == pytest.approx(0.0)
        # p50 rank=3 -> third observation, in the (2, 4] bucket
        assert 2.0 < h.quantile(0.5) <= 4.0
        assert h.quantile(0.9) <= 8.0

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            self.make([1.0]).quantile(1.5)
