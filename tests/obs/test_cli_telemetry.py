"""CLI surface of the telemetry plane: crash-time artifact flushing,
`repro postmortem`, NDJSON-aware `repro trace summarize`, and
`repro run --live-port`."""

import json
import urllib.request

import pytest

from repro.algorithms.pagerank import PageRankProgram
from repro.cli import main as cli_main
from repro.graph import io as graph_io


@pytest.fixture
def graph_file(small_world, tmp_path):
    p = tmp_path / "g.txt"
    graph_io.write_edge_list(small_world, p)
    return str(p)


@pytest.fixture
def exploding_pagerank(monkeypatch):
    """Make PageRankProgram blow up at superstep 2 for CLI crash tests."""
    original = PageRankProgram.compute

    def compute(self, ctx, state, messages):
        if ctx.superstep == 2:
            raise ValueError("injected mid-run failure")
        return original(self, ctx, state, messages)

    monkeypatch.setattr(PageRankProgram, "compute", compute)


class TestCrashFlush:
    def test_failure_still_flushes_every_artifact(
        self, graph_file, tmp_path, capsys, exploding_pagerank
    ):
        m = tmp_path / "m.json"
        s = tmp_path / "s.json"
        t = tmp_path / "t.json"
        e = tmp_path / "e.ndjson"
        pm = tmp_path / "crash"
        rc = cli_main([
            "run", "--graph", graph_file, "--workers", "3",
            "--iterations", "6",
            "--metrics-out", str(m), "--spans-out", str(s),
            "--timeline-out", str(t), "--events-out", str(e),
            "--postmortem-out", str(pm),
        ])
        err = capsys.readouterr().err
        assert rc == 1
        assert "ValueError" in err
        # every sink flushed despite the mid-run exception
        assert json.loads(m.read_text())
        assert json.loads(s.read_text())
        timeline = json.loads(t.read_text())
        assert timeline["rows"], "partial timeline must be preserved"
        events = [
            json.loads(ln) for ln in e.read_text().splitlines() if ln
        ]
        assert events[-1]["kind"] == "abort"
        # and the crash bundle is announced on stderr
        bundle_path = tmp_path / "crash.postmortem"
        assert bundle_path.exists()
        assert str(bundle_path) in err

    def test_success_leaves_no_bundle(self, graph_file, tmp_path, capsys):
        pm = tmp_path / "fine"
        rc = cli_main([
            "run", "--graph", graph_file, "--workers", "2",
            "--iterations", "4", "--postmortem-out", str(pm),
        ])
        assert rc == 0
        assert not (tmp_path / "fine.postmortem").exists()


class TestPostmortemCommand:
    def test_renders_incident_report(
        self, graph_file, tmp_path, capsys, exploding_pagerank
    ):
        pm = tmp_path / "crash"
        assert cli_main([
            "run", "--graph", graph_file, "--workers", "3",
            "--iterations", "6", "--postmortem-out", str(pm),
        ]) == 1
        capsys.readouterr()
        rc = cli_main(["postmortem", str(tmp_path / "crash.postmortem")])
        out = capsys.readouterr().out
        assert rc == 0
        assert "ValueError" in out
        assert "last committed superstep" in out
        assert "injected mid-run failure" in out

    def test_exits_2_on_garbage(self, tmp_path, capsys):
        bad = tmp_path / "bad.postmortem"
        bad.write_text("not a bundle")
        assert cli_main(["postmortem", str(bad)]) == 2
        assert cli_main(["postmortem", str(tmp_path / "missing")]) == 2


class TestTraceSummarizeNDJSON:
    def test_summarizes_event_log(self, graph_file, tmp_path, capsys):
        e = tmp_path / "ev.ndjson"
        assert cli_main([
            "run", "--graph", graph_file, "--workers", "2",
            "--iterations", "6", "--events-out", str(e),
        ]) == 0
        capsys.readouterr()
        rc = cli_main(["trace", "summarize", str(e)])
        out = capsys.readouterr().out
        assert rc == 0
        assert "event kinds" in out
        assert "superstep-open" in out
        assert "inter-barrier latency" in out

    def test_json_trace_path_still_works(self, graph_file, tmp_path, capsys):
        t = tmp_path / "trace.json"
        assert cli_main([
            "run", "--graph", graph_file, "--workers", "2",
            "--iterations", "6", "--trace-out", str(t),
        ]) == 0
        capsys.readouterr()
        assert cli_main(["trace", "summarize", str(t)]) == 0
        assert "run summary" in capsys.readouterr().out

    def test_exits_2_on_unreadable_log(self, tmp_path, capsys):
        bad = tmp_path / "bad.ndjson"
        bad.write_text('{"kind": "x"}\nnot json\n')
        assert cli_main(["trace", "summarize", str(bad)]) == 2


class TestLivePort:
    def test_run_with_live_port_serves_and_reports(
        self, graph_file, tmp_path, capsys
    ):
        port_file = tmp_path / "port.txt"
        rc = cli_main([
            "run", "--graph", graph_file, "--workers", "2",
            "--iterations", "4", "--live-port", "0",
            "--live-port-file", str(port_file),
        ])
        err = capsys.readouterr().err
        assert rc == 0
        assert "live telemetry at http://127.0.0.1:" in err
        port = int(port_file.read_text().strip())
        assert port > 0
        # the server is torn down with the run
        with pytest.raises(OSError):
            urllib.request.urlopen(
                f"http://127.0.0.1:{port}/healthz", timeout=2
            )
