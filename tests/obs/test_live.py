"""Live telemetry endpoint: /metrics, /healthz and /events answer with
live values while a job is mid-run, on every execution backend."""

import json
import urllib.request

import pytest

from repro.analysis import RunConfig, run_pagerank
from repro.obs import (
    EngineHealth,
    FlightRecorder,
    LiveTelemetryServer,
    MetricsRegistry,
)


def get(url: str):
    try:
        with urllib.request.urlopen(url, timeout=5) as resp:
            return resp.status, resp.read().decode()
    except urllib.error.HTTPError as exc:
        return exc.code, exc.read().decode()


class TestEngineHealth:
    def test_snapshot_idle_then_running(self, small_world):
        health = EngineHealth()
        snap = health.snapshot()
        assert snap["state"] == "idle" and snap["ok"]
        cfg = RunConfig(num_workers=3)
        res = run_pagerank(
            small_world, cfg, iterations=4, observers=[health]
        )
        snap = health.snapshot()
        assert snap["state"] == "done"
        assert snap["superstep"] == res.supersteps - 1
        assert snap["workers"] == 3
        assert snap["workers_alive"] == 3
        assert snap["ok"]
        assert snap["sim_time"] == pytest.approx(res.total_time)

    def test_stale_boundary_reports_unhealthy(self, small_world):
        health = EngineHealth(stale_after=1e-9)
        run_pagerank(
            small_world, RunConfig(num_workers=2), iterations=3,
            observers=[health],
        )
        # state is "done", so staleness no longer matters
        assert health.snapshot()["ok"]
        health._state = "running"
        assert not health.snapshot()["ok"]

    def test_stale_after_validated(self):
        with pytest.raises(ValueError):
            EngineHealth(stale_after=0)
        with pytest.raises(ValueError):
            EngineHealth(max_heartbeat_age=0)


class FakeLivenessEngine:
    """Engine stand-in with a controllable worker_liveness() truth."""

    def __init__(self, liveness):
        self.num_workers = len(liveness)
        self._liveness = liveness

    def worker_liveness(self):
        return self._liveness


class TestHeartbeatAge:
    def _health(self, liveness, **kw):
        health = EngineHealth(**kw)
        health.on_job_start(FakeLivenessEngine(liveness))
        return health

    def test_ages_mirrored_into_gauges(self):
        reg = MetricsRegistry()
        health = self._health(
            [
                {"worker": 0, "alive": True, "heartbeat_age_seconds": 0.1},
                {"worker": 1, "alive": True, "heartbeat_age_seconds": 2.0},
            ],
            metrics=reg,
        )
        snap = health.snapshot()
        assert snap["ok"]  # no threshold set: ages are informational
        g = reg.gauge("repro_heartbeat_age_seconds", worker="1")
        assert g.value == pytest.approx(2.0)
        assert reg.gauge(
            "repro_heartbeat_age_seconds", worker="0"
        ).value == pytest.approx(0.1)

    def test_max_heartbeat_age_degrades_ok(self):
        health = self._health(
            [
                {"worker": 0, "alive": True, "heartbeat_age_seconds": 0.1},
                {"worker": 1, "alive": True, "heartbeat_age_seconds": 2.0},
            ],
            max_heartbeat_age=0.5,
        )
        snap = health.snapshot()
        assert snap["workers_lagging"] == 1
        assert not snap["ok"]
        assert snap["workers_alive"] == 2  # lagging, not dead

    def test_health_guard_vetoes_resize_while_lagging(self):
        from repro.elastic import LiveHealthGuard

        class WantsFive:
            label = "wants-five"

            def decide(self, engine, stats):
                return 5

        liveness = [
            {"worker": 0, "alive": True, "heartbeat_age_seconds": 9.0},
            {"worker": 1, "alive": True, "heartbeat_age_seconds": 0.0},
        ]
        engine = FakeLivenessEngine(liveness)
        health = EngineHealth(max_heartbeat_age=1.0)
        health.on_job_start(engine)
        guard = LiveHealthGuard(inner=WantsFive(), health=health)
        # one worker's heartbeat age is over threshold: resize vetoed
        assert guard.decide(engine, None) == engine.num_workers
        assert guard.vetoes == 1
        # heartbeat recovers: the inner policy's decision passes through
        liveness[0]["heartbeat_age_seconds"] = 0.2
        assert guard.decide(engine, None) == 5


class TestRoutes:
    def test_unwired_routes_answer_503(self):
        with LiveTelemetryServer() as srv:
            code, body = get(f"{srv.url}/metrics")
            assert code == 503
            code, body = get(f"{srv.url}/healthz")
            assert code == 503 and not json.loads(body)["ok"]
            code, body = get(f"{srv.url}/events")
            assert code == 503

    def test_unknown_route_404_index_200(self):
        with LiveTelemetryServer() as srv:
            assert get(f"{srv.url}/nope")[0] == 404
            code, body = get(f"{srv.url}/")
            assert code == 200 and "/metrics" in body

    def test_metrics_prometheus_text(self):
        reg = MetricsRegistry()
        reg.counter("demo_total", help="demo").inc(3)
        with LiveTelemetryServer(metrics=reg) as srv:
            code, body = get(f"{srv.url}/metrics")
        assert code == 200
        assert "demo_total 3" in body

    def test_events_tail_with_cursor(self):
        flight = FlightRecorder()
        flight.record("one")
        with LiveTelemetryServer(flight=flight) as srv:
            code, body = get(f"{srv.url}/events")
            assert code == 200
            data = json.loads(body)
            assert [e["kind"] for e in data["events"]] == ["one"]
            cursor = data["cursor"]
            flight.record("two")
            code, body = get(f"{srv.url}/events?since={cursor}")
            data = json.loads(body)
            assert [e["kind"] for e in data["events"]] == ["two"]
            code, _ = get(f"{srv.url}/events?since=banana")
            assert code == 400

    def test_stop_is_idempotent(self):
        srv = LiveTelemetryServer().start()
        assert srv.running and srv.port > 0
        srv.stop()
        srv.stop()
        assert not srv.running
        with pytest.raises(RuntimeError):
            _ = srv.port


class MidRunScraper:
    """Observer that scrapes the live endpoint from inside the run loop,
    so the responses are guaranteed to describe an in-flight job."""

    def __init__(self, url: str, at_superstep: int = 1) -> None:
        self.url = url
        self.at = at_superstep
        self.scraped: dict[str, object] = {}

    def on_job_start(self, engine) -> None:
        pass

    def on_job_end(self, engine, result) -> None:
        pass

    def on_superstep_end(self, engine, stats) -> None:
        if stats.index != self.at or self.scraped:
            return
        self.scraped["metrics"] = get(f"{self.url}/metrics")
        self.scraped["healthz"] = get(f"{self.url}/healthz")
        self.scraped["events"] = get(f"{self.url}/events")

    def has_pending_work(self) -> bool:
        return False


@pytest.mark.parametrize("engine", ["sim", "threaded", "process"])
class TestMidRunScrape:
    def test_all_engines_serve_live_values(self, small_world, engine):
        metrics = MetricsRegistry()
        flight = FlightRecorder()
        health = EngineHealth()
        with LiveTelemetryServer(metrics=metrics, flight=flight,
                                 health=health) as srv:
            scraper = MidRunScraper(srv.url, at_superstep=1)
            cfg = RunConfig(
                num_workers=2, engine=engine, metrics=metrics, flight=flight,
            )
            res = run_pagerank(
                small_world, cfg, iterations=5,
                observers=[health, scraper],
            )
        assert res.supersteps >= 3
        code, text = scraper.scraped["metrics"]
        assert code == 200
        assert "bsp_supersteps_total" in text
        code, text = scraper.scraped["healthz"]
        assert code == 200
        snap = json.loads(text)
        assert snap["state"] == "running"
        assert snap["superstep"] == 1
        assert snap["workers_alive"] == 2
        if engine == "process":
            # real heartbeat ages from the worker processes
            ages = [
                w["heartbeat_age_seconds"] for w in snap["worker_liveness"]
            ]
            assert len(ages) == 2 and all(a >= 0 for a in ages)
        code, text = scraper.scraped["events"]
        assert code == 200
        kinds = {e["kind"] for e in json.loads(text)["events"]}
        assert "superstep-open" in kinds
