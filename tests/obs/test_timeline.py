"""RunTimeline: recording, serialization, rollback, engine equivalence.

The tentpole contracts: one row per committed (superstep, worker) carrying
only deterministic simulated quantities; byte-identical JSON across the
sim/threaded/process backends on the same seed; and rollback that makes a
failed-and-recovered run's timeline equal an undisturbed run's — including
on the process engine's real kill/respawn path.
"""

import dataclasses
import json

import pytest

from repro.algorithms import PageRankProgram
from repro.bsp import JobSpec, run_job, run_job_process, run_job_threaded
from repro.cloud.costmodel import DEFAULT_PERF_MODEL
from repro.dist import ProcessBSPEngine
from repro.obs import (
    RunTimeline,
    read_timeline,
    timeline_from_dict,
    timeline_to_dict,
)
from repro.obs.timeline import StepMeta, TimelineRow


def make_job(graph, timeline, **kw):
    kw.setdefault("num_workers", 4)
    kw.setdefault("checkpoint_interval", 2)
    return JobSpec(
        program=PageRankProgram(6), graph=graph, timeline=timeline, **kw
    )


class TestRecording:
    def test_one_row_per_step_and_worker(self, small_world):
        tl = RunTimeline()
        res = run_job(make_job(small_world, tl))
        assert len(tl.steps) == res.supersteps
        assert len(tl.rows) == res.supersteps * 4
        assert {r.worker for r in tl.rows} == {0, 1, 2, 3}
        assert tl.num_workers == 4
        assert tl.rolled_back_rows == 0

    def test_totals_match_job_result(self, small_world):
        tl = RunTimeline()
        res = run_job(make_job(small_world, tl))
        assert tl.total_time == pytest.approx(res.total_time)
        assert tl.steps[-1].sim_time_end == pytest.approx(res.total_time)
        assert tl.total_messages == res.trace.total_messages

    def test_no_timeline_is_fine(self, small_world):
        res = run_job(make_job(small_world, None))
        assert res.supersteps > 0

    def test_queue_depth_recorded(self, small_world):
        tl = RunTimeline()
        run_job(make_job(small_world, tl))
        # PageRank floods every edge each round: mid-run rows buffer work.
        assert any(r.queue_depth > 0 for r in tl.rows)
        # The last superstep (past max iterations) buffers nothing.
        assert all(
            r.queue_depth == 0 for r in tl.rows_of_step(tl.steps[-1].superstep)
        )

    def test_matrix_and_per_worker_total(self, small_world):
        tl = RunTimeline()
        run_job(make_job(small_world, tl))
        m = tl.matrix("compute_calls")
        assert m.shape == (len(tl.steps), 4)
        assert m.sum() == sum(r.compute_calls for r in tl.rows)
        per_w = tl.per_worker_total("msgs_out")
        assert per_w.sum() == tl.total_messages


class TestSerialization:
    def test_round_trip(self, small_world, tmp_path):
        tl = RunTimeline()
        run_job(make_job(small_world, tl))
        tl.annotate(2, "note", detail="x")
        p = tmp_path / "tl.json"
        tl.write_json(p)
        back = read_timeline(p)
        assert timeline_to_dict(back) == timeline_to_dict(tl)
        assert back.events == [{"superstep": 2, "kind": "note", "detail": "x"}]

    def test_version_checked(self):
        with pytest.raises(ValueError, match="version"):
            timeline_from_dict({"version": 99, "rows": [], "steps": []})

    def test_rejects_non_timeline_dumps(self):
        with pytest.raises(ValueError, match="trace or spans"):
            timeline_from_dict({"version": 1, "spans": []})


def fake_stats(index, elapsed_by_worker, barrier=0.5):
    """Minimal SuperstepStats stand-in for unit-level recording."""
    workers = [
        TimelineRow(superstep=index, worker=w, compute_time=t)
        for w, t in enumerate(elapsed_by_worker)
    ]
    slowest = max(elapsed_by_worker)
    return dataclasses.make_dataclass(
        "S",
        [
            "index", "num_workers", "active_begin", "active_end", "injected",
            "barrier_time", "restart_time", "elapsed", "sim_time_end",
            "workers",
        ],
    )(
        index, len(workers), 1, 1, 0, barrier, 0.0, slowest + barrier,
        (index + 1) * (slowest + barrier), workers,
    )


class TestRollback:
    def test_rollback_drops_and_counts(self):
        tl = RunTimeline()
        for i in range(5):
            tl.record_superstep(fake_stats(i, [1.0, 2.0]))
        tl.annotate(1, "early")
        tl.annotate(4, "late")
        tl.rollback(3)
        assert [s.superstep for s in tl.steps] == [0, 1, 2]
        assert tl.rolled_back_rows == 4
        assert [e["kind"] for e in tl.events] == ["early"]

    def test_recovered_run_records_like_clean_run(self, small_world):
        # checkpoint_interval=3 checkpoints cover through steps 2 and 5, so
        # a failure at step 4 rolls the already-recorded step 3 back and
        # replays it.
        clean, failed = RunTimeline(), RunTimeline()
        run_job(make_job(small_world, clean, checkpoint_interval=3))
        res = run_job(
            make_job(
                small_world, failed, checkpoint_interval=3,
                failure_schedule={4: 1},
            )
        )
        assert res.recoveries
        assert failed.rolled_back_rows > 0
        d_clean, d_failed = timeline_to_dict(clean), timeline_to_dict(failed)
        # Rows replay identically; only the recovery-charged step's
        # elapsed/cumulative sim times differ.
        assert d_clean["rows"] == d_failed["rows"]
        assert len(d_clean["steps"]) == len(d_failed["steps"])

    def test_failure_on_checkpoint_boundary_keeps_committed_row(
        self, small_world
    ):
        # interval=2 checkpoints at the same boundary the failure fires
        # (step 3's checkpoint covers through step 3): the step is
        # committed, so its rows must survive even though the epoch failed.
        clean, failed = RunTimeline(), RunTimeline()
        run_job(make_job(small_world, clean))
        res = run_job(make_job(small_world, failed, failure_schedule={3: 1}))
        assert res.recoveries and res.recoveries[0].resumed_from == 4
        assert timeline_to_dict(clean)["rows"] == timeline_to_dict(failed)["rows"]

    def test_process_engine_kill_respawn_rows_roll_back(self, small_world):
        clean, killed = RunTimeline(), RunTimeline()
        run_job(make_job(small_world, clean, checkpoint_interval=3))
        engine = ProcessBSPEngine(
            make_job(small_world, killed, checkpoint_interval=3)
        )
        engine.kill_worker_at(4, 1)
        res = engine.run()
        assert res.recoveries and res.recoveries[0].failed_worker == 1
        assert killed.rolled_back_rows > 0
        assert timeline_to_dict(clean)["rows"] == timeline_to_dict(killed)["rows"]
        # The replacement worker reports under the same worker id.
        assert {r.worker for r in killed.rows} == {0, 1, 2, 3}


class TestEngineEquivalence:
    def test_timeline_byte_identical_across_backends(self, small_world):
        model = dataclasses.replace(
            DEFAULT_PERF_MODEL, jitter=0.3, jitter_seed=7
        )
        dumps = {}
        for name, runner in (
            ("sim", run_job),
            ("threaded", run_job_threaded),
            ("process", run_job_process),
        ):
            tl = RunTimeline()
            runner(make_job(small_world, tl, perf_model=model))
            dumps[name] = json.dumps(timeline_to_dict(tl), sort_keys=True)
        assert dumps["sim"] == dumps["threaded"] == dumps["process"]


class TestStepMetaOverhead:
    def test_overhead_isolates_checkpoint_cost(self, small_world):
        tl = RunTimeline()
        run_job(make_job(small_world, tl, checkpoint_interval=2))
        # Checkpointing supersteps carry the write cost as overhead beyond
        # slowest-worker + barrier; non-checkpoint steps carry none.
        assert any(s.overhead_time > 0 for s in tl.steps)
        assert isinstance(tl.steps[0], StepMeta)
