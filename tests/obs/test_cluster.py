"""Cluster telemetry plane: ClockSync estimation edge cases, the JSON
wire encoding of registry snapshots, fleet scraping/merging with host
labels, and the /sync + /cluster HTTP routes."""

import json
import urllib.request

import pytest

from repro.obs import (
    ClockSync,
    ClusterMember,
    ClusterScraper,
    FlightRecorder,
    LiveTelemetryServer,
    MetricsRegistry,
    snapshot_registry,
    snapshot_to_wire,
    wire_to_snapshot,
)


class TickClock:
    """A controllable monotonic clock for exact restamp arithmetic."""

    def __init__(self, t: float = 0.0) -> None:
        self.t = t

    def __call__(self) -> float:
        return self.t


def get(url: str):
    try:
        with urllib.request.urlopen(url, timeout=5) as resp:
            return resp.status, resp.read().decode()
    except urllib.error.HTTPError as exc:
        return exc.code, exc.read().decode()


class TestClockSync:
    def test_unsynced_is_identity(self):
        clock = ClockSync()
        assert not clock.synchronized
        assert clock.offset() == 0.0
        assert clock.to_local(42.5) == 42.5

    def test_zero_rtt_loopback(self):
        # Same host, sub-resolution timestamps: the exchange is
        # instantaneous, the offset exact, the uncertainty zero.
        clock = ClockSync()
        clock.observe_handshake(5.0, 5.0, 5.0, 5.0)
        assert clock.synchronized
        assert clock.offset() == 0.0
        assert clock.uncertainty() == 0.0
        assert clock.to_local(7.25) == 7.25

    def test_zero_rtt_with_offset(self):
        # Remote clock runs 10s ahead; instantaneous exchange recovers
        # the offset exactly.
        clock = ClockSync()
        clock.observe_handshake(1.0, 11.0, 11.0, 1.0)
        assert clock.offset() == pytest.approx(10.0)
        assert clock.uncertainty() == 0.0
        assert clock.to_local(11.0) == pytest.approx(1.0)

    def test_asymmetric_latency_bounded_by_half_rtt(self):
        # True offset +10s; 8ms out, 2ms back.  The estimate is wrong by
        # the asymmetry (3ms) but provably within uncertainty = rtt/2.
        clock = ClockSync()
        clock.observe_handshake(1.0, 11.008, 11.009, 1.011)
        assert clock.rtt() == pytest.approx(0.010)
        assert clock.uncertainty() == pytest.approx(0.005)
        assert abs(clock.offset() - 10.0) <= clock.uncertainty() + 1e-12

    def test_min_rtt_sample_wins(self):
        clock = ClockSync()
        clock.observe_handshake(0.0, 5.001, 5.001, 0.002)  # rtt 2ms
        tight = clock.offset()
        # A later, queue-delayed exchange must not loosen the estimate.
        clock.observe_handshake(10.0, 15.2, 15.2, 10.4)  # rtt 400ms
        assert clock.offset() == tight
        assert clock.rtt() == pytest.approx(0.002)
        assert clock.stats()["handshakes"] == 2.0

    def test_negative_rtt_clamps_to_zero(self):
        # Coarse timers can make (t2 - t1) exceed (t3 - t0) slightly.
        clock = ClockSync()
        clock.observe_handshake(0.0, 0.0005, 0.0015, 0.001)
        assert clock.rtt() == 0.0
        assert clock.uncertainty() == 0.0

    def test_drift_tracked_across_long_run(self):
        # Base handshake at offset 0, then heartbeats show the remote
        # clock gaining 1ms per second.  to_local compensates.
        clock = ClockSync()
        clock.observe_handshake(0.0, 0.0, 0.0, 0.0)
        clock.observe_oneway(0.050, 0.0)  # bias anchor (50ms latency)
        clock.observe_oneway(100.150, 100.0)
        assert clock.drift() == pytest.approx(0.001)
        # A remote stamp at remote=200.2 is local 200.0 (the remote
        # clock gained 0.2s).  The linear correction is first-order, so
        # the residual is O(drift^2 * elapsed) ~ 2e-4, not machine eps.
        assert clock.to_local(200.2) == pytest.approx(200.0, abs=5e-4)
        assert abs(clock.to_local(200.2) - 200.0) < abs(200.2 - 200.0)
        assert clock.stats()["oneway_samples"] == 2.0

    def test_new_handshake_resets_drift_anchor(self):
        clock = ClockSync()
        clock.observe_handshake(0.0, 0.004, 0.004, 0.010)  # rtt 10ms
        clock.observe_oneway(1.5, 1.0)
        clock.observe_oneway(11.6, 11.0)
        assert clock.drift() != 0.0
        # A tighter exchange replaces the base and invalidates the
        # one-way bias anchor accumulated against the old one.
        clock.observe_handshake(20.0, 20.0, 20.0, 20.0)
        assert clock.drift() == 0.0


class TestRestampedMerge:
    """Remote flight events restamped through ClockSync stay monotonic
    in the coordinator's timebase and under the events_since cursor."""

    def _restamp(self, coord, coord_clock, clock, remote_epoch):
        # Same affine construction the TCP engine uses per merge batch.
        anchor_rec = coord.now()
        anchor_local = coord_clock()

        def restamp(worker_host: float) -> float:
            local_t = clock.to_local(remote_epoch + worker_host)
            return anchor_rec - (anchor_local - local_t)

        return restamp

    def test_cross_host_events_monotonic_in_coordinator_time(self):
        coord_clock = TickClock(100.0)
        coord = FlightRecorder(capacity=64, clock=coord_clock)
        remote_clock = TickClock(150.0)  # runs 50s ahead
        remote = FlightRecorder(capacity=64, clock=remote_clock)

        clock = ClockSync()
        clock.observe_handshake(100.2, 150.2, 150.2, 100.2)
        assert clock.offset() == pytest.approx(50.0)

        coord_clock.t = 100.5
        coord.record("superstep-open", superstep=0)
        remote_clock.t = 151.0
        remote.record("worker-compute", superstep=0, worker=2)
        remote_clock.t = 152.0
        remote.record("barrier-enter", superstep=0, worker=2)
        shipped = [e.to_dict() for e in remote.snapshot()]

        coord_clock.t = 103.0
        coord.merge_remote(
            2, shipped,
            restamp=self._restamp(coord, coord_clock, clock, remote.epoch),
        )
        coord_clock.t = 104.0
        coord.record("superstep-commit", superstep=0)

        events, cursor = coord.events_since(-1)
        # seq strictly increasing under the cursor protocol
        seqs = [e.seq for e in events]
        assert seqs == sorted(seqs) and len(set(seqs)) == len(seqs)
        assert cursor == seqs[-1]
        # restamped host stamps land at true coordinator-clock positions:
        # remote 151.0/152.0 are coordinator 101.0/102.0 -> host 1.0/2.0
        by_kind = {e.kind: e.host for e in events}
        assert by_kind["superstep-open"] == pytest.approx(0.5)
        assert by_kind["worker-compute"] == pytest.approx(1.0)
        assert by_kind["barrier-enter"] == pytest.approx(2.0)
        assert by_kind["superstep-commit"] == pytest.approx(4.0)
        # the merged trace is monotonic in one clock despite the +50s skew
        hosts = sorted(events, key=lambda e: e.seq)
        assert [e.host for e in hosts] == sorted(e.host for e in hosts)
        # provenance rides along
        merged = [e for e in events if e.worker == 2]
        assert [e.attrs["worker_host"] for e in merged] == [1.0, 2.0]


class TestWireEncoding:
    def _registry(self):
        reg = MetricsRegistry()
        reg.counter("jobs_total", help="jobs").inc(3)
        reg.gauge("depth", help="queue depth", worker="0").set(2.5)
        reg.histogram(
            "lat_seconds", help="latency", buckets=(0.1, 1.0)
        ).observe(0.05)
        return reg

    def test_roundtrip_through_json(self):
        snap = snapshot_registry(self._registry())
        wire = json.loads(json.dumps(snapshot_to_wire(snap)))
        assert wire_to_snapshot(wire) == snap

    def test_decoded_snapshot_applies_cleanly(self):
        from repro.obs import apply_snapshot, to_prometheus_text

        snap = snapshot_registry(self._registry())
        wire = json.loads(json.dumps(snapshot_to_wire(snap)))
        merged = MetricsRegistry()
        apply_snapshot(merged, wire_to_snapshot(wire))
        text = to_prometheus_text(merged)
        assert "jobs_total 3" in text
        assert 'depth{worker="0"} 2.5' in text


class TestClusterScraper:
    def _wire_body(self, reg, health=None):
        body = {"snapshot": snapshot_to_wire(snapshot_registry(reg))}
        if health is not None:
            body["health"] = health
        return body

    def test_merge_labels_each_member_host(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("sessions_total", help="s").inc(2)
        b.counter("sessions_total", help="s").inc(5)
        bodies = {
            "http://a:1/sync": self._wire_body(a, health={"ok": True}),
            "http://b:2/sync": self._wire_body(b),
        }
        local = MetricsRegistry()
        local.gauge("sim_time", help="t").set(7.0)
        scraper = ClusterScraper(
            [ClusterMember("a", "http://a:1"),
             ClusterMember("b", "http://b:2")],
            local=local,
            fetch=lambda url, timeout: bodies[url],
        )
        merged, summary = scraper.scrape()
        from repro.obs import to_prometheus_text

        text = to_prometheus_text(merged)
        assert 'sessions_total{host="a"} 2' in text
        assert 'sessions_total{host="b"} 5' in text
        assert 'sim_time{host="coordinator"} 7' in text
        assert summary["members"]["a"]["health"] == {"ok": True}
        assert summary["errors"] == {}

    def test_daemon_stamped_host_label_wins(self):
        # A daemon that already labels its instruments with host= keeps
        # its own label; the scraper's relabel must not rewrite origin.
        reg = MetricsRegistry()
        reg.counter("hb_total", help="h", host="10.0.0.7:9001").inc(4)
        scraper = ClusterScraper(
            [ClusterMember("proxy", "http://p:1")],
            fetch=lambda url, timeout: self._wire_body(reg),
        )
        merged, _ = scraper.scrape()
        from repro.obs import to_prometheus_text

        assert 'hb_total{host="10.0.0.7:9001"} 4' in to_prometheus_text(
            merged
        )

    def test_failed_member_degrades_not_dies(self):
        good = MetricsRegistry()
        good.counter("up", help="u").inc()

        def fetch(url, timeout):
            if "bad" in url:
                raise OSError("connection refused")
            return self._wire_body(good)

        scraper = ClusterScraper(
            [ClusterMember("good", "http://good:1"),
             ClusterMember("bad", "http://bad:2")],
            fetch=fetch,
        )
        merged, summary = scraper.scrape()
        assert "good" in summary["members"]
        assert "connection refused" in summary["errors"]["bad"]
        status = scraper.status()
        assert status["instruments"] == 1
        assert "bad" in status["errors"]


class TestHTTPFederation:
    def test_sync_route_serves_lossless_snapshot(self):
        reg = MetricsRegistry()
        reg.counter("demo_total", help="d").inc(9)
        health_stub = type(
            "H", (), {"snapshot": lambda self: {"ok": True, "state": "x"}}
        )()
        with LiveTelemetryServer(metrics=reg, health=health_stub) as srv:
            code, body = get(f"{srv.url}/sync")
        assert code == 200
        data = json.loads(body)
        snap = wire_to_snapshot(data["snapshot"])
        assert snap == snapshot_registry(reg)
        assert data["health"]["ok"] is True

    def test_sync_route_503_without_metrics(self):
        with LiveTelemetryServer() as srv:
            assert get(f"{srv.url}/sync")[0] == 503
            assert get(f"{srv.url}/cluster")[0] == 503

    def test_cluster_route_end_to_end_over_http(self):
        # Two "daemons" (real HTTP servers) + a coordinator federating
        # them: /cluster returns one host-labelled Prometheus document.
        d1, d2 = MetricsRegistry(), MetricsRegistry()
        d1.counter("repro_daemon_sessions_total", help="s").inc(1)
        d2.counter("repro_daemon_sessions_total", help="s").inc(2)
        local = MetricsRegistry()
        local.gauge("bsp_sim_time_seconds", help="t").set(3.5)
        with LiveTelemetryServer(metrics=d1) as s1, \
                LiveTelemetryServer(metrics=d2) as s2:
            scraper = ClusterScraper(
                [ClusterMember("w1", s1.url), ClusterMember("w2", s2.url)],
                local=local,
            )
            with LiveTelemetryServer(metrics=local,
                                     cluster=scraper) as coord:
                code, text = get(f"{coord.url}/cluster")
                assert code == 200
                assert 'repro_daemon_sessions_total{host="w1"} 1' in text
                assert 'repro_daemon_sessions_total{host="w2"} 2' in text
                assert 'bsp_sim_time_seconds{host="coordinator"} 3.5' in text
                code, body = get(f"{coord.url}/cluster?format=json")
                assert code == 200
                data = json.loads(body)
                assert set(data["members"]) == {"coordinator", "w1", "w2"}
                assert data["errors"] == {}
                assert wire_to_snapshot(data["snapshot"])
