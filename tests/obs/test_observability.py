"""Observability threaded through the engine stack, end to end.

The structural claims: spans nest correctly and their simulated durations
sum exactly to the job's total time; the metrics registry agrees with the
trace; nothing about the run changes when no sink is attached.
"""

import io
import json

import numpy as np
import pytest

from repro.algorithms import PageRankProgram
from repro.analysis import RunConfig, run_pagerank, run_traversal
from repro.bsp import JobSpec, ThreadedBSPEngine, run_job
from repro.cli import main as cli_main
from repro.elastic.live import LiveElasticEngine, LivePolicy
from repro.graph import io as graph_io
from repro.obs import MetricsRegistry, RunReporter, SpanTracer, summarize_spans
from repro.scheduling import StaticSizer


def run_instrumented(graph, iterations=8, workers=3):
    tracer = SpanTracer()
    metrics = MetricsRegistry()
    cfg = RunConfig(num_workers=workers, tracer=tracer, metrics=metrics)
    res = run_pagerank(graph, cfg, iterations=iterations)
    return res, tracer, metrics


class TestEngineSpans:
    def test_span_tree_shape(self, small_world):
        res, tracer, _ = run_instrumented(small_world)
        assert tracer.open_spans == 0
        jobs = tracer.named("job")
        steps = tracer.named("superstep")
        assert len(jobs) == 1
        assert len(steps) == res.supersteps
        assert all(s.parent == jobs[0].index for s in steps)
        assert all(s.closed for s in tracer.spans)
        # every superstep carries the inner phase spans
        for phase in ("compute", "flush", "barrier"):
            assert len(tracer.named(phase)) == res.supersteps

    def test_superstep_sim_durations_sum_to_total_time(self, small_world):
        res, tracer, _ = run_instrumented(small_world)
        total = tracer.total_sim("superstep")
        assert total == pytest.approx(res.trace.total_time, abs=1e-6)
        # and each superstep span matches its trace row exactly
        for span, stats in zip(tracer.named("superstep"), res.trace):
            assert span.sim_duration == pytest.approx(stats.elapsed, abs=1e-9)
            assert span.attrs["superstep"] == stats.index

    def test_barrier_spans_match_trace(self, small_world):
        res, tracer, _ = run_instrumented(small_world)
        assert tracer.total_sim("barrier") == pytest.approx(
            res.trace.total_barrier_time, abs=1e-9
        )

    def test_checkpoint_and_recovery_spans(self, small_world):
        tracer = SpanTracer()
        res = run_job(
            JobSpec(
                program=PageRankProgram(12), graph=small_world, num_workers=4,
                checkpoint_interval=4, failure_schedule={6: 2}, tracer=tracer,
            )
        )
        assert len(res.recoveries) == 1
        recoveries = tracer.named("recovery")
        assert len(recoveries) == 1
        assert recoveries[0].attrs["failed_worker"] == 2
        assert recoveries[0].attrs["resumed_from"] == 4
        assert recoveries[0].sim_duration > 0
        assert len(tracer.named("checkpoint")) >= 2
        # checkpoint + recovery overheads live inside their superstep spans,
        # so the sum-to-total invariant must still hold
        assert tracer.total_sim("superstep") == pytest.approx(
            res.trace.total_time, abs=1e-6
        )


class TestEngineMetrics:
    def test_registry_agrees_with_trace(self, small_world):
        res, _, metrics = run_instrumented(small_world)
        trace = res.trace
        assert metrics.get("bsp_supersteps_total").value == res.supersteps
        local = metrics.get("bsp_messages_total", kind="local").value
        remote = metrics.get("bsp_messages_total", kind="remote").value
        assert local + remote == trace.total_messages
        assert metrics.get("bsp_sim_time_seconds").value == pytest.approx(
            trace.total_time
        )
        assert metrics.get("bsp_barrier_sim_seconds_total").value == pytest.approx(
            trace.total_barrier_time
        )
        hist = metrics.get("bsp_superstep_sim_seconds")
        assert hist.count == res.supersteps
        assert hist.sum == pytest.approx(
            sum(s.elapsed for s in trace), abs=1e-6
        )

    def test_per_worker_counters_sum_to_totals(self, small_world):
        res, _, metrics = run_instrumented(small_world, workers=3)
        trace = res.trace
        total_calls = sum(w.compute_calls for s in trace for w in s.workers)
        per_worker = sum(
            metrics.get("bsp_worker_compute_calls_total", worker=str(w)).value
            for w in range(3)
        )
        assert per_worker == total_calls
        assert metrics.get("bsp_compute_calls_total").value == total_calls

    def test_threaded_engine_observes_host_durations(self, small_world):
        metrics = MetricsRegistry()
        job = JobSpec(
            program=PageRankProgram(6), graph=small_world, num_workers=3,
            metrics=metrics,
        )
        res = ThreadedBSPEngine(job, max_threads=2).run()
        assert metrics.get("bsp_compute_pool_threads").value == 2
        hist = metrics.get("bsp_worker_compute_host_seconds")
        assert hist.count == res.supersteps * 3
        plain = run_job(
            JobSpec(program=PageRankProgram(6), graph=small_world, num_workers=3)
        )
        assert np.allclose(res.values_array(), plain.values_array())

    def test_swath_controller_metrics(self, small_world):
        metrics = MetricsRegistry()
        cfg = RunConfig(num_workers=3, metrics=metrics)
        run = run_traversal(
            small_world, cfg, roots=range(12), kind="bc",
            sizer=StaticSizer(4),
        )
        assert metrics.get("swath_initiations_total").value == run.num_swaths
        assert metrics.get("swath_pending_roots").value == 0
        assert metrics.get("swath_size").value == 4
        assert metrics.get("swath_window_peak_memory_bytes").value > 0

    def test_elastic_engine_metrics_and_spans(self, small_world):
        class Alternate(LivePolicy):
            def decide(self, engine, stats):
                return 2 if stats.index % 2 else 4

        tracer = SpanTracer()
        metrics = MetricsRegistry()
        job = JobSpec(
            program=PageRankProgram(8), graph=small_world, num_workers=4,
            tracer=tracer, metrics=metrics,
        )
        res = LiveElasticEngine(job, Alternate()).run()
        resizes = tracer.named("elastic-resize")
        assert len(resizes) >= 2
        assert all(s.sim_duration > 0 for s in resizes)
        assert {s.attrs["from_workers"] for s in resizes} <= {2, 4}
        ups = metrics.get("elastic_scale_events_total", direction="up").value
        downs = metrics.get("elastic_scale_events_total", direction="down").value
        assert ups + downs == len(resizes)
        moved = sum(s.attrs["vertices_moved"] for s in resizes)
        assert metrics.get("elastic_vertices_moved_total").value == moved
        # resize overheads are inside the superstep spans: invariant holds
        assert tracer.total_sim("superstep") == pytest.approx(
            res.trace.total_time, abs=1e-6
        )


class TestNoOpPath:
    def test_results_identical_without_sinks(self, small_world):
        bare = run_pagerank(small_world, RunConfig(num_workers=3), iterations=8)
        res, tracer, metrics = run_instrumented(small_world)
        assert np.allclose(bare.values_array(), res.values_array())
        assert bare.total_time == res.trace.total_time
        assert bare.total_cost == res.total_cost

    def test_engine_holds_no_instruments_by_default(self, small_world):
        job = JobSpec(
            program=PageRankProgram(3), graph=small_world, num_workers=2
        )
        from repro.bsp.engine import BSPEngine

        eng = BSPEngine(job)
        assert eng.tracer is None
        assert eng.metrics is None
        assert eng._em is None
        eng.run()


class TestRunReporter:
    def run_with_reporter(self, graph, **kwargs):
        buf = io.StringIO()
        reporter = RunReporter(stream=buf, **kwargs)
        run_pagerank(
            graph, RunConfig(num_workers=2), iterations=6, observers=[reporter]
        )
        return reporter, buf.getvalue().splitlines()

    def test_unthrottled_prints_every_superstep(self, small_world):
        reporter, lines = self.run_with_reporter(small_world, min_interval=0.0)
        starts = [ln for ln in lines if "job start" in ln]
        steps = [ln for ln in lines if "] step " in ln]
        dones = [ln for ln in lines if "done |" in ln]
        assert len(starts) == 1 and len(dones) == 1
        assert len(steps) == 7  # 6 iterations + drain step
        assert reporter.lines_emitted == len(lines)

    def test_throttled_still_prints_first_step_and_summary(self, small_world):
        reporter, lines = self.run_with_reporter(
            small_world, min_interval=1e9
        )
        steps = [ln for ln in lines if "] step " in ln]
        assert len(steps) == 1 and "step 0" in steps[0]
        assert any("done |" in ln for ln in lines)

    def test_swath_phase_in_lines(self, small_world):
        buf = io.StringIO()
        reporter = RunReporter(stream=buf, min_interval=0.0)
        run_traversal(
            small_world, RunConfig(num_workers=2), roots=range(8), kind="bc",
            sizer=StaticSizer(2), extra_observers=[reporter],
        )
        assert any("swath" in ln for ln in buf.getvalue().splitlines())

    def test_negative_interval_rejected(self):
        with pytest.raises(ValueError):
            RunReporter(min_interval=-1)

    def test_other_processes_cannot_emit(self, small_world):
        buf = io.StringIO()
        reporter = RunReporter(stream=buf, min_interval=0.0)
        # Simulate being inherited by a forked ProcessBSPEngine child.
        reporter._owner_pid = -1
        reporter._emit("should be dropped")
        assert buf.getvalue() == ""
        assert reporter.lines_emitted == 0

    def test_straggler_annotation_on_lines(self):
        import dataclasses

        from repro.cloud.costmodel import DEFAULT_PERF_MODEL
        from repro.graph import generators as gen
        from repro.obs import DiagnosticMonitor

        buf = io.StringIO()
        monitor = DiagnosticMonitor()
        reporter = RunReporter(stream=buf, min_interval=0.0, monitor=monitor)
        graph = gen.watts_strogatz(240, 6, 0.1, seed=3)
        model = dataclasses.replace(
            DEFAULT_PERF_MODEL, jitter=0.6, jitter_seed=11,
            jitter_workers=(1,),
        )
        # The monitor must observe *before* the reporter prints the line.
        run_pagerank(
            graph,
            RunConfig(num_workers=4, perf_model=model),
            iterations=10,
            observers=[monitor, reporter],
        )
        lines = buf.getvalue().splitlines()
        annotated = [ln for ln in lines if "straggler w1" in ln]
        assert annotated
        assert all("(jitter)" in ln for ln in annotated)


class TestCLI:
    @pytest.fixture
    def graph_file(self, small_world, tmp_path):
        p = tmp_path / "g.txt"
        graph_io.write_edge_list(small_world, p)
        return str(p)

    def test_run_writes_all_artifacts(self, graph_file, tmp_path, capsys):
        m = tmp_path / "m.prom"
        s = tmp_path / "s.json"
        c = tmp_path / "c.json"
        t = tmp_path / "t.json"
        rc = cli_main([
            "run", "--graph", graph_file, "--app", "pagerank",
            "--workers", "3", "--iterations", "6",
            "--metrics-out", str(m), "--spans-out", str(s),
            "--chrome-out", str(c), "--trace-out", str(t),
            "--progress", "--check-invariants",
        ])
        assert rc == 0
        out = capsys.readouterr()
        assert "invariants: ok" in out.out
        assert "[repro] done" in out.err  # --progress went to stderr

        prom = m.read_text()
        assert "# TYPE bsp_supersteps_total counter" in prom
        assert "bsp_sim_time_seconds" in prom

        spans = json.loads(s.read_text())
        trace = json.loads(t.read_text())
        total = sum(
            sp["sim_duration"] for sp in spans["spans"]
            if sp["name"] == "superstep"
        )
        sim_end = trace["steps"][-1]["sim_time_end"]
        assert total == pytest.approx(sim_end, abs=1e-6)

        chrome = json.loads(c.read_text())
        assert chrome["traceEvents"]
        assert all(ev["ph"] in ("X", "C") for ev in chrome["traceEvents"])
        counter_names = {
            ev["name"] for ev in chrome["traceEvents"] if ev["ph"] == "C"
        }
        assert counter_names == {"messages-in-flight", "worker-memory-mb"}

    def test_metrics_json_suffix_switches_format(self, graph_file, tmp_path):
        m = tmp_path / "m.json"
        rc = cli_main([
            "run", "--graph", graph_file, "--workers", "2",
            "--iterations", "4", "--metrics-out", str(m),
        ])
        assert rc == 0
        data = json.loads(m.read_text())
        assert {f["name"] for f in data["metrics"]} >= {
            "bsp_supersteps_total", "bsp_sim_time_seconds"
        }

    def test_trace_summarize(self, graph_file, tmp_path, capsys):
        t = tmp_path / "t.json"
        assert cli_main([
            "run", "--graph", graph_file, "--workers", "2",
            "--iterations", "12", "--trace-out", str(t),
        ]) == 0
        capsys.readouterr()
        assert cli_main(["trace", "summarize", str(t), "--max-rows", "6"]) == 0
        out = capsys.readouterr().out
        assert "run summary" in out
        assert "runtime breakdown" in out
        assert "per-superstep digest" in out
        assert "middle supersteps elided" in out

    def test_summarize_spans_table(self, graph_file, tmp_path):
        s = tmp_path / "s.json"
        cli_main([
            "run", "--graph", graph_file, "--workers", "2",
            "--iterations", "4", "--spans-out", str(s),
        ])
        text = summarize_spans(json.loads(s.read_text()))
        assert "phase spans" in text
        assert "superstep" in text and "barrier" in text
