"""Postmortem bundles: captured on abnormal end, self-contained, and
rendered as an incident report that names the suspect."""

import json

import pytest

from repro.algorithms import PageRankProgram
from repro.bsp import JobSpec, run_job
from repro.bsp.api import VertexProgram
from repro.obs import (
    FlightRecorder,
    MetricsRegistry,
    PostmortemWriter,
    RunTimeline,
    build_bundle,
    load_postmortem,
    render_incident_report,
    write_postmortem,
)


class ExplodeAt(VertexProgram):
    """PageRank-ish program that raises at a chosen superstep."""

    def __init__(self, fail_superstep: int = 2) -> None:
        self.fail_superstep = fail_superstep

    def init_state(self, vertex_id, graph):
        return 0.0

    def compute(self, ctx, state, messages):
        if ctx.superstep == self.fail_superstep:
            raise ValueError("boom at superstep %d" % ctx.superstep)
        for dst in ctx.out_neighbors:
            ctx.send(dst, 1.0)
        if ctx.superstep >= 6:
            ctx.vote_to_halt()
        return state + len(messages)


def crash_job(graph, **kw):
    kw.setdefault("flight", FlightRecorder())
    return JobSpec(
        program=ExplodeAt(2), graph=graph, num_workers=3, **kw
    )


class TestBundleCapture:
    def test_engine_dumps_bundle_on_compute_exception(
        self, small_world, tmp_path
    ):
        pm = PostmortemWriter(tmp_path / "crash")
        job = crash_job(
            small_world, postmortem=pm,
            metrics=MetricsRegistry(), timeline=RunTimeline(),
        )
        with pytest.raises(ValueError, match="boom"):
            run_job(job)
        assert pm.written is not None
        assert pm.written.suffix == ".postmortem"
        bundle = load_postmortem(pm.written)
        assert bundle["reason"]["type"] == "ValueError"
        assert "boom" in bundle["reason"]["message"]
        assert "Traceback" in bundle["reason"]["traceback"]
        # progress markers: supersteps 0 and 1 committed, failed at 2
        prog = bundle["progress"]
        assert prog["last_committed_superstep"] == 1
        assert prog["current_superstep"] == 2
        # sections are present and self-contained
        assert bundle["manifest"]["program"] == "ExplodeAt"
        assert bundle["manifest"]["num_workers"] == 3
        assert bundle["flight"]["events"]
        assert bundle["metrics"] is not None
        assert bundle["timeline"] is not None
        # the abort event is the flight ring's last word
        last = bundle["flight"]["events"][-1]
        assert last["kind"] == "abort"
        assert last["attrs"]["error"] == "ValueError"

    def test_writer_is_idempotent_first_failure_wins(
        self, small_world, tmp_path
    ):
        pm = PostmortemWriter(tmp_path / "once")
        with pytest.raises(ValueError):
            run_job(crash_job(small_world, postmortem=pm))
        first = pm.written
        pm.dump(object(), RuntimeError("second"))
        assert pm.written == first
        assert load_postmortem(first)["reason"]["type"] == "ValueError"

    def test_keyboard_interrupt_captured(self, small_world, tmp_path):
        class Interrupt(ExplodeAt):
            def compute(self, ctx, state, messages):
                if ctx.superstep == 1:
                    raise KeyboardInterrupt
                return super().compute(ctx, state, messages)

        pm = PostmortemWriter(tmp_path / "ctrl-c")
        job = JobSpec(
            program=Interrupt(), graph=small_world, num_workers=2,
            flight=FlightRecorder(), postmortem=pm,
        )
        with pytest.raises(KeyboardInterrupt):
            run_job(job)
        assert load_postmortem(pm.written)["reason"]["type"] == (
            "KeyboardInterrupt"
        )

    def test_bundle_without_engine_keeps_reason(self, tmp_path):
        # pre-engine failures (e.g. the RPC011 gate) still get a bundle
        path = write_postmortem(
            tmp_path / "gate", None, RuntimeError("unpicklable")
        )
        bundle = load_postmortem(path)
        assert bundle["reason"]["message"] == "unpicklable"
        assert "error" in bundle["manifest"]  # defensively degraded

    def test_successful_run_writes_nothing(self, small_world, tmp_path):
        pm = PostmortemWriter(tmp_path / "fine")
        run_job(JobSpec(
            program=PageRankProgram(4), graph=small_world, num_workers=2,
            flight=FlightRecorder(), postmortem=pm,
        ))
        assert pm.written is None
        assert not list(tmp_path.iterdir())

    def test_load_rejects_non_bundles(self, tmp_path):
        p = tmp_path / "x.postmortem"
        p.write_text(json.dumps({"hello": 1}))
        with pytest.raises(ValueError, match="reason"):
            load_postmortem(p)
        p.write_text(json.dumps({"reason": {}, "version": 42}))
        with pytest.raises(ValueError, match="version"):
            load_postmortem(p)


class TestIncidentReport:
    def _bundle(self, small_world, tmp_path):
        pm = PostmortemWriter(tmp_path / "crash")
        with pytest.raises(ValueError):
            run_job(crash_job(
                small_world, postmortem=pm, timeline=RunTimeline(),
            ))
        return load_postmortem(pm.written)

    def test_report_names_failure_and_progress(self, small_world, tmp_path):
        report = render_incident_report(self._bundle(small_world, tmp_path))
        assert "ValueError" in report
        assert "last committed superstep" in report
        assert "ExplodeAt" in report
        assert "flight recorder" in report
        assert "traceback" in report.lower()

    def test_report_tails_are_bounded(self, small_world, tmp_path):
        bundle = self._bundle(small_world, tmp_path)
        report = render_incident_report(bundle, last_events=2)
        # at most 2 event lines per source
        coord_events = [
            ln for ln in report.splitlines() if ln.startswith("  #")
        ]
        n_events = len(bundle["flight"]["events"])
        assert len(coord_events) <= 2 * (1 + 3)  # coordinator + workers
        assert n_events > len(coord_events)

    def test_build_bundle_never_raises_on_broken_engine(self):
        class Broken:
            def __getattr__(self, name):
                raise RuntimeError("engine is toast")

        bundle = build_bundle(Broken(), ValueError("original"))
        assert bundle["reason"]["type"] == "ValueError"
        for section in ("manifest", "progress", "flight", "metrics"):
            assert "error" in bundle[section]
