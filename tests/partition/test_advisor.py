"""Partitioning advisor (the paper's §IX future work, implemented)."""

import numpy as np
import pytest

from repro.graph import datasets
from repro.graph import generators as gen
from repro.partition import (
    HashPartitioner,
    MultilevelPartitioner,
    PartitioningAdvisor,
)
from repro.partition.base import Partition


@pytest.fixture(scope="module")
def advisor():
    return PartitioningAdvisor(seed=0)


class TestFrontierConcentration:
    def test_single_part_is_one(self, advisor, small_world):
        p = Partition(1, np.zeros(60, dtype=np.int32))
        # max/mean over one part is identically 1.
        assert advisor.frontier_concentration(small_world, p) == pytest.approx(1.0)

    def test_hash_is_nearly_even(self, advisor):
        g = gen.watts_strogatz(400, 6, 0.2, seed=3)
        p = HashPartitioner().partition(g, 4)
        assert advisor.frontier_concentration(g, p) < 1.6

    def test_community_chain_concentrates_under_mincut(self, advisor):
        g = datasets.load("CP", scale=0.3)
        mincut = MultilevelPartitioner(seed=1, imbalance=1.15).partition(g, 8)
        hashed = HashPartitioner().partition(g, 8)
        cm = advisor.frontier_concentration(g, mincut)
        ch = advisor.frontier_concentration(g, hashed)
        assert cm > 1.6 * ch

    def test_bounded_by_num_parts(self, advisor, small_world):
        p = HashPartitioner().partition(small_world, 4)
        c = advisor.frontier_concentration(small_world, p)
        assert 1.0 <= c <= 4.0


class TestPredictedCost:
    def test_remote_fraction_raises_cost(self, advisor):
        assert advisor.predicted_cost(1.0, 0.9) > advisor.predicted_cost(1.0, 0.1)

    def test_concentration_scales_cost(self, advisor):
        assert advisor.predicted_cost(2.0, 0.5) == pytest.approx(
            2 * advisor.predicted_cost(1.0, 0.5)
        )


class TestAdvice:
    def test_wg_analogue_gets_mincut(self, advisor):
        g = datasets.load("WG", scale=0.3)
        advice = advisor.advise(g, 8)
        assert advice.recommendation == "min-cut"
        assert advice.predicted_ratio < 0.85

    def test_cp_analogue_gets_hash(self, advisor):
        g = datasets.load("CP", scale=0.3)
        advice = advisor.advise(g, 8)
        assert advice.recommendation == "hash"

    def test_advice_matches_measured_fig8_ordering(self, advisor):
        """Predicted ratio ordering matches the measured Fig. 8 ordering."""
        wg = advisor.advise(datasets.load("WG", scale=0.3), 8)
        cp = advisor.advise(datasets.load("CP", scale=0.3), 8)
        assert wg.predicted_ratio < cp.predicted_ratio

    def test_summary_renders(self, advisor, small_world):
        advice = advisor.advise(small_world, 4)
        s = advice.summary()
        assert "recommend" in s and "%" in s

    def test_validation(self):
        with pytest.raises(ValueError):
            PartitioningAdvisor(remote_factor=0)
        with pytest.raises(ValueError):
            PartitioningAdvisor(num_probes=0)
        with pytest.raises(ValueError):
            PartitioningAdvisor(threshold=0.0)

    def test_advise_needs_multiple_parts(self, advisor, small_world):
        with pytest.raises(ValueError):
            advisor.advise(small_world, 1)

    def test_deterministic(self, small_world):
        a = PartitioningAdvisor(seed=5).advise(small_world, 4)
        b = PartitioningAdvisor(seed=5).advise(small_world, 4)
        assert a == b
