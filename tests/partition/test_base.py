"""Partition assignment object invariants."""

import numpy as np
import pytest

from repro.partition.base import Partition


class TestValidation:
    def test_valid_partition(self):
        p = Partition(2, np.array([0, 1, 0, 1]))
        assert p.num_vertices == 4

    def test_zero_parts_rejected(self):
        with pytest.raises(ValueError):
            Partition(0, np.array([0]))

    def test_out_of_range_assignment_rejected(self):
        with pytest.raises(ValueError):
            Partition(2, np.array([0, 2]))

    def test_negative_assignment_rejected(self):
        with pytest.raises(ValueError):
            Partition(2, np.array([-1, 0]))

    def test_2d_assignment_rejected(self):
        with pytest.raises(ValueError):
            Partition(2, np.zeros((2, 2)))

    def test_empty_assignment_ok(self):
        p = Partition(3, np.empty(0, dtype=np.int32))
        assert p.num_vertices == 0


class TestAccessors:
    @pytest.fixture
    def part(self):
        return Partition(3, np.array([0, 1, 2, 0, 1, 0]))

    def test_part_of(self, part):
        assert part.part_of(0) == 0
        assert part.part_of(2) == 2

    def test_vertices_of(self, part):
        assert part.vertices_of(0).tolist() == [0, 3, 5]
        assert part.vertices_of(2).tolist() == [2]

    def test_vertices_of_out_of_range(self, part):
        with pytest.raises(ValueError):
            part.vertices_of(3)

    def test_sizes(self, part):
        assert part.sizes().tolist() == [3, 2, 1]

    def test_sizes_include_empty_parts(self):
        p = Partition(4, np.array([0, 0, 1]))
        assert p.sizes().tolist() == [2, 1, 0, 0]

    def test_renumbered(self, part):
        perm = np.array([5, 4, 3, 2, 1, 0])
        r = part.renumbered(perm)
        assert r.part_of(0) == part.part_of(5)
        assert r.part_of(5) == part.part_of(0)
