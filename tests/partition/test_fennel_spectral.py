"""Fennel and spectral partitioners."""

import numpy as np
import pytest

from repro.graph import generators as gen
from repro.partition import (
    FennelPartitioner,
    HashPartitioner,
    SpectralPartitioner,
    balance,
    edge_cut,
)


@pytest.fixture(scope="module")
def community_graph():
    return gen.planted_partition([30, 30, 30, 30], 0.3, 0.01, seed=5)


class TestFennel:
    def test_covers_all_vertices(self, community_graph):
        p = FennelPartitioner().partition(community_graph, 4)
        assert p.sizes().sum() == community_graph.num_vertices

    def test_beats_hash_on_communities(self, community_graph):
        fp = FennelPartitioner().partition(community_graph, 4)
        hp = HashPartitioner().partition(community_graph, 4)
        assert edge_cut(community_graph, fp) < 0.65 * edge_cut(community_graph, hp)

    def test_respects_slack(self, community_graph):
        p = FennelPartitioner(slack=1.1).partition(community_graph, 4)
        assert balance(community_graph, p) <= 1.1 + 1e-9

    def test_alpha_override(self, community_graph):
        # A huge balance weight forces near-perfect balance.
        p = FennelPartitioner(alpha=1e6).partition(community_graph, 4)
        sizes = p.sizes()
        assert sizes.max() - sizes.min() <= 1

    def test_deterministic(self, community_graph):
        a = FennelPartitioner(seed=3, order="random").partition(community_graph, 4)
        b = FennelPartitioner(seed=3, order="random").partition(community_graph, 4)
        assert np.array_equal(a.assignment, b.assignment)

    def test_validation(self):
        with pytest.raises(ValueError):
            FennelPartitioner(gamma=1.0)
        with pytest.raises(ValueError):
            FennelPartitioner(alpha=0)
        with pytest.raises(ValueError):
            FennelPartitioner(slack=0.9)

    def test_invalid_num_parts(self, community_graph):
        with pytest.raises(ValueError):
            FennelPartitioner().partition(community_graph, 0)

    def test_single_part(self, community_graph):
        p = FennelPartitioner().partition(community_graph, 1)
        assert np.all(p.assignment == 0)


class TestSpectral:
    def test_bisects_two_communities_exactly(self):
        g = gen.planted_partition([25, 25], 0.4, 0.01, seed=7)
        p = SpectralPartitioner().partition(g, 2)
        # Each planted block lands (almost) wholly in one part.
        left = p.assignment[:25]
        right = p.assignment[25:]
        assert np.bincount(left, minlength=2).max() >= 24
        assert np.bincount(right, minlength=2).max() >= 24
        assert left[0] != right[0] or edge_cut(g, p) < 10

    def test_low_cut_on_community_graph(self, community_graph):
        sp = SpectralPartitioner().partition(community_graph, 4)
        hp = HashPartitioner().partition(community_graph, 4)
        assert edge_cut(community_graph, sp) < 0.3 * edge_cut(community_graph, hp)

    def test_non_power_of_two_parts(self, community_graph):
        p = SpectralPartitioner().partition(community_graph, 3)
        sizes = p.sizes()
        assert sizes.sum() == 120
        assert sizes.min() > 0
        assert balance(community_graph, p) < 1.3

    def test_quota_split_is_balanced(self):
        g = gen.watts_strogatz(100, 4, 0.2, seed=2)
        p = SpectralPartitioner().partition(g, 4)
        assert balance(g, p) < 1.15

    def test_size_guard(self):
        g = gen.ring(50)
        with pytest.raises(ValueError, match="capped"):
            SpectralPartitioner(max_vertices=10).partition(g, 2)

    def test_single_part(self, community_graph):
        p = SpectralPartitioner().partition(community_graph, 1)
        assert np.all(p.assignment == 0)

    def test_directed_graph_symmetrized(self):
        g = gen.erdos_renyi(40, 0.15, seed=4, directed=True)
        p = SpectralPartitioner().partition(g, 2)
        assert p.sizes().sum() == 40

    def test_deterministic(self, community_graph):
        a = SpectralPartitioner().partition(community_graph, 4)
        b = SpectralPartitioner().partition(community_graph, 4)
        assert np.array_equal(a.assignment, b.assignment)

    def test_validation(self):
        with pytest.raises(ValueError):
            SpectralPartitioner(max_vertices=1)
