"""Hash, streaming and multilevel partitioners: coverage, balance, quality."""

import numpy as np
import pytest

from repro.graph import datasets
from repro.graph import generators as gen
from repro.partition import (
    HashPartitioner,
    ModuloPartitioner,
    MultilevelPartitioner,
    StreamingBalanced,
    StreamingChunking,
    StreamingGreedy,
    balance,
    edge_cut,
    remote_edge_fraction,
)
from repro.partition.streaming import stream_order

ALL_PARTITIONERS = [
    HashPartitioner(),
    ModuloPartitioner(),
    MultilevelPartitioner(seed=3),
    StreamingBalanced(),
    StreamingChunking(),
    StreamingGreedy(),
    StreamingGreedy(weight="unweighted"),
    StreamingGreedy(weight="exponential"),
]


@pytest.fixture(scope="module")
def community_graph():
    return gen.planted_partition([30, 30, 30, 30], 0.3, 0.01, seed=5)


class TestUniversalInvariants:
    @pytest.mark.parametrize("part", ALL_PARTITIONERS, ids=lambda p: repr(p))
    def test_every_vertex_assigned(self, part, community_graph):
        p = part.partition(community_graph, 4)
        assert p.num_vertices == community_graph.num_vertices
        assert p.assignment.min() >= 0
        assert p.assignment.max() < 4

    @pytest.mark.parametrize("part", ALL_PARTITIONERS, ids=lambda p: repr(p))
    def test_deterministic(self, part, community_graph):
        a = part.partition(community_graph, 4)
        b = part.partition(community_graph, 4)
        assert np.array_equal(a.assignment, b.assignment)

    @pytest.mark.parametrize("part", ALL_PARTITIONERS, ids=lambda p: repr(p))
    def test_single_part_trivial(self, part, community_graph):
        p = part.partition(community_graph, 1)
        assert np.all(p.assignment == 0)

    @pytest.mark.parametrize("part", ALL_PARTITIONERS, ids=lambda p: repr(p))
    def test_invalid_num_parts(self, part, community_graph):
        with pytest.raises(ValueError):
            part.partition(community_graph, 0)


class TestHash:
    def test_near_uniform_balance(self):
        g = gen.erdos_renyi(4000, 0.002, seed=1)
        p = HashPartitioner().partition(g, 8)
        assert balance(g, p) < 1.12

    def test_salt_changes_assignment(self, community_graph):
        a = HashPartitioner(salt=0).partition(community_graph, 4)
        b = HashPartitioner(salt=1).partition(community_graph, 4)
        assert not np.array_equal(a.assignment, b.assignment)

    def test_modulo_is_round_robin(self, community_graph):
        p = ModuloPartitioner().partition(community_graph, 4)
        assert p.part_of(0) == 0 and p.part_of(5) == 1

    def test_hash_scatters_consecutive_ids(self, community_graph):
        p = HashPartitioner().partition(community_graph, 8)
        # Consecutive ids should not all map to the same worker.
        assert len(set(p.assignment[:16].tolist())) > 2


class TestStreaming:
    def test_balanced_is_perfectly_balanced(self, community_graph):
        p = StreamingBalanced().partition(community_graph, 4)
        sizes = p.sizes()
        assert sizes.max() - sizes.min() <= 1

    def test_chunking_is_contiguous(self):
        g = gen.ring(12)
        p = StreamingChunking().partition(g, 3)
        assert p.assignment.tolist() == [0] * 4 + [1] * 4 + [2] * 4

    def test_greedy_beats_hash_on_communities(self, community_graph):
        hp = HashPartitioner().partition(community_graph, 4)
        sp = StreamingGreedy().partition(community_graph, 4)
        assert edge_cut(community_graph, sp) < 0.6 * edge_cut(community_graph, hp)

    def test_greedy_respects_capacity(self, community_graph):
        p = StreamingGreedy(slack=1.1).partition(community_graph, 4)
        assert balance(community_graph, p) <= 1.1 + 1e-9

    def test_linear_weight_balances_better_than_unweighted(self, community_graph):
        lin = StreamingGreedy(weight="linear").partition(community_graph, 4)
        unw = StreamingGreedy(weight="unweighted", slack=10.0).partition(
            community_graph, 4
        )
        assert balance(community_graph, lin) <= balance(community_graph, unw)

    def test_invalid_weight(self):
        with pytest.raises(ValueError):
            StreamingGreedy(weight="bogus")

    def test_invalid_slack(self):
        with pytest.raises(ValueError):
            StreamingGreedy(slack=0.5)

    def test_stream_orders(self, community_graph):
        for order in ("natural", "random", "bfs"):
            seq = stream_order(community_graph, order, seed=2)
            assert sorted(seq.tolist()) == list(range(community_graph.num_vertices))

    def test_bfs_order_starts_at_zero(self, community_graph):
        seq = stream_order(community_graph, "bfs")
        assert seq[0] == 0

    def test_bfs_order_covers_disconnected(self):
        from repro.graph.builder import from_edges
        g = from_edges(6, [(0, 1), (3, 4)], undirected=True)
        seq = stream_order(g, "bfs")
        assert sorted(seq.tolist()) == list(range(6))

    def test_unknown_order_raises(self, community_graph):
        with pytest.raises(ValueError):
            stream_order(community_graph, "zigzag")


class TestMultilevel:
    def test_respects_imbalance_on_degree(self, community_graph):
        part = MultilevelPartitioner(seed=1, imbalance=1.05)
        p = part.partition(community_graph, 4)
        deg = community_graph.out_degrees()
        loads = np.bincount(p.assignment, weights=deg + 1, minlength=4)
        ideal = loads.sum() / 4
        assert loads.max() <= 1.10 * ideal  # small tolerance over 1.05

    def test_beats_hash_on_cut(self, community_graph):
        hp = HashPartitioner().partition(community_graph, 4)
        mp = MultilevelPartitioner(seed=1).partition(community_graph, 4)
        assert edge_cut(community_graph, mp) < 0.5 * edge_cut(community_graph, hp)

    def test_recovers_planted_communities(self, community_graph):
        p = MultilevelPartitioner(seed=1).partition(community_graph, 4)
        # Most vertices of each planted block should share a part.
        for b in range(4):
            block = p.assignment[b * 30 : (b + 1) * 30]
            dominant = np.bincount(block).max()
            assert dominant >= 24

    def test_unit_vertex_weight_mode(self, community_graph):
        part = MultilevelPartitioner(seed=1, vertex_weight="unit")
        p = part.partition(community_graph, 4)
        assert balance(community_graph, p) <= 1.1

    def test_invalid_vertex_weight(self):
        with pytest.raises(ValueError):
            MultilevelPartitioner(vertex_weight="mass")

    def test_invalid_imbalance(self):
        with pytest.raises(ValueError):
            MultilevelPartitioner(imbalance=0.9)

    def test_star_graph_does_not_hang(self):
        # Heavy-edge matching stalls on stars; coarsening must bail out.
        g = gen.star(64)
        p = MultilevelPartitioner(seed=1).partition(g, 4)
        assert p.num_vertices == 64

    def test_disconnected_graph(self):
        from repro.graph.builder import from_edges
        g = from_edges(20, [(i, i + 1) for i in range(0, 18, 2)], undirected=True)
        p = MultilevelPartitioner(seed=2).partition(g, 4)
        assert p.assignment.min() >= 0

    def test_seed_changes_partition(self):
        g = datasets.load("WG", scale=0.2)
        a = MultilevelPartitioner(seed=1).partition(g, 4)
        b = MultilevelPartitioner(seed=2).partition(g, 4)
        assert not np.array_equal(a.assignment, b.assignment)


class TestPaperQualityGap:
    """§VII's measured orderings on the dataset analogues."""

    @pytest.mark.parametrize("key", ["WG", "CP"])
    def test_hash_remote_fraction_near_paper(self, key):
        g = datasets.load(key, scale=0.3)
        p = HashPartitioner().partition(g, 8)
        # Paper: 87% (WG), 86% (CP).
        assert 0.80 < remote_edge_fraction(g, p) < 0.93

    @pytest.mark.parametrize("key", ["WG", "CP"])
    def test_metis_cut_dominates_hash(self, key):
        g = datasets.load(key, scale=0.3)
        hp = HashPartitioner().partition(g, 8)
        mp = MultilevelPartitioner(seed=1, imbalance=1.15, refine_passes=12).partition(g, 8)
        assert remote_edge_fraction(g, mp) < 0.45 * remote_edge_fraction(g, hp)

    def test_streaming_between_hash_and_metis_on_wg(self):
        g = datasets.load("WG", scale=0.3)
        hp = HashPartitioner().partition(g, 8)
        mp = MultilevelPartitioner(seed=1, imbalance=1.15, refine_passes=12).partition(g, 8)
        sp = StreamingGreedy(order="random").partition(g, 8)
        rf = lambda p: remote_edge_fraction(g, p)
        assert rf(mp) < rf(sp) < rf(hp)
