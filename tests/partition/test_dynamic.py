"""GPS-style dynamic re-partitioning engine."""

import numpy as np
import pytest

from repro.algorithms import (
    BCProgram,
    KCoreProgram,
    PageRankProgram,
    betweenness_reference,
    pagerank_reference,
)
from repro.algorithms import bc as bc_mod
from repro.bsp import JobSpec, run_job
from repro.bsp.debug import InvariantChecker
from repro.partition.dynamic import DynamicRepartitioningEngine, run_repartitioned


def pr_job(graph, **kw):
    return JobSpec(program=PageRankProgram(10), graph=graph, num_workers=4, **kw)


class TestCorrectness:
    def test_pagerank_identical_to_static(self, small_world):
        ref = pagerank_reference(small_world, iterations=10)
        res = run_repartitioned(pr_job(small_world), interval=2)
        assert np.allclose(res.values_array(), ref, atol=1e-10)

    def test_bc_identical_to_reference(self, small_world):
        job = JobSpec(
            program=BCProgram(), graph=small_world, num_workers=4,
            initially_active=False,
            initial_messages=bc_mod.start_messages(range(8)),
        )
        res = run_repartitioned(job, interval=3)
        ref = betweenness_reference(small_world, roots=range(8))
        assert np.allclose(res.values_array(), ref, atol=1e-9)

    def test_mutating_program_survives_migration(self, small_world):
        import networkx as nx

        from tests.conftest import to_networkx

        job = JobSpec(program=KCoreProgram(2), graph=small_world, num_workers=4)
        res = run_repartitioned(job, interval=2)
        ours = {v for v, alive in res.values.items() if alive}
        theirs = set(nx.k_core(to_networkx(small_world), 2).nodes())
        assert ours == theirs

    def test_invariants_hold_during_migration(self, small_world):
        checker = InvariantChecker()
        run_repartitioned(pr_job(small_world, observers=[checker]), interval=2)
        assert checker.ok, checker.violations


class TestMigrationBehaviour:
    def test_remote_fraction_decreases(self, small_world):
        engine = DynamicRepartitioningEngine(pr_job(small_world), interval=2)
        engine.run()
        assert engine.migrations
        first = engine.migrations[0]
        last = engine.migrations[-1]
        assert last.remote_fraction_after < first.remote_fraction_before
        for ev in engine.migrations:
            assert ev.remote_fraction_after <= ev.remote_fraction_before + 1e-9

    def test_balance_guard_respected(self, small_world):
        slack = 1.15
        engine = DynamicRepartitioningEngine(
            pr_job(small_world), interval=2, slack=slack
        )
        engine.run()
        sizes = engine.partition.sizes()
        assert sizes.max() <= slack * small_world.num_vertices / 4 + 1

    def test_batch_fraction_bounds_churn(self, small_world):
        engine = DynamicRepartitioningEngine(
            pr_job(small_world), interval=2, batch_fraction=0.02
        )
        engine.run()
        cap = max(1, int(0.02 * small_world.num_vertices))
        assert all(ev.vertices_moved <= cap for ev in engine.migrations)

    def test_migration_charges_time(self, small_world):
        static = run_job(pr_job(small_world))
        engine = DynamicRepartitioningEngine(pr_job(small_world), interval=2)
        dyn = engine.run()
        overhead = sum(ev.overhead_seconds for ev in engine.migrations)
        assert overhead > 0
        # PageRank gains little from locality here, so time >= static - eps.
        assert dyn.total_time >= static.total_time - 1e-6

    def test_every_vertex_still_owned_once(self, small_world):
        engine = DynamicRepartitioningEngine(pr_job(small_world), interval=2)
        engine.run()
        owned = sorted(
            v for w in engine.workers for v in w.states.keys()
        )
        assert owned == list(range(small_world.num_vertices))
        # Partition assignment agrees with actual ownership.
        for w in engine.workers:
            for v in w.states:
                assert engine.partition.assignment[v] == w.worker_id

    def test_validation(self, small_world):
        with pytest.raises(ValueError):
            DynamicRepartitioningEngine(pr_job(small_world), interval=0)
        with pytest.raises(ValueError):
            DynamicRepartitioningEngine(pr_job(small_world), batch_fraction=0)
        with pytest.raises(ValueError):
            DynamicRepartitioningEngine(pr_job(small_world), min_gain=0)
        with pytest.raises(ValueError):
            DynamicRepartitioningEngine(pr_job(small_world), slack=0.9)

    def test_failure_injection_incompatible(self, small_world):
        job = pr_job(
            small_world, checkpoint_interval=2, failure_schedule={1: 0}
        )
        with pytest.raises(ValueError, match="failure"):
            DynamicRepartitioningEngine(job)
