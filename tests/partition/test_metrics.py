"""Partition metrics vs. brute-force computation."""

import numpy as np
import pytest

from repro.graph import generators as gen
from repro.graph.builder import from_edges
from repro.partition import (
    HashPartitioner,
    balance,
    edge_cut,
    evaluate,
    part_degrees,
    remote_edge_fraction,
)
from repro.partition.base import Partition


def brute_force_cut(graph, partition):
    cut = 0
    for u, v in graph.iter_edges():
        if partition.part_of(u) != partition.part_of(v):
            cut += 1
    return cut // 2 if graph.undirected else cut


class TestEdgeCut:
    def test_matches_brute_force_undirected(self, small_world):
        p = HashPartitioner().partition(small_world, 4)
        assert edge_cut(small_world, p) == brute_force_cut(small_world, p)

    def test_matches_brute_force_directed(self):
        g = gen.erdos_renyi(40, 0.1, seed=3, directed=True)
        p = HashPartitioner().partition(g, 3)
        assert edge_cut(g, p) == brute_force_cut(g, p)

    def test_all_one_part_zero_cut(self, ring10):
        p = Partition(1, np.zeros(10, dtype=np.int32))
        assert edge_cut(ring10, p) == 0

    def test_alternating_ring_cut(self, ring10):
        p = Partition(2, np.arange(10) % 2)
        assert edge_cut(ring10, p) == 10  # every ring edge crosses

    def test_half_split_ring(self, ring10):
        p = Partition(2, (np.arange(10) >= 5).astype(int))
        assert edge_cut(ring10, p) == 2


class TestRemoteFraction:
    def test_range(self, small_world):
        p = HashPartitioner().partition(small_world, 4)
        assert 0.0 <= remote_edge_fraction(small_world, p) <= 1.0

    def test_zero_for_single_part(self, small_world):
        p = Partition(1, np.zeros(60, dtype=np.int32))
        assert remote_edge_fraction(small_world, p) == 0.0

    def test_empty_graph(self):
        g = from_edges(3, [])
        p = Partition(2, np.array([0, 1, 0]))
        assert remote_edge_fraction(g, p) == 0.0

    def test_consistent_with_edge_cut(self, small_world):
        p = HashPartitioner().partition(small_world, 4)
        frac = remote_edge_fraction(small_world, p)
        assert frac == pytest.approx(
            edge_cut(small_world, p) / small_world.num_edges
        )


class TestBalance:
    def test_perfect_balance(self, ring10):
        p = Partition(2, np.arange(10) % 2)
        assert balance(ring10, p) == pytest.approx(1.0)

    def test_skewed_balance(self, ring10):
        p = Partition(2, np.array([0] * 8 + [1] * 2))
        assert balance(ring10, p) == pytest.approx(1.6)

    def test_empty_graph_balance(self):
        g = from_edges(0, [])
        p = Partition(2, np.empty(0, dtype=np.int32))
        assert balance(g, p) == 1.0


class TestPartDegrees:
    def test_sums_to_total_arcs(self, small_world):
        p = HashPartitioner().partition(small_world, 4)
        assert part_degrees(small_world, p).sum() == small_world.num_arcs

    def test_star_concentration(self, star8):
        p = Partition(2, np.array([0] + [1] * 7))
        d = part_degrees(star8, p)
        assert d[0] == 7 and d[1] == 7


class TestReport:
    def test_evaluate_renders(self, small_world):
        p = HashPartitioner().partition(small_world, 4)
        rep = evaluate(small_world, p, "Hash")
        assert rep.strategy == "Hash"
        assert "remote=" in rep.row()
        assert rep.num_parts == 4
