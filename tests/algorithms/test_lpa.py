"""Label-propagation community detection."""

import numpy as np
import pytest

from repro.algorithms import LabelPropagationProgram
from repro.bsp import JobSpec, run_job
from repro.graph import generators as gen
from repro.graph.builder import from_edges


def run_lpa(graph, workers=4, max_rounds=20):
    prog = LabelPropagationProgram(max_rounds=max_rounds)
    res = run_job(JobSpec(program=prog, graph=graph, num_workers=workers))
    return res.values_array(dtype=int), prog, res


class TestCommunityRecovery:
    def test_planted_three_blocks(self):
        g = gen.planted_partition([25, 25, 25], 0.4, 0.01, seed=3)
        labels, prog, _ = run_lpa(g)
        for b in range(3):
            block = labels[b * 25 : (b + 1) * 25]
            # Each planted block converges to one dominant label.
            assert np.bincount(block).max() >= 23
        assert prog.converged_at is not None

    def test_disconnected_components_get_distinct_labels(self):
        g = from_edges(6, [(0, 1), (1, 2), (3, 4), (4, 5)], undirected=True)
        labels, _, _ = run_lpa(g)
        assert len(set(labels[:3])) == 1
        assert len(set(labels[3:])) == 1
        assert labels[0] != labels[3]

    def test_clique_single_label(self, k5):
        labels, prog, _ = run_lpa(k5)
        assert len(set(labels)) == 1
        assert labels[0] == 0  # smallest id wins ties

    def test_labels_are_vertex_ids(self, small_world):
        labels, _, _ = run_lpa(small_world)
        assert set(labels) <= set(range(small_world.num_vertices))


class TestTermination:
    def test_round_bound_respected(self):
        # Bipartite structures can two-color oscillate; the bound ends them.
        g = gen.star(6)
        labels, prog, res = run_lpa(g, max_rounds=7)
        assert res.supersteps <= 8
        assert res.halted

    def test_convergence_recorded(self, k5):
        _, prog, res = run_lpa(k5)
        assert prog.converged_at is not None
        assert res.supersteps == prog.converged_at + 1

    def test_deterministic(self, small_world):
        a, _, _ = run_lpa(small_world)
        b, _, _ = run_lpa(small_world, workers=7)
        assert np.array_equal(a, b)

    def test_validation(self):
        with pytest.raises(ValueError):
            LabelPropagationProgram(max_rounds=0)
