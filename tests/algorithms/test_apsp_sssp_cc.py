"""APSP, SSSP and connected components programs."""

import math

import numpy as np
import pytest

from repro.algorithms import (
    APSPProgram,
    ConnectedComponentsProgram,
    SSSPProgram,
    apsp_reference,
    sssp_reference,
)
from repro.algorithms import apsp as apsp_mod
from repro.bsp import JobSpec, run_job
from repro.graph import generators as gen
from repro.graph.builder import from_edges
from repro.graph.properties import bfs_levels, connected_components


def run_apsp(graph, roots, workers=4, retain="distances"):
    return run_job(
        JobSpec(
            program=APSPProgram(retain=retain), graph=graph, num_workers=workers,
            initially_active=False,
            initial_messages=apsp_mod.start_messages(roots),
        )
    )


class TestAPSP:
    def test_all_roots_match_bfs(self, small_world):
        n = small_world.num_vertices
        res = run_apsp(small_world, range(n))
        ref = apsp_reference(small_world)
        for v in range(n):
            for r, d in res.values[v].items():
                assert ref[r][v] == d
        # every reachable pair present
        for r in range(n):
            reach = (ref[r] >= 0).sum()
            have = sum(1 for v in range(n) if r in res.values[v])
            assert have == reach

    def test_subset_of_roots(self, small_world):
        res = run_apsp(small_world, [0, 7])
        d = bfs_levels(small_world, 7)
        for v in range(small_world.num_vertices):
            assert res.values[v].get(7, -1) == d[v]

    def test_unreachable_pairs_absent(self):
        g = from_edges(5, [(0, 1), (2, 3)], undirected=True)
        res = run_apsp(g, [0])
        assert 0 not in res.values[3]
        assert res.values[1][0] == 1

    def test_aggregate_mode_sums(self, small_world):
        res = run_apsp(small_world, range(10), retain="aggregate")
        full = apsp_reference(small_world, roots=range(10))
        for v in (0, 13, 59):
            s, c = res.values[v]
            dist_to_v = [full[r][v] for r in range(10) if full[r][v] >= 0]
            assert c == len(dist_to_v)
            assert s == sum(dist_to_v)

    def test_invalid_retain(self):
        with pytest.raises(ValueError):
            APSPProgram(retain="everything")

    def test_message_count_near_edges_per_root(self, small_world):
        res = run_apsp(small_world, [0])
        # BFS wave crosses each arc at most once (plus start overhead).
        assert res.trace.total_messages <= small_world.num_arcs + 1

    def test_triangle_waveform_lower_peak_than_bc(self, small_world):
        """Paper Fig. 3: APSP peaks below BC for the same roots."""
        from repro.algorithms import BCProgram
        from repro.algorithms import bc as bc_mod

        apsp = run_apsp(small_world, range(5))
        bc = run_job(
            JobSpec(
                program=BCProgram(), graph=small_world, num_workers=4,
                initially_active=False,
                initial_messages=bc_mod.start_messages(range(5)),
            )
        )
        assert apsp.trace.series_messages().max() < bc.trace.series_messages().max()


class TestSSSP:
    def test_matches_bfs(self, small_world):
        res = run_job(
            JobSpec(program=SSSPProgram(0), graph=small_world, num_workers=4)
        )
        assert np.allclose(res.values_array(), sssp_reference(small_world, 0))

    def test_unreachable_is_inf(self):
        g = from_edges(4, [(0, 1)], undirected=True)
        res = run_job(JobSpec(program=SSSPProgram(0), graph=g, num_workers=2))
        assert math.isinf(res.values[3])

    def test_weighted_edges(self):
        g = gen.path(4)
        res = run_job(
            JobSpec(
                program=SSSPProgram(0, weight_fn=lambda u, v: 2.5),
                graph=g, num_workers=2,
            )
        )
        assert res.values[3] == pytest.approx(7.5)

    def test_directed_graph(self):
        g = from_edges(4, [(0, 1), (1, 2), (2, 3), (3, 0)], undirected=False)
        res = run_job(JobSpec(program=SSSPProgram(1), graph=g, num_workers=2))
        assert res.values[0] == 3.0

    def test_invalid_source(self):
        with pytest.raises(ValueError):
            SSSPProgram(-1)


class TestConnectedComponents:
    def test_matches_reference(self):
        g = from_edges(
            10, [(0, 1), (1, 2), (3, 4), (5, 6), (6, 7), (7, 8)], undirected=True
        )
        res = run_job(
            JobSpec(program=ConnectedComponentsProgram(), graph=g, num_workers=3)
        )
        ours = res.values_array(dtype=int)
        ref = connected_components(g)
        # Same partition into components (labels may differ).
        for a in range(10):
            for b in range(10):
                assert (ours[a] == ours[b]) == (ref[a] == ref[b])

    def test_label_is_component_minimum(self):
        g = from_edges(6, [(3, 4), (4, 5)], undirected=True)
        res = run_job(
            JobSpec(program=ConnectedComponentsProgram(), graph=g, num_workers=2)
        )
        assert res.values[5] == 3

    def test_single_component_ring(self, ring10):
        res = run_job(
            JobSpec(program=ConnectedComponentsProgram(), graph=ring10, num_workers=4)
        )
        assert set(res.values.values()) == {0}

    def test_supersteps_bounded_by_diameter(self, ring10):
        res = run_job(
            JobSpec(program=ConnectedComponentsProgram(), graph=ring10, num_workers=4)
        )
        assert res.supersteps <= 10 + 2
