"""Triangle counting, semi-clustering and bipartite matching."""

import networkx as nx
import numpy as np
import pytest

from repro.algorithms import (
    BipartiteMatchingProgram,
    SemiClusteringProgram,
    TriangleCountProgram,
    cluster_score,
)
from repro.bsp import JobSpec, run_job
from repro.graph import generators as gen
from repro.graph.builder import from_edges
from tests.conftest import to_networkx


def run_prog(program, graph, workers=4):
    return run_job(JobSpec(program=program, graph=graph, num_workers=workers))


class TestTriangleCounting:
    @pytest.mark.parametrize(
        "graph_fn",
        [
            lambda: gen.complete(5),
            lambda: gen.ring(8),
            lambda: gen.binary_tree(3),
            lambda: gen.watts_strogatz(60, 6, 0.2, seed=3),
            lambda: gen.barabasi_albert(80, 3, seed=4),
            lambda: gen.erdos_renyi(50, 0.15, seed=5),
        ],
        ids=["K5", "ring", "tree", "ws", "ba", "er"],
    )
    def test_matches_networkx(self, graph_fn):
        g = graph_fn()
        res = run_prog(TriangleCountProgram(), g)
        theirs = nx.triangles(to_networkx(g))
        for v in range(g.num_vertices):
            assert res.values[v] == theirs[v], f"vertex {v}"

    def test_total_triangle_count(self):
        g = gen.complete(6)
        res = run_prog(TriangleCountProgram(), g)
        # Each triangle counted at 3 corners; K6 has C(6,3)=20 triangles.
        assert sum(res.values.values()) == 3 * 20

    def test_triangle_free_graph(self):
        g = gen.grid2d(4, 4)
        res = run_prog(TriangleCountProgram(), g)
        assert all(v == 0 for v in res.values.values())

    def test_three_supersteps(self, small_world):
        res = run_prog(TriangleCountProgram(), small_world)
        assert res.supersteps <= 4

    def test_worker_invariance(self, small_world):
        a = run_prog(TriangleCountProgram(), small_world, workers=1)
        b = run_prog(TriangleCountProgram(), small_world, workers=7)
        assert a.values == b.values


class TestSemiClustering:
    def test_cluster_score_formula(self):
        g = gen.complete(3)  # triangle
        full = frozenset([0, 1, 2])
        # I=3 inside edges, B=0 boundary: score = 3 / 3 = 1.0
        assert cluster_score(full, g, 0.5) == pytest.approx(1.0)

    def test_cluster_score_singleton_zero(self, ring10):
        assert cluster_score(frozenset([0]), ring10, 0.5) == 0.0

    def test_cluster_score_boundary_penalty(self, ring10):
        pair = frozenset([0, 1])  # 1 inside edge, 2 boundary edges
        lenient = cluster_score(pair, ring10, 0.0)
        strict = cluster_score(pair, ring10, 1.0)
        assert lenient > strict

    def test_two_cliques_found(self):
        # Two K4s joined by one bridge edge: each vertex's best cluster is
        # its own clique.
        edges = (
            [(a, b) for a in range(4) for b in range(a + 1, 4)]
            + [(a, b) for a in range(4, 8) for b in range(a + 1, 8)]
            + [(0, 4)]
        )
        g = from_edges(8, edges, undirected=True)
        res = run_prog(SemiClusteringProgram(max_rounds=6, v_max=4), g)
        left, right = frozenset(range(4)), frozenset(range(4, 8))
        for v in range(8):
            assert res.values[v][0] in (left, right)
            assert v in res.values[v][0] or len(res.values[v][0]) == 4

    def test_clusters_contain_connected_members(self, small_world):
        res = run_prog(SemiClusteringProgram(max_rounds=4), small_world)
        nxg = to_networkx(small_world)
        for v, clusters in res.values.items():
            for c in clusters:
                if len(c) > 1:
                    assert nx.is_connected(nxg.subgraph(c))

    def test_c_max_respected(self, small_world):
        res = run_prog(SemiClusteringProgram(max_rounds=3, c_max=2), small_world)
        assert all(len(cl) <= 2 for cl in res.values.values())

    def test_v_max_respected(self, small_world):
        res = run_prog(SemiClusteringProgram(max_rounds=4, v_max=3), small_world)
        assert all(
            len(c) <= 3 for clusters in res.values.values() for c in clusters
        )

    def test_terminates_within_round_bound(self, small_world):
        res = run_prog(SemiClusteringProgram(max_rounds=3), small_world)
        assert res.supersteps <= 3 + 2

    def test_validation(self):
        with pytest.raises(ValueError):
            SemiClusteringProgram(max_rounds=0)
        with pytest.raises(ValueError):
            SemiClusteringProgram(boundary_factor=2.0)


def bipartite_graph(nl, nr, edges):
    """Left ids 0..nl-1, right ids nl..nl+nr-1."""
    g = from_edges(nl + nr, [(u, nl + v) for u, v in edges], undirected=True)
    return g, (lambda v: v < nl)


def check_matching(graph, is_left, values):
    matched_pairs = set()
    for v in range(graph.num_vertices):
        m = values[v]
        if m >= 0:
            # Mutual and along a real edge.
            assert values[m] == v
            assert m in set(int(x) for x in graph.neighbors(v))
            matched_pairs.add(tuple(sorted((v, m))))
    # Maximality: no unmatched left adjacent to unmatched right.
    for v in range(graph.num_vertices):
        if is_left(v) and values[v] < 0:
            for u in graph.neighbors(v):
                assert values[int(u)] >= 0, f"augmenting edge {v}-{int(u)} left"
    return matched_pairs


class TestBipartiteMatching:
    def test_perfect_matching_on_disjoint_edges(self):
        g, is_left = bipartite_graph(3, 3, [(0, 0), (1, 1), (2, 2)])
        res = run_prog(BipartiteMatchingProgram(is_left), g)
        pairs = check_matching(g, is_left, res.values)
        assert len(pairs) == 3

    def test_star_contention_one_match(self):
        # Three left vertices all want the single right vertex.
        g, is_left = bipartite_graph(3, 1, [(0, 0), (1, 0), (2, 0)])
        res = run_prog(BipartiteMatchingProgram(is_left), g)
        pairs = check_matching(g, is_left, res.values)
        assert len(pairs) == 1

    def test_random_bipartite_maximal(self):
        rng = np.random.default_rng(9)
        edges = [(int(u), int(v)) for u, v in zip(
            rng.integers(0, 12, 40), rng.integers(0, 12, 40)
        )]
        g, is_left = bipartite_graph(12, 12, edges)
        res = run_prog(BipartiteMatchingProgram(is_left), g)
        check_matching(g, is_left, res.values)

    def test_complete_bipartite(self):
        g, is_left = bipartite_graph(4, 4, [(u, v) for u in range(4) for v in range(4)])
        res = run_prog(BipartiteMatchingProgram(is_left), g)
        pairs = check_matching(g, is_left, res.values)
        assert len(pairs) == 4  # K4,4 has a perfect matching; greedy finds it

    def test_isolated_vertices_stay_unmatched(self):
        g, is_left = bipartite_graph(2, 2, [(0, 0)])
        res = run_prog(BipartiteMatchingProgram(is_left), g)
        assert res.values[1] == -1 and res.values[3] == -1

    def test_halts(self):
        g, is_left = bipartite_graph(5, 3, [(u, v) for u in range(5) for v in range(3)])
        res = run_prog(BipartiteMatchingProgram(is_left), g)
        assert res.halted
