"""PageRank: validation against networkx and the sequential reference."""

import networkx as nx
import numpy as np
import pytest

from repro.algorithms import PageRankProgram, pagerank_reference
from repro.bsp import JobSpec, run_job
from repro.graph import generators as gen
from repro.graph.builder import from_edges
from tests.conftest import to_networkx


def nx_pagerank(graph, damping=0.85):
    nxg = to_networkx(graph)
    pr = nx.pagerank(nxg, alpha=damping, max_iter=500, tol=1e-13)
    return np.array([pr[v] for v in range(graph.num_vertices)])


def run_pr(graph, iterations=40, workers=4, **kw):
    return run_job(
        JobSpec(
            program=PageRankProgram(iterations, **kw), graph=graph,
            num_workers=workers,
        )
    ).values_array()


class TestCorrectness:
    def test_small_world_matches_networkx(self, small_world):
        assert np.allclose(run_pr(small_world), nx_pagerank(small_world), atol=1e-8)

    def test_ba_graph_matches_networkx(self, ba_graph):
        assert np.allclose(run_pr(ba_graph), nx_pagerank(ba_graph), atol=1e-8)

    def test_directed_graph_matches_networkx(self):
        g = gen.erdos_renyi(50, 0.08, seed=5, directed=True)
        assert np.allclose(run_pr(g, 60), nx_pagerank(g), atol=1e-8)

    def test_dangling_vertices_handled(self):
        # Vertex 2 has no out-edges: its mass must be redistributed.
        g = from_edges(4, [(0, 1), (1, 2), (3, 0)], undirected=False)
        assert np.allclose(run_pr(g, 80), nx_pagerank(g), atol=1e-8)

    def test_ranks_sum_to_one(self, small_world):
        assert run_pr(small_world).sum() == pytest.approx(1.0)

    def test_matches_sequential_reference_exactly(self, small_world):
        bsp = run_pr(small_world, iterations=15)
        ref = pagerank_reference(small_world, iterations=15)
        assert np.allclose(bsp, ref, atol=1e-12)

    def test_star_hub_has_highest_rank(self, star8):
        pr = run_pr(star8)
        assert np.argmax(pr) == 0

    def test_combiner_does_not_change_results(self, small_world):
        with_c = run_pr(small_world, iterations=10, use_combiner=True)
        without_c = run_pr(small_world, iterations=10, use_combiner=False)
        assert np.allclose(with_c, without_c, atol=1e-12)

    def test_damping_parameter(self, small_world):
        a = run_pr(small_world, iterations=30)
        b = run_job(
            JobSpec(
                program=PageRankProgram(30, damping=0.5), graph=small_world,
                num_workers=4,
            )
        ).values_array()
        assert not np.allclose(a, b)


class TestBehaviour:
    def test_fixed_iteration_count(self, small_world):
        res = run_job(
            JobSpec(program=PageRankProgram(30), graph=small_world, num_workers=4)
        )
        assert res.supersteps == 31  # 30 message rounds + drain

    def test_uniform_message_profile(self, small_world):
        res = run_job(
            JobSpec(program=PageRankProgram(20), graph=small_world, num_workers=4)
        )
        msgs = res.trace.series_messages()[1:-1]
        assert msgs.min() == msgs.max()  # the paper's flat line (Fig. 3)

    def test_combiner_reduces_message_count(self, small_world):
        with_c = run_job(
            JobSpec(
                program=PageRankProgram(10), graph=small_world, num_workers=4
            )
        )
        without_c = run_job(
            JobSpec(
                program=PageRankProgram(10, use_combiner=False),
                graph=small_world, num_workers=4,
            )
        )
        assert with_c.trace.total_messages < without_c.trace.total_messages

    def test_validation(self):
        with pytest.raises(ValueError):
            PageRankProgram(0)
        with pytest.raises(ValueError):
            PageRankProgram(10, damping=1.0)
