"""Betweenness centrality: BSP program vs networkx and Brandes reference."""

import networkx as nx
import numpy as np
import pytest

from repro.algorithms import BCProgram, betweenness_reference
from repro.algorithms import bc as bc_mod
from repro.bsp import JobSpec, run_job
from repro.graph import generators as gen
from tests.conftest import to_networkx


def nx_bc(graph):
    nxg = to_networkx(graph)
    bc = nx.betweenness_centrality(nxg, normalized=False)
    return np.array([bc[v] for v in range(graph.num_vertices)])


def run_bc(graph, roots=None, workers=4):
    roots = range(graph.num_vertices) if roots is None else roots
    res = run_job(
        JobSpec(
            program=BCProgram(), graph=graph, num_workers=workers,
            initially_active=False,
            initial_messages=bc_mod.start_messages(roots),
        )
    )
    return res


class TestExactness:
    @pytest.mark.parametrize(
        "graph_fn",
        [
            lambda: gen.ring(12),
            lambda: gen.path(9),
            lambda: gen.star(10),
            lambda: gen.complete(6),
            lambda: gen.binary_tree(3),
            lambda: gen.grid2d(4, 4),
        ],
        ids=["ring", "path", "star", "complete", "btree", "grid"],
    )
    def test_toy_graphs_match_networkx(self, graph_fn):
        g = graph_fn()
        assert np.allclose(run_bc(g).values_array(), nx_bc(g), atol=1e-9)

    def test_small_world_matches_networkx(self, small_world):
        assert np.allclose(run_bc(small_world).values_array(), nx_bc(small_world), atol=1e-9)

    def test_ba_graph_matches_networkx(self, ba_graph):
        assert np.allclose(run_bc(ba_graph).values_array(), nx_bc(ba_graph), atol=1e-9)

    def test_disconnected_graph(self):
        from repro.graph.builder import from_edges

        g = from_edges(8, [(0, 1), (1, 2), (3, 4), (4, 5), (5, 6)], undirected=True)
        assert np.allclose(run_bc(g).values_array(), nx_bc(g), atol=1e-9)

    def test_reference_matches_networkx(self, small_world):
        assert np.allclose(betweenness_reference(small_world), nx_bc(small_world))

    def test_path_center_formula(self):
        # Middle of a 5-path lies on 2*2=4 unordered pairs' shortest paths.
        g = gen.path(5)
        vals = run_bc(g).values_array()
        assert vals[2] == pytest.approx(4.0)
        assert vals[0] == 0.0


class TestRootSubsets:
    def test_subset_matches_reference(self, small_world):
        roots = [3, 17, 25, 40]
        vals = run_bc(small_world, roots=roots).values_array()
        ref = betweenness_reference(small_world, roots=roots)
        assert np.allclose(vals, ref, atol=1e-9)

    def test_single_root(self, small_world):
        vals = run_bc(small_world, roots=[0]).values_array()
        ref = betweenness_reference(small_world, roots=[0])
        assert np.allclose(vals, ref)

    def test_roots_are_additive(self, small_world):
        a = run_bc(small_world, roots=[1, 2]).values_array()
        b = run_bc(small_world, roots=[1]).values_array() + run_bc(
            small_world, roots=[2]
        ).values_array()
        assert np.allclose(a, b, atol=1e-9)

    def test_start_message_to_wrong_vertex_raises(self, small_world):
        with pytest.raises(ValueError, match="start message"):
            run_job(
                JobSpec(
                    program=BCProgram(), graph=small_world, num_workers=2,
                    initially_active=False,
                    initial_messages=[(5, (bc_mod._START, 7))],
                )
            )


class TestWorkerInvariance:
    @pytest.mark.parametrize("workers", [1, 2, 7])
    def test_worker_count_invariant(self, small_world, workers):
        vals = run_bc(small_world, roots=range(10), workers=workers).values_array()
        ref = betweenness_reference(small_world, roots=range(10))
        assert np.allclose(vals, ref, atol=1e-9)


class TestResourceShape:
    def test_triangle_message_waveform(self, small_world):
        """Fig. 3's shape: messages ramp up, peak near the middle, drain."""
        res = run_bc(small_world, roots=range(5))
        msgs = res.trace.series_messages()
        peak = int(np.argmax(msgs))
        assert 0 < peak < len(msgs) - 1
        assert msgs.max() > 4 * msgs[0]
        assert msgs.max() > 4 * msgs[-1]

    def test_memory_frees_after_completion(self, small_world):
        res = run_bc(small_world, roots=range(5))
        mems = res.trace.series_peak_memory()
        assert mems[-1] < 0.7 * mems.max()  # per-root records were freed

    def test_all_records_freed_at_halt(self, small_world):
        """Per-root state must be transient: all records freed by job end."""
        from repro.bsp import BSPEngine

        job = JobSpec(
            program=BCProgram(), graph=small_world, num_workers=3,
            initially_active=False,
            initial_messages=bc_mod.start_messages(range(4)),
        )
        engine = BSPEngine(job)
        res = engine.run()
        assert res.halted
        for w in engine.workers:
            for state in w.states.values():
                assert not state.records
                assert state.roots_completed == 4  # every vertex saw 4 waves

    def test_message_count_scales_with_roots(self, small_world):
        m1 = run_bc(small_world, roots=range(2)).trace.total_messages
        m2 = run_bc(small_world, roots=range(4)).trace.total_messages
        assert 1.5 < m2 / m1 < 2.5  # ~linear in roots (O(|V||E|) total)
