"""BSP effective-diameter estimation vs the exact graph statistics."""

import numpy as np
import pytest

from repro.algorithms import DiameterEstimationProgram
from repro.bsp import JobSpec, run_job
from repro.graph import generators as gen
from repro.graph.properties import distance_profile, effective_diameter


def run_diameter(graph, sources, fraction=0.9, workers=4):
    prog = DiameterEstimationProgram(sources, fraction=fraction)
    res = run_job(JobSpec(program=prog, graph=graph, num_workers=workers))
    return prog, res


class TestHistogramExactness:
    @pytest.mark.parametrize(
        "graph_fn,k",
        [
            (lambda: gen.ring(20), 5),
            (lambda: gen.binary_tree(4), 8),
            (lambda: gen.watts_strogatz(80, 4, 0.2, seed=3), 16),
            (lambda: gen.barabasi_albert(100, 2, seed=4), 32),
        ],
        ids=["ring", "tree", "ws", "ba"],
    )
    def test_matches_bfs_distance_profile(self, graph_fn, k):
        g = graph_fn()
        sources = np.arange(0, g.num_vertices, max(1, g.num_vertices // k))[:k]
        prog, _ = run_diameter(g, sources)
        ref = distance_profile(g, sources=sources)
        ours = np.zeros(len(ref), dtype=np.int64)
        for d, c in prog.histogram.items():
            ours[d] = c
        assert np.array_equal(ours, ref)

    def test_effective_diameter_matches_exact_when_all_sources(self):
        g = gen.watts_strogatz(50, 4, 0.25, seed=5)
        prog, _ = run_diameter(g, range(50))
        exact = effective_diameter(g, 0.9)
        assert prog.effective_diameter() == pytest.approx(exact)

    def test_fraction_parameter(self):
        g = gen.path(30)
        prog_all, _ = run_diameter(g, range(30), fraction=0.5)
        prog_hi = DiameterEstimationProgram(range(30), fraction=0.99)
        run_job(JobSpec(program=prog_hi, graph=g, num_workers=2))
        assert prog_all.effective_diameter() < prog_hi.effective_diameter()


class TestMechanics:
    def test_halts_after_diameter_supersteps(self):
        g = gen.ring(16)  # diameter 8
        prog, res = run_diameter(g, [0])
        assert res.halted
        assert res.supersteps <= 8 + 3

    def test_disconnected_sources(self):
        from repro.graph.builder import from_edges

        g = from_edges(6, [(0, 1), (1, 2), (3, 4)], undirected=True)
        prog, res = run_diameter(g, [0, 3], workers=2)
        # Pairs: from 0 -> {1:d1, 2:d2}; from 3 -> {4:d1}.
        assert prog.histogram == {0: 2, 1: 2, 2: 1}

    def test_worker_invariance(self):
        g = gen.watts_strogatz(60, 4, 0.3, seed=7)
        a, _ = run_diameter(g, range(10), workers=1)
        b, _ = run_diameter(g, range(10), workers=6)
        assert a.histogram == b.histogram

    def test_validation(self):
        with pytest.raises(ValueError):
            DiameterEstimationProgram([])
        with pytest.raises(ValueError):
            DiameterEstimationProgram(range(65))
        with pytest.raises(ValueError):
            DiameterEstimationProgram([1, 1])
        with pytest.raises(ValueError):
            DiameterEstimationProgram([0], fraction=0.0)

    def test_message_volume_bounded_per_superstep(self):
        """One mask message per edge per superstep at most (OR-combined)."""
        g = gen.watts_strogatz(60, 4, 0.3, seed=7)
        prog, res = run_diameter(g, range(32), workers=1)
        for s in res.trace:
            assert s.total_messages <= g.num_arcs
