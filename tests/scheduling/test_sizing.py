"""Swath-size heuristics: static, sampling, adaptive."""

import pytest

from repro.scheduling import AdaptiveSizer, SamplingSizer, SizerObservation, StaticSizer


def obs(size, peak, baseline=0.0):
    return SizerObservation(swath_size=size, peak_memory=peak, baseline_memory=baseline)


class TestStaticSizer:
    def test_constant_size(self):
        s = StaticSizer(7)
        assert s.next_size(remaining=100) == 7

    def test_clamped_to_remaining(self):
        assert StaticSizer(7).next_size(remaining=3) == 3

    def test_observe_is_noop(self):
        s = StaticSizer(7)
        s.observe(obs(7, 1e9))
        assert s.next_size(100) == 7

    def test_validation(self):
        with pytest.raises(ValueError):
            StaticSizer(0)

    def test_label(self):
        assert StaticSizer(7).label == "Static(7)"


class TestSamplingSizer:
    def test_probes_first(self):
        s = SamplingSizer(target_bytes=1000.0, probe_size=2, probes=2)
        assert s.next_size(100) == 2
        assert s.committed_size is None

    def test_commits_after_probes(self):
        s = SamplingSizer(target_bytes=1000.0, probe_size=2, probes=2)
        s.observe(obs(2, 100.0))  # 50 bytes/root
        s.observe(obs(2, 80.0))
        assert s.next_size(100) == 20  # 1000 / 50 (worst probe)
        assert s.committed_size == 20

    def test_uses_worst_probe(self):
        s = SamplingSizer(target_bytes=1000.0, probe_size=2, probes=2)
        s.observe(obs(2, 40.0))
        s.observe(obs(2, 200.0))  # 100 bytes/root dominates
        assert s.next_size(1000) == 10

    def test_subtracts_baseline(self):
        s = SamplingSizer(target_bytes=1000.0, probe_size=2, probes=1)
        s.observe(obs(2, 600.0, baseline=400.0))  # 100/root over baseline
        assert s.next_size(100) == 6  # (1000-400)/100

    def test_zero_memory_probe_commits_max(self):
        s = SamplingSizer(target_bytes=1000.0, probes=1, max_size=64)
        s.observe(obs(2, 0.0))
        assert s.next_size(10_000) == 64

    def test_observations_after_commit_ignored(self):
        s = SamplingSizer(target_bytes=1000.0, probes=1)
        s.observe(obs(2, 100.0))
        first = s.next_size(1000)
        s.observe(obs(first, 1e12))
        assert s.next_size(1000) == first

    def test_committed_size_at_least_one(self):
        s = SamplingSizer(target_bytes=10.0, probes=1)
        s.observe(obs(2, 1e9))
        assert s.next_size(100) == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            SamplingSizer(target_bytes=0)
        with pytest.raises(ValueError):
            SamplingSizer(target_bytes=10, probe_size=0)


class TestAdaptiveSizer:
    def test_initial_size(self):
        assert AdaptiveSizer(1000.0, initial_size=3).next_size(100) == 3

    def test_scales_toward_target(self):
        s = AdaptiveSizer(1000.0, initial_size=2)
        s.observe(obs(2, 250.0))  # used 1/4 of target -> grow 4x (capped)
        assert s.next_size(100) == 8

    def test_growth_capped(self):
        s = AdaptiveSizer(1e9, initial_size=2, max_growth=4.0)
        s.observe(obs(2, 1.0))
        assert s.next_size(10_000) == 8  # 2 * max_growth

    def test_shrinks_when_over_target(self):
        s = AdaptiveSizer(1000.0, initial_size=10)
        s.observe(obs(10, 2000.0))
        assert s.next_size(100) == 5

    def test_never_below_one(self):
        s = AdaptiveSizer(10.0, initial_size=1)
        s.observe(obs(1, 1e9))
        assert s.next_size(100) == 1

    def test_baseline_subtracted(self):
        s = AdaptiveSizer(1000.0, initial_size=4)
        s.observe(obs(4, 900.0, baseline=800.0))  # headroom 200, used 100
        assert s.next_size(100) == 8

    def test_max_size_cap(self):
        s = AdaptiveSizer(1e12, initial_size=100, max_growth=1e6, max_size=500)
        s.observe(obs(100, 1.0))
        assert s.next_size(10_000) == 500

    def test_validation(self):
        with pytest.raises(ValueError):
            AdaptiveSizer(0.0)
        with pytest.raises(ValueError):
            AdaptiveSizer(10.0, initial_size=0)
        with pytest.raises(ValueError):
            AdaptiveSizer(10.0, max_growth=1.0)
