"""Swath-size heuristics: static, sampling, adaptive."""

import pytest

from repro.scheduling import AdaptiveSizer, SamplingSizer, SizerObservation, StaticSizer


def obs(size, peak, baseline=0.0):
    return SizerObservation(swath_size=size, peak_memory=peak, baseline_memory=baseline)


class TestStaticSizer:
    def test_constant_size(self):
        s = StaticSizer(7)
        assert s.next_size(remaining=100) == 7

    def test_clamped_to_remaining(self):
        assert StaticSizer(7).next_size(remaining=3) == 3

    def test_observe_is_noop(self):
        s = StaticSizer(7)
        s.observe(obs(7, 1e9))
        assert s.next_size(100) == 7

    def test_validation(self):
        with pytest.raises(ValueError):
            StaticSizer(0)

    def test_label(self):
        assert StaticSizer(7).label == "Static(7)"


class TestSamplingSizer:
    def test_probes_first(self):
        s = SamplingSizer(target_bytes=1000.0, probe_size=2, probes=2)
        assert s.next_size(100) == 2
        assert s.committed_size is None

    def test_commits_after_probes(self):
        s = SamplingSizer(target_bytes=1000.0, probe_size=2, probes=2)
        s.observe(obs(2, 100.0))  # 50 bytes/root
        s.observe(obs(2, 80.0))
        assert s.next_size(100) == 20  # 1000 / 50 (worst probe)
        assert s.committed_size == 20

    def test_uses_worst_probe(self):
        s = SamplingSizer(target_bytes=1000.0, probe_size=2, probes=2)
        s.observe(obs(2, 40.0))
        s.observe(obs(2, 200.0))  # 100 bytes/root dominates
        assert s.next_size(1000) == 10

    def test_subtracts_baseline(self):
        s = SamplingSizer(target_bytes=1000.0, probe_size=2, probes=1)
        s.observe(obs(2, 600.0, baseline=400.0))  # 100/root over baseline
        assert s.next_size(100) == 6  # (1000-400)/100

    def test_zero_memory_probe_commits_max(self):
        s = SamplingSizer(target_bytes=1000.0, probes=1, max_size=64)
        s.observe(obs(2, 0.0))
        assert s.next_size(10_000) == 64

    def test_observations_after_commit_ignored(self):
        s = SamplingSizer(target_bytes=1000.0, probes=1)
        s.observe(obs(2, 100.0))
        first = s.next_size(1000)
        s.observe(obs(first, 1e12))
        assert s.next_size(1000) == first

    def test_committed_size_at_least_one(self):
        s = SamplingSizer(target_bytes=10.0, probes=1)
        s.observe(obs(2, 1e9))
        assert s.next_size(100) == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            SamplingSizer(target_bytes=0)
        with pytest.raises(ValueError):
            SamplingSizer(target_bytes=10, probe_size=0)


class TestAdaptiveSizer:
    def test_initial_size(self):
        assert AdaptiveSizer(1000.0, initial_size=3).next_size(100) == 3

    def test_scales_toward_target(self):
        s = AdaptiveSizer(1000.0, initial_size=2)
        s.observe(obs(2, 250.0))  # used 1/4 of target -> grow 4x (capped)
        assert s.next_size(100) == 8

    def test_growth_capped(self):
        s = AdaptiveSizer(1e9, initial_size=2, max_growth=4.0)
        s.observe(obs(2, 1.0))
        assert s.next_size(10_000) == 8  # 2 * max_growth

    def test_shrinks_when_over_target(self):
        s = AdaptiveSizer(1000.0, initial_size=10)
        s.observe(obs(10, 2000.0))
        assert s.next_size(100) == 5

    def test_never_below_one(self):
        s = AdaptiveSizer(10.0, initial_size=1)
        s.observe(obs(1, 1e9))
        assert s.next_size(100) == 1

    def test_baseline_subtracted(self):
        s = AdaptiveSizer(1000.0, initial_size=4)
        s.observe(obs(4, 900.0, baseline=800.0))  # headroom 200, used 100
        assert s.next_size(100) == 8

    def test_max_size_cap(self):
        s = AdaptiveSizer(1e12, initial_size=100, max_growth=1e6, max_size=500)
        s.observe(obs(100, 1.0))
        assert s.next_size(10_000) == 500

    def test_validation(self):
        with pytest.raises(ValueError):
            AdaptiveSizer(0.0)
        with pytest.raises(ValueError):
            AdaptiveSizer(10.0, initial_size=0)
        with pytest.raises(ValueError):
            AdaptiveSizer(10.0, max_growth=1.0)


# ----------------------------------------------------------------------
# Static seeding from a cost profile + decision observability
# ----------------------------------------------------------------------
class TestProfileSeeding:
    @staticmethod
    def bc_profile():
        from repro.algorithms.bc import BCProgram
        from repro.check import profile_of

        return profile_of(BCProgram)

    def test_sampling_from_profile_single_model_sized_probe(self):
        from repro.check import estimate_bytes_per_root

        profile = self.bc_profile()
        target = 1e6
        s = SamplingSizer.from_profile(
            profile, target, num_vertices=500, num_edges=4000, num_workers=4
        )
        assert s.probes == 1  # one verification window, not a cold sweep
        prior = int(
            target
            / estimate_bytes_per_root(
                profile, num_vertices=500, num_edges=4000, num_workers=4
            )
        )
        assert s.probe_size == max(1, prior // 2)
        assert s.probe_size > SamplingSizer(target).probe_size

    def test_sampling_from_profile_commits_after_one_window(self):
        s = SamplingSizer.from_profile(
            self.bc_profile(), 1e6, num_vertices=500, num_edges=4000,
            num_workers=4,
        )
        probe = s.next_size(10_000)
        assert s.committed_size is None
        s.observe(obs(probe, 1000.0 * probe))
        assert s.next_size(10_000) == 1000  # 1e6 / 1000 per root
        assert s.probe_swaths_used == 1

    def test_adaptive_from_profile_seeds_initial_size(self):
        s = AdaptiveSizer.from_profile(
            self.bc_profile(), 1e6, num_vertices=500, num_edges=4000,
            num_workers=4,
        )
        assert s.next_size(10_000) > AdaptiveSizer(1e6).next_size(10_000)

    def test_probe_swaths_used_counts_only_probes(self):
        s = SamplingSizer(1000.0, probe_size=2, probes=2)
        assert s.probe_swaths_used == 0
        s.observe(obs(2, 100.0))
        s.observe(obs(2, 100.0))
        s.next_size(100)
        s.observe(obs(20, 100.0))  # post-commit: not a probe
        assert s.probe_swaths_used == 2


class TestSizerMetrics:
    def test_sampling_emits_size_and_probe_series(self):
        from repro.obs import MetricsRegistry

        registry = MetricsRegistry()
        s = SamplingSizer(1000.0, probe_size=2, probes=1)
        s.metrics = registry
        s.next_size(100)
        s.observe(obs(2, 200.0))  # 100 bytes/root
        s.next_size(100)
        assert registry.gauge("repro_swath_size", sizer=s.label).value == 10
        assert (
            registry.gauge(
                "repro_swath_probe_mem_bytes", sizer=s.label
            ).value
            == 200.0
        )

    def test_adaptive_emits_series(self):
        from repro.obs import MetricsRegistry

        registry = MetricsRegistry()
        s = AdaptiveSizer(1000.0, initial_size=2)
        s.metrics = registry
        s.observe(obs(2, 250.0))
        s.next_size(100)
        assert registry.gauge("repro_swath_size", sizer="Adaptive").value == 8
        assert (
            registry.gauge(
                "repro_swath_probe_mem_bytes", sizer="Adaptive"
            ).value
            == 250.0
        )

    def test_no_registry_is_silent(self):
        s = SamplingSizer(1000.0)
        s.observe(obs(2, 100.0))
        assert s.next_size(10) >= 1  # no metrics slot: plain behaviour

    def test_controller_propagates_registry_into_sizer(self):
        from repro.obs import MetricsRegistry
        from repro.scheduling import SwathController

        registry = MetricsRegistry()
        sizer = SamplingSizer(1000.0)
        SwathController(
            roots=[1, 2, 3],
            start_factory=lambda roots: [(int(r), ()) for r in roots],
            sizer=sizer,
            metrics=registry,
        )
        assert sizer.metrics is registry

    def test_controller_keeps_sizer_private_registry(self):
        from repro.obs import MetricsRegistry
        from repro.scheduling import SwathController

        own = MetricsRegistry()
        sizer = SamplingSizer(1000.0)
        sizer.metrics = own
        SwathController(
            roots=[1],
            start_factory=lambda roots: [],
            sizer=sizer,
            metrics=MetricsRegistry(),
        )
        assert sizer.metrics is own


# ----------------------------------------------------------------------
# Acceptance: model-seeded sampling beats cold start on the BC scenario
# ----------------------------------------------------------------------
def test_seeded_sampler_commits_in_strictly_fewer_probe_swaths():
    from repro.analysis import RunConfig, run_traversal
    from repro.check import profile_of
    from repro.algorithms.bc import BCProgram
    from repro.graph import generators as gen

    graph = gen.watts_strogatz(300, 6, 0.05, seed=7)
    cfg = RunConfig(num_workers=4, max_supersteps=5000)
    roots = list(range(24))
    # Sized so the model prior (~21 roots) stays below |roots|: the seeded
    # probe swath must leave roots pending, or no window ever closes.
    target = 5e5

    cold = SamplingSizer(target)
    seeded = SamplingSizer.from_profile(
        profile_of(BCProgram), target,
        num_vertices=graph.num_vertices, num_edges=graph.num_edges,
        num_workers=cfg.num_workers,
    )
    for sizer in (cold, seeded):
        run = run_traversal(graph, cfg, roots, kind="bc", sizer=sizer)
        assert run.controller.completed_all
        assert sizer.committed_size is not None, sizer.label
    assert seeded.probe_swaths_used < cold.probe_swaths_used
