"""Swath-initiation policies: sequential, static-N, dynamic peak detection."""

import pytest

from repro.scheduling import (
    DynamicPeakDetect,
    InitiationContext,
    SequentialInitiation,
    StaticEveryN,
)


def ctx(history, steps_since=None, quiescent=False, superstep=None):
    return InitiationContext(
        superstep=superstep if superstep is not None else len(history),
        steps_since_initiation=(
            steps_since if steps_since is not None else len(history)
        ),
        messages_history=list(history),
        quiescent=quiescent,
    )


class TestSequential:
    def test_only_on_quiescence(self):
        p = SequentialInitiation()
        assert not p.should_initiate(ctx([10, 20, 5]))
        assert p.should_initiate(ctx([10, 20, 0], quiescent=True))

    def test_label(self):
        assert SequentialInitiation().label == "Sequential"


class TestStaticEveryN:
    def test_fires_every_n(self):
        p = StaticEveryN(4)
        assert not p.should_initiate(ctx([1, 2, 3], steps_since=3))
        assert p.should_initiate(ctx([1, 2, 3, 4], steps_since=4))

    def test_fires_on_quiescence_regardless(self):
        p = StaticEveryN(100)
        assert p.should_initiate(ctx([1], steps_since=1, quiescent=True))

    def test_validation(self):
        with pytest.raises(ValueError):
            StaticEveryN(0)

    def test_label(self):
        assert StaticEveryN(6).label == "Static-6"


class TestDynamicPeakDetect:
    def test_detects_rise_then_fall(self):
        p = DynamicPeakDetect()
        assert not p.should_initiate(ctx([10]))
        assert not p.should_initiate(ctx([10, 50]))  # rising
        assert p.should_initiate(ctx([10, 50, 30]))  # fell: peak passed

    def test_no_fire_on_monotone_rise(self):
        p = DynamicPeakDetect()
        for i in range(2, 8):
            assert not p.should_initiate(ctx(list(range(i))))

    def test_no_fire_without_prior_rise(self):
        # Strictly decreasing from the start: no phase change detected
        # (but quiescence will eventually fire).
        p = DynamicPeakDetect()
        assert not p.should_initiate(ctx([50, 30]))
        assert not p.should_initiate(ctx([50, 30, 10]))

    def test_reset_clears_rise_memory(self):
        p = DynamicPeakDetect()
        p.should_initiate(ctx([10, 50]))
        p.reset()
        assert not p.should_initiate(ctx([40, 20]))  # fall without rise

    def test_fires_on_quiescence(self):
        p = DynamicPeakDetect()
        assert p.should_initiate(ctx([5, 0], quiescent=True))

    def test_plateau_then_fall(self):
        p = DynamicPeakDetect()
        p.should_initiate(ctx([10, 50]))
        assert not p.should_initiate(ctx([10, 50, 50]))  # plateau: no fall
        assert p.should_initiate(ctx([10, 50, 50, 20]))

    def test_short_history_never_fires(self):
        p = DynamicPeakDetect()
        assert not p.should_initiate(ctx([]))
        assert not p.should_initiate(ctx([100]))
