"""SwathController: root coverage, correctness-invariance, event log."""

import numpy as np
import pytest

from repro.algorithms import BCProgram, betweenness_reference
from repro.algorithms import bc as bc_mod
from repro.bsp import JobSpec, run_job
from repro.scheduling import (
    AdaptiveSizer,
    DynamicPeakDetect,
    SamplingSizer,
    SequentialInitiation,
    StaticEveryN,
    StaticSizer,
    SwathController,
)


def run_with(graph, roots, sizer, initiation, workers=4):
    ctrl = SwathController(
        roots=list(roots), start_factory=bc_mod.start_messages,
        sizer=sizer, initiation=initiation,
    )
    res = run_job(
        JobSpec(
            program=BCProgram(), graph=graph, num_workers=workers,
            initially_active=False, observers=[ctrl],
        )
    )
    return res, ctrl


class TestRootCoverage:
    def test_every_root_started_exactly_once(self, small_world):
        roots = list(range(17))
        res, ctrl = run_with(
            small_world, roots, StaticSizer(5), SequentialInitiation()
        )
        started = [r for e in ctrl.events for r in e.roots]
        assert sorted(started) == roots
        assert ctrl.completed_all

    def test_duplicate_roots_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            SwathController(roots=[1, 1], start_factory=bc_mod.start_messages)

    def test_empty_roots_job_ends_immediately(self, small_world):
        res, ctrl = run_with(small_world, [], StaticSizer(5), SequentialInitiation())
        assert res.supersteps == 0
        assert ctrl.num_swaths == 0

    @pytest.mark.parametrize(
        "initiation",
        [SequentialInitiation(), StaticEveryN(3), DynamicPeakDetect()],
        ids=["seq", "static3", "dynamic"],
    )
    def test_no_roots_stranded_under_any_policy(self, small_world, initiation):
        res, ctrl = run_with(small_world, range(12), StaticSizer(4), initiation)
        assert ctrl.completed_all
        assert res.halted


class TestCorrectnessInvariance:
    """Scheduling must not change results — only resource profiles."""

    @pytest.fixture(scope="class")
    def reference(self):
        from repro.graph import generators as gen

        g = gen.watts_strogatz(60, 4, 0.3, seed=7)
        return g, betweenness_reference(g, roots=range(15))

    @pytest.mark.parametrize(
        "sizer_fn,initiation_fn",
        [
            (lambda: StaticSizer(15), SequentialInitiation),
            (lambda: StaticSizer(4), SequentialInitiation),
            (lambda: StaticSizer(4), lambda: StaticEveryN(2)),
            (lambda: StaticSizer(4), DynamicPeakDetect),
            (lambda: SamplingSizer(1 << 19), SequentialInitiation),
            (lambda: AdaptiveSizer(1 << 19), DynamicPeakDetect),
        ],
        ids=["one-swath", "seq4", "static2", "dynamic", "sampling", "adaptive"],
    )
    def test_bc_results_invariant(self, reference, sizer_fn, initiation_fn):
        g, ref = reference
        res, ctrl = run_with(g, range(15), sizer_fn(), initiation_fn())
        assert np.allclose(res.values_array(), ref, atol=1e-9)
        assert ctrl.completed_all

    def test_total_messages_invariant_across_schedules(self, reference):
        g, _ = reference
        a, _ = run_with(g, range(15), StaticSizer(15), SequentialInitiation())
        b, _ = run_with(g, range(15), StaticSizer(3), DynamicPeakDetect())
        assert a.trace.total_messages == b.trace.total_messages


class TestEvents:
    def test_event_metadata(self, small_world):
        res, ctrl = run_with(
            small_world, range(10), StaticSizer(4), SequentialInitiation()
        )
        sizes = [e.size for e in ctrl.events]
        assert sizes == [4, 4, 2]
        assert ctrl.events[0].superstep == -1  # initial injection
        assert ctrl.events[-1].remaining_after == 0

    def test_smaller_swaths_mean_more_swaths(self, small_world):
        _, big = run_with(small_world, range(12), StaticSizer(12), SequentialInitiation())
        _, small = run_with(small_world, range(12), StaticSizer(3), SequentialInitiation())
        assert small.num_swaths == 4 > big.num_swaths == 1

    def test_overlap_reduces_supersteps(self, small_world):
        seq, _ = run_with(small_world, range(12), StaticSizer(3), SequentialInitiation())
        dyn, _ = run_with(small_world, range(12), StaticSizer(3), DynamicPeakDetect())
        assert dyn.supersteps < seq.supersteps

    def test_smaller_swaths_lower_peak_memory(self, small_world):
        big, _ = run_with(small_world, range(12), StaticSizer(12), SequentialInitiation())
        small, _ = run_with(small_world, range(12), StaticSizer(3), SequentialInitiation())
        assert small.trace.peak_memory < big.trace.peak_memory


class TestWithAPSP:
    def test_apsp_under_swaths_matches_reference(self, small_world):
        from repro.algorithms import APSPProgram, apsp_reference
        from repro.algorithms import apsp as apsp_mod

        ctrl = SwathController(
            roots=list(range(8)), start_factory=apsp_mod.start_messages,
            sizer=StaticSizer(3), initiation=DynamicPeakDetect(),
        )
        res = run_job(
            JobSpec(
                program=APSPProgram(), graph=small_world, num_workers=4,
                initially_active=False, observers=[ctrl],
            )
        )
        ref = apsp_reference(small_world, roots=range(8))
        for v in range(small_world.num_vertices):
            for r in range(8):
                expected = ref[r][v]
                got = res.values[v].get(r, -1)
                assert got == expected
