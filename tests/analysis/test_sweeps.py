"""Parameter-sweep utility."""

import pytest

from repro.analysis.sweeps import SweepRecord, SweepResult, sweep


def toy_run(a, b):
    return {"sum": a + b, "prod": a * b}


class TestSweep:
    def test_covers_full_grid(self):
        res = sweep({"a": [1, 2, 3], "b": [10, 20]}, toy_run)
        assert len(res) == 6
        assert set(res.param_names) == {"a", "b"}
        assert set(res.metric_names) == {"sum", "prod"}

    def test_metrics_correct_per_cell(self):
        res = sweep({"a": [2], "b": [5]}, toy_run)
        rec = res.records[0]
        assert rec["sum"] == 7
        assert rec["prod"] == 10
        assert rec["a"] == 2

    def test_where_filters(self):
        res = sweep({"a": [1, 2], "b": [10, 20]}, toy_run)
        sub = res.where(a=2)
        assert len(sub) == 2
        assert all(r["a"] == 2 for r in sub.records)

    def test_series_sorted_by_x(self):
        res = sweep({"a": [3, 1, 2], "b": [10]}, toy_run)
        assert res.series("a", "sum", b=10) == [(1, 11), (2, 12), (3, 13)]

    def test_column(self):
        res = sweep({"a": [1, 2], "b": [0]}, toy_run)
        assert sorted(res.column("sum")) == [1, 2]

    def test_render_table(self):
        res = sweep({"a": [1], "b": [2]}, toy_run)
        out = res.render(title="toy")
        assert "toy" in out and "sum" in out and "prod" in out

    def test_empty_grid_rejected(self):
        with pytest.raises(ValueError):
            sweep({}, toy_run)

    def test_inconsistent_metrics_rejected(self):
        def flaky(a):
            return {"x": 1} if a == 1 else {"y": 2}

        with pytest.raises(ValueError, match="inconsistent"):
            sweep({"a": [1, 2]}, flaky)

    def test_record_getitem_unknown_key(self):
        rec = SweepRecord(params={"a": 1}, metrics={"m": 2.0})
        with pytest.raises(KeyError):
            rec["nope"]
