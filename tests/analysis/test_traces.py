"""Trace export round trips."""

import numpy as np
import pytest

from repro.algorithms import PageRankProgram
from repro.analysis.traces import (
    read_json,
    to_csv_text,
    trace_from_dict,
    trace_to_dict,
    write_csv,
    write_json,
)
from repro.bsp import JobSpec, run_job
from repro.graph import generators as gen


@pytest.fixture(scope="module")
def trace():
    g = gen.watts_strogatz(40, 4, 0.2, seed=4)
    return run_job(JobSpec(program=PageRankProgram(6), graph=g, num_workers=3)).trace


class TestJsonRoundTrip:
    def test_dict_round_trip_is_lossless(self, trace):
        back = trace_from_dict(trace_to_dict(trace))
        assert len(back) == len(trace)
        assert back.total_time == pytest.approx(trace.total_time)
        assert np.array_equal(back.series_messages(), trace.series_messages())
        assert np.array_equal(
            back.series_messages_per_worker(), trace.series_messages_per_worker()
        )
        assert back.utilization() == pytest.approx(trace.utilization())

    def test_file_round_trip(self, trace, tmp_path):
        p = tmp_path / "t.json"
        write_json(trace, p)
        back = read_json(p)
        assert back.series_peak_memory().tolist() == trace.series_peak_memory().tolist()

    def test_unknown_version_rejected(self):
        with pytest.raises(ValueError, match="version"):
            trace_from_dict({"version": 99, "steps": []})

    def test_empty_trace(self):
        from repro.bsp.superstep import JobTrace

        back = trace_from_dict(trace_to_dict(JobTrace()))
        assert len(back) == 0


class TestCsv:
    def test_header_and_row_count(self, trace):
        text = to_csv_text(trace)
        lines = text.strip().splitlines()
        expected_rows = sum(max(1, len(s.workers)) for s in trace)
        assert len(lines) == expected_rows + 1
        assert lines[0].startswith("index,num_workers")

    def test_write_csv_file(self, trace, tmp_path):
        p = tmp_path / "t.csv"
        write_csv(trace, p)
        assert p.read_text().count("\n") > len(trace)


class TestCLI:
    def test_cli_info_and_run(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "g.txt"
        assert main(["generate", "--dataset", "SD", "--scale", "0.1",
                     "--out", str(out)]) == 0
        assert main(["info", "--graph", str(out)]) == 0
        assert main(["partition", "--graph", str(out), "--workers", "4",
                     "--strategy", "metis"]) == 0
        assert main(["advise", "--graph", str(out), "--workers", "4"]) == 0
        trace_out = tmp_path / "trace.json"
        assert main(["run", "--graph", str(out), "--app", "bc", "--roots", "6",
                     "--workers", "4", "--sizer", "static", "--swath", "3",
                     "--initiation", "dynamic",
                     "--trace-out", str(trace_out)]) == 0
        captured = capsys.readouterr().out
        assert "simulated time" in captured
        back = read_json(trace_out)
        assert len(back) > 0

    def test_cli_pagerank(self, capsys):
        from repro.cli import main

        assert main(["run", "--dataset", "SD", "--scale", "0.1",
                     "--app", "pagerank", "--iterations", "5",
                     "--workers", "2"]) == 0
        assert "pagerank: 6 supersteps" in capsys.readouterr().out

    def test_cli_requires_graph_source(self):
        from repro.cli import main

        with pytest.raises(SystemExit):
            main(["info"])

    def test_cli_generate_requires_dataset(self, tmp_path):
        from repro.cli import main

        with pytest.raises(SystemExit):
            main(["generate", "--graph", "x", "--out", str(tmp_path / "o")])
