"""Trace export round trips."""

import numpy as np
import pytest

from repro.algorithms import PageRankProgram
from repro.analysis.traces import (
    read_json,
    to_csv_text,
    trace_from_dict,
    trace_to_dict,
    write_csv,
    write_json,
)
from repro.bsp import JobSpec, run_job
from repro.graph import generators as gen


@pytest.fixture(scope="module")
def trace():
    g = gen.watts_strogatz(40, 4, 0.2, seed=4)
    return run_job(JobSpec(program=PageRankProgram(6), graph=g, num_workers=3)).trace


class TestJsonRoundTrip:
    def test_dict_round_trip_is_lossless(self, trace):
        back = trace_from_dict(trace_to_dict(trace))
        assert len(back) == len(trace)
        assert back.total_time == pytest.approx(trace.total_time)
        assert np.array_equal(back.series_messages(), trace.series_messages())
        assert np.array_equal(
            back.series_messages_per_worker(), trace.series_messages_per_worker()
        )
        assert back.utilization() == pytest.approx(trace.utilization())

    def test_file_round_trip(self, trace, tmp_path):
        p = tmp_path / "t.json"
        write_json(trace, p)
        back = read_json(p)
        assert back.series_peak_memory().tolist() == trace.series_peak_memory().tolist()

    def test_unknown_version_rejected(self):
        with pytest.raises(ValueError, match="version"):
            trace_from_dict({"version": 99, "steps": []})

    def test_empty_trace(self):
        from repro.bsp.superstep import JobTrace

        back = trace_from_dict(trace_to_dict(JobTrace()))
        assert len(back) == 0


class TestCsv:
    def test_header_and_row_count(self, trace):
        text = to_csv_text(trace)
        lines = text.strip().splitlines()
        expected_rows = sum(max(1, len(s.workers)) for s in trace)
        assert len(lines) == expected_rows + 1
        assert lines[0].startswith("index,num_workers")

    def test_write_csv_file(self, trace, tmp_path):
        p = tmp_path / "t.csv"
        write_csv(trace, p)
        assert p.read_text().count("\n") > len(trace)


class TestCLI:
    def test_cli_info_and_run(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "g.txt"
        assert main(["generate", "--dataset", "SD", "--scale", "0.1",
                     "--out", str(out)]) == 0
        assert main(["info", "--graph", str(out)]) == 0
        assert main(["partition", "--graph", str(out), "--workers", "4",
                     "--strategy", "metis"]) == 0
        assert main(["advise", "--graph", str(out), "--workers", "4"]) == 0
        trace_out = tmp_path / "trace.json"
        assert main(["run", "--graph", str(out), "--app", "bc", "--roots", "6",
                     "--workers", "4", "--sizer", "static", "--swath", "3",
                     "--initiation", "dynamic",
                     "--trace-out", str(trace_out)]) == 0
        captured = capsys.readouterr().out
        assert "simulated time" in captured
        back = read_json(trace_out)
        assert len(back) > 0

    def test_cli_pagerank(self, capsys):
        from repro.cli import main

        assert main(["run", "--dataset", "SD", "--scale", "0.1",
                     "--app", "pagerank", "--iterations", "5",
                     "--workers", "2"]) == 0
        assert "pagerank: 6 supersteps" in capsys.readouterr().out

    def test_cli_requires_graph_source(self):
        from repro.cli import main

        with pytest.raises(SystemExit):
            main(["info"])

    def test_cli_generate_requires_dataset(self, tmp_path):
        from repro.cli import main

        with pytest.raises(SystemExit):
            main(["generate", "--graph", "x", "--out", str(tmp_path / "o")])


class TestFullFieldFidelity:
    """Version-2 format: disk/jitter/injection fields survive the trip."""

    @pytest.fixture(scope="class")
    def rich_trace(self):
        from repro.analysis import RunConfig, run_traversal
        from repro.cloud.costmodel import DEFAULT_PERF_MODEL
        from dataclasses import replace

        g = gen.watts_strogatz(48, 4, 0.2, seed=7)
        model = replace(
            DEFAULT_PERF_MODEL, disk_buffering=True, jitter=0.3, jitter_seed=5
        )
        cfg = RunConfig(num_workers=3, perf_model=model)
        run = run_traversal(g, cfg, roots=range(6), kind="bc")
        return run.result.trace

    def test_fields_are_exercised(self, rich_trace):
        workers = [w for s in rich_trace for w in s.workers]
        assert any(w.disk_time > 0 for w in workers)
        assert any(w.jitter_factor != 1.0 for w in workers)
        assert any(s.injected > 0 for s in rich_trace)

    def test_round_trip_full_field_equality(self, rich_trace):
        from repro.analysis.traces import _STEP_FIELDS, _WORKER_FIELDS

        back = trace_from_dict(trace_to_dict(rich_trace))
        assert len(back) == len(rich_trace)
        for orig, copy in zip(rich_trace, back):
            for f in _STEP_FIELDS:
                assert getattr(copy, f) == getattr(orig, f), f
            assert len(copy.workers) == len(orig.workers)
            for ow, cw in zip(orig.workers, copy.workers):
                for f in _WORKER_FIELDS:
                    assert getattr(cw, f) == getattr(ow, f), f

    def test_version_3_is_declared(self, rich_trace):
        data = trace_to_dict(rich_trace)
        assert data["version"] == 3
        assert "disk_time" in data["steps"][0]["workers"][0]
        assert "jitter_factor" in data["steps"][0]["workers"][0]
        assert "queue_depth" in data["steps"][0]["workers"][0]
        assert "injected" in data["steps"][0]

    def test_version_2_files_still_read(self, rich_trace):
        data = trace_to_dict(rich_trace)
        data["version"] = 2
        for sd in data["steps"]:
            for wd in sd["workers"]:
                wd.pop("queue_depth")
        back = trace_from_dict(data)
        assert len(back) == len(rich_trace)
        assert all(w.queue_depth == 0 for s in back for w in s.workers)
        assert back.total_time == pytest.approx(rich_trace.total_time)

    def test_version_1_files_still_read(self, rich_trace):
        data = trace_to_dict(rich_trace)
        data["version"] = 1
        for sd in data["steps"]:
            sd.pop("injected")
            for wd in sd["workers"]:
                wd.pop("disk_time")
                wd.pop("jitter_factor")
                wd.pop("queue_depth")
        back = trace_from_dict(data)
        assert len(back) == len(rich_trace)
        # the dropped fields come back as their dataclass defaults
        assert all(s.injected == 0 for s in back)
        assert all(w.disk_time == 0.0 for s in back for w in s.workers)
        assert all(w.jitter_factor == 1.0 for s in back for w in s.workers)
        # everything else is preserved
        assert back.total_time == pytest.approx(rich_trace.total_time)
        assert np.array_equal(
            back.series_messages(), rich_trace.series_messages()
        )

    def test_csv_includes_new_columns(self, rich_trace):
        header = to_csv_text(rich_trace).splitlines()[0].split(",")
        assert "disk_time" in header
        assert "jitter_factor" in header
        assert "injected" in header


class TestElasticCsv:
    def test_csv_on_elastic_trace_with_varying_workers(self):
        from repro.elastic.live import LiveElasticEngine, LivePolicy

        class Alternate(LivePolicy):
            def decide(self, engine, stats):
                return 2 if stats.index % 2 else 4

        g = gen.watts_strogatz(40, 4, 0.2, seed=4)
        job = JobSpec(program=PageRankProgram(6), graph=g, num_workers=4)
        trace = LiveElasticEngine(job, Alternate()).run().trace

        text = to_csv_text(trace)
        lines = text.strip().splitlines()
        header = lines[0].split(",")
        wcol = header.index("num_workers")
        widcol = header.index("worker")
        sizes = {int(row.split(",")[wcol]) for row in lines[1:]}
        assert sizes == {2, 4}  # the fleet really varied
        expected_rows = sum(max(1, len(s.workers)) for s in trace)
        assert len(lines) == expected_rows + 1
        # per-step worker rows match that step's fleet size
        by_step = {}
        for row in lines[1:]:
            cells = row.split(",")
            by_step.setdefault(int(cells[0]), []).append(int(cells[widcol]))
        for idx, ids in by_step.items():
            assert ids == list(range(len(ids)))
            assert len(ids) == trace[idx].num_workers

        back = trace_from_dict(trace_to_dict(trace))
        assert [s.num_workers for s in back] == [s.num_workers for s in trace]
