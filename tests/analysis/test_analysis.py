"""Experiment harness: runners, extrapolation, tables, scenarios."""

import numpy as np
import pytest

from repro.analysis import (
    RunConfig,
    calibrate_worker_memory,
    extrapolate_runtime,
    paper_partitioners,
    run_pagerank,
    run_traversal,
    tables,
)
from repro.cloud.costmodel import SCALED_PERF_MODEL
from repro.graph import generators as gen
from repro.scheduling import StaticSizer


@pytest.fixture(scope="module")
def graph():
    return gen.watts_strogatz(80, 4, 0.3, seed=3)


@pytest.fixture(scope="module")
def cfg():
    return RunConfig(num_workers=4, perf_model=SCALED_PERF_MODEL)


class TestRunners:
    def test_run_pagerank(self, graph, cfg):
        res = run_pagerank(graph, cfg, iterations=5)
        assert res.halted
        assert res.values_array().sum() == pytest.approx(1.0)

    def test_run_traversal_bc(self, graph, cfg):
        run = run_traversal(graph, cfg, roots=range(6), kind="bc")
        assert run.num_swaths == 1
        assert run.total_time > 0
        from repro.algorithms import betweenness_reference

        assert np.allclose(
            run.result.values_array(), betweenness_reference(graph, roots=range(6))
        )

    def test_run_traversal_apsp(self, graph, cfg):
        run = run_traversal(graph, cfg, roots=[0, 1], kind="apsp")
        assert run.result.values[5][0] >= 1

    def test_unknown_kind(self, graph, cfg):
        with pytest.raises(ValueError, match="unknown traversal kind"):
            run_traversal(graph, cfg, roots=[0], kind="dfs")

    def test_with_memory_swaps_spec(self, cfg):
        c2 = cfg.with_memory(12345)
        assert c2.vm_spec.memory_bytes == 12345
        assert c2.num_workers == cfg.num_workers

    def test_calibrate_memory_sets_overflow(self, graph, cfg):
        cap = calibrate_worker_memory(graph, cfg, range(10), headroom=1.25)
        probe = run_traversal(
            graph, cfg.with_memory(1 << 62), range(10), sizer=StaticSizer(10)
        )
        assert probe.result.trace.peak_memory / cap == pytest.approx(1.25, rel=1e-3)

    def test_calibrate_invalid_headroom(self, graph, cfg):
        with pytest.raises(ValueError):
            calibrate_worker_memory(graph, cfg, range(4), headroom=0)


class TestAutoProfile:
    def test_run_pagerank_records_profile(self, graph, cfg):
        from repro.check import FanoutClass

        res = run_pagerank(graph, cfg, iterations=3)
        assert res.profile is not None
        assert res.profile.program == "PageRankProgram"
        assert res.profile.fanout is FanoutClass.OUT_DEGREE

    def test_run_traversal_records_broadcast_profile(self, graph, cfg):
        run = run_traversal(graph, cfg, roots=range(4), kind="bc")
        assert run.profile is not None
        assert run.profile.fanout.value == "broadcast"
        assert run.profile is run.result.profile

    def test_auto_profile_disabled(self, graph):
        cfg = RunConfig(num_workers=2, auto_profile=False)
        assert run_pagerank(graph, cfg, iterations=2).profile is None

    def test_profile_gauges_emitted(self, graph):
        from repro.check import FanoutClass
        from repro.obs import MetricsRegistry

        registry = MetricsRegistry()
        cfg = RunConfig(num_workers=2, metrics=registry)
        run_pagerank(graph, cfg, iterations=2)
        fanout = registry.gauge(
            "repro_program_fanout_level", program="PageRankProgram"
        )
        payload = registry.gauge(
            "repro_program_payload_nbytes", program="PageRankProgram"
        )
        assert fanout.value == FanoutClass.OUT_DEGREE.level
        assert payload.value == 8


class TestExtrapolation:
    def test_pro_rata(self):
        e = extrapolate_runtime(100.0, roots_measured=50, roots_total=500)
        assert e.projected_seconds == pytest.approx(1000.0)
        assert e.scale_factor == 10.0
        assert e.projected_hours == pytest.approx(1000 / 3600)

    def test_validation(self):
        with pytest.raises(ValueError):
            extrapolate_runtime(10.0, 0, 10)
        with pytest.raises(ValueError):
            extrapolate_runtime(10.0, 20, 10)
        with pytest.raises(ValueError):
            extrapolate_runtime(-1.0, 1, 10)

    def test_extrapolation_is_accurate_for_bc(self, graph, cfg):
        """The paper's §V claim, verified on the simulated engine.

        Extrapolation assumes the measured run uses the same swath structure
        as the projected run (the paper runs fixed-size swaths for 4 hours);
        projecting one 5-root swath to the 4-swath schedule of 20 roots is
        accurate pro-rata.
        """
        small = run_traversal(graph, cfg, roots=range(5), kind="bc")
        large = run_traversal(
            graph, cfg, roots=range(20), kind="bc", sizer=StaticSizer(5)
        )
        projected = extrapolate_runtime(small.total_time, 5, 20).projected_seconds
        assert projected == pytest.approx(large.total_time, rel=0.15)


class TestTables:
    def test_table_renders_aligned(self):
        out = tables.table(["a", "bb"], [[1, 2.5], [30, "x"]], title="T")
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bb" in lines[1]
        assert len(lines) == 5

    def test_series(self):
        assert "lbl" in tables.series([1, 2, 3], label="lbl")

    def test_bar(self):
        assert tables.bar(5, 10, width=10) == "#####"
        assert tables.bar(20, 10, width=10) == "#" * 10
        assert tables.bar(1, 0) == ""

    def test_sparkline_shapes(self):
        s = tables.sparkline([0, 1, 2, 3, 4, 5])
        assert len(s) == 6
        assert s[0] == "▁" and s[-1] == "█"

    def test_sparkline_downsamples(self):
        s = tables.sparkline(range(1000), width=40)
        assert len(s) == 40

    def test_sparkline_empty_and_flat(self):
        assert tables.sparkline([]) == ""
        assert set(tables.sparkline([0, 0, 0])) == {"▁"}

    def test_paper_vs_measured(self):
        out = tables.paper_vs_measured([("speedup", "3.5x", "3.1x")])
        assert "paper" in out and "3.5x" in out


class TestScenarios:
    def test_paper_partitioners_keys(self):
        parts = paper_partitioners()
        assert set(parts) == {"Hash", "METIS", "Streaming"}

    def test_bc_scenario_calibration(self):
        from repro.analysis import bc_scenario

        sc = bc_scenario("WG", scale=0.15, num_workers=4)
        assert sc.capacity_bytes > 0
        assert sc.target_bytes < sc.capacity_bytes
        assert sc.elastic_swath >= 2
        cfg = sc.config()
        assert cfg.vm_spec.memory_bytes == sc.capacity_bytes
        assert sc.unconstrained_config().vm_spec.memory_bytes > (1 << 60)

    def test_bc_scenario_cached(self):
        from repro.analysis import bc_scenario

        a = bc_scenario("WG", scale=0.15, num_workers=4)
        b = bc_scenario("WG", scale=0.15, num_workers=4)
        assert a is b

    def test_bc_scenario_too_many_roots(self):
        from repro.analysis import bc_scenario

        with pytest.raises(ValueError):
            bc_scenario("WG", scale=0.05, num_roots=10_000)
