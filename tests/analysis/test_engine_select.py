"""Static engine auto-selection: ranking, exclusions, runner wiring."""

from __future__ import annotations

import json

import pytest

from repro.algorithms import (
    BCProgram,
    ConnectedComponentsProgram,
    KCoreProgram,
    LabelPropagationProgram,
    PageRankProgram,
    SSSPProgram,
    WCCProgram,
)
from repro.analysis.engine_select import (
    EngineDecision,
    dense_refused_features,
    select_engine,
)
from repro.analysis.runner import RunConfig, run_pagerank, run_traversal
from repro.check.costmodel import profile_of
from repro.check.vectorize import lift_of
from repro.graph import generators as gen

SIX_LIFTED = [
    PageRankProgram(iterations=5),
    SSSPProgram(source=0),
    ConnectedComponentsProgram(),
    WCCProgram(),
    KCoreProgram(k=2),
    LabelPropagationProgram(max_rounds=10),
]


def _decide(program, **kwargs) -> EngineDecision:
    return select_engine(
        verdict=lift_of(program), profile=profile_of(program), **kwargs
    )


def test_all_six_lifted_algorithms_select_dense_ref():
    for program in SIX_LIFTED:
        decision = _decide(program, num_workers=4)
        assert decision.engine == "dense-ref", (
            type(program).__name__, decision.render(),
        )
        assert any("KernelPlan" in r for r in decision.reasons)
        assert decision.ranking[0] == ("dense-ref", 100)
        assert not decision.hazards


def test_refused_program_falls_back_with_recorded_reason():
    decision = _decide(BCProgram(), num_workers=4)
    assert decision.engine == "process"  # picklable, multi-worker
    dense_reasons = [r for e, r in decision.excluded if e == "dense-ref"]
    assert dense_reasons and "RPC016" in dense_reasons[0]


def test_job_features_exclude_dense_ref():
    program = PageRankProgram(iterations=5)
    features = dense_refused_features(
        program, lift_of(program),
        observers=[object()], sanitize=True, sinks=["metrics"],
    )
    assert len(features) == 3
    decision = select_engine(
        verdict=lift_of(program), profile=profile_of(program),
        num_workers=4, features=features,
    )
    assert decision.engine != "dense-ref"
    assert sum(1 for e, _ in decision.excluded if e == "dense-ref") == 3


def test_flight_recorder_is_not_a_dense_blocker():
    program = PageRankProgram(iterations=5)
    assert dense_refused_features(program, lift_of(program)) == []


def test_pickle_risks_exclude_process_and_tcp():
    class Unpicklable(BCProgram):
        pass

    profile = profile_of(BCProgram())
    assert not profile.pickle_risks  # sanity: BC itself is picklable

    class FakeRisk:
        line = 7
        detail = "a lambda (unpicklable function object)"

    class FakeProfile:
        fanout = profile.fanout
        pickle_risks = (FakeRisk(),)

    decision = select_engine(
        verdict=None, profile=FakeProfile(), num_workers=4,
        tcp_hosts=[("h", 1)],
    )
    assert decision.engine == "threaded"
    excluded = dict(decision.excluded)
    assert "RPC011" in excluded["process"]
    assert "RPC011" in excluded["tcp"]
    del Unpicklable


def test_tcp_needs_endpoints():
    decision = _decide(BCProgram(), num_workers=4)
    assert ("tcp", "no worker endpoints configured (--hosts)") in \
        decision.excluded
    with_hosts = _decide(
        BCProgram(), num_workers=4, tcp_hosts=[("127.0.0.1", 9000)]
    )
    assert with_hosts.ranking[0][0] in ("tcp", "dense-ref")
    assert with_hosts.engine == "tcp"


def test_single_worker_prefers_sim_fallback():
    decision = _decide(BCProgram(), num_workers=1)
    assert decision.engine == "sim"
    assert any("sequential" in r for r in decision.reasons)


def test_broadcast_to_single_process_engine_is_a_hazard():
    from repro.check.costmodel import FanoutClass, PickleRisk

    class FakeProfile:
        fanout = FanoutClass.BROADCAST
        pickle_risks = (  # blocks process/tcp
            PickleRisk(line=3, method="__init__", detail="a lambda"),
        )

    decision = select_engine(
        verdict=None, profile=FakeProfile(), num_workers=4
    )
    assert decision.engine == "threaded"
    assert decision.hazards and "RPC022" in decision.hazards[0]


def test_decision_envelope_round_trips():
    decision = _decide(PageRankProgram(iterations=3), num_workers=2)
    d = decision.as_dict()
    json.dumps(d)
    assert d["engine"] == "dense-ref"
    assert d["ranking"][0] == ["dense-ref", 100]
    assert "engine auto-selection: dense-ref" in decision.render()


# ----------------------------------------------------------------------
# Runner integration
# ----------------------------------------------------------------------
def test_run_pagerank_auto_selects_dense_ref_and_records():
    from repro.obs import FlightRecorder

    flight = FlightRecorder(capacity=64)
    g = gen.barabasi_albert(40, 2, seed=3)
    res = run_pagerank(
        g, RunConfig(num_workers=4, engine="auto", flight=flight),
        iterations=5,
    )
    assert res.engine_decision is not None
    assert res.engine_decision.engine == "dense-ref"
    events = [
        e for e in flight.snapshot() if e.kind == "engine.autoselect"
    ]
    assert len(events) == 1
    assert events[0].attrs["engine"] == "dense-ref"
    assert events[0].attrs["reasons"]
    assert events[0].attrs["ranking"][0] == ["dense-ref", 100]


def test_run_pagerank_auto_matches_explicit_dense_ref():
    g = gen.erdos_renyi(40, 0.1, seed=2, directed=True)
    auto = run_pagerank(
        g, RunConfig(num_workers=2, engine="auto"), iterations=6
    )
    dense = run_pagerank(
        g, RunConfig(num_workers=2, engine="dense-ref"), iterations=6
    )
    assert auto.values == dense.values
    assert dense.engine_decision is None  # explicit engines record nothing


def test_run_traversal_auto_falls_back_from_observers():
    g = gen.barabasi_albert(40, 2, seed=3)
    run = run_traversal(
        g, RunConfig(num_workers=4, engine="auto"), roots=range(4),
        kind="bc",
    )
    decision = run.result.engine_decision
    assert decision is not None
    assert decision.engine == "process"
    assert any(
        "observer" in r or "RPC016" in r
        for e, r in decision.excluded if e == "dense-ref"
    )


def test_make_engine_rejects_unresolved_auto():
    from repro.analysis.runner import _make_engine

    cfg = RunConfig(engine="auto")
    with pytest.raises(ValueError, match="resolved by the runner"):
        _make_engine(cfg, job=None)
