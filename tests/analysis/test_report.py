"""Report generator: structure and sanity of the one-shot markdown report."""

import pytest

from repro.analysis.report import ReportConfig, generate_report


@pytest.fixture(scope="module")
def report_text():
    # Small scale keeps this test at a few seconds.
    return generate_report(ReportConfig(scale=0.12, workers=4, roots=10))


class TestReport:
    def test_all_sections_present(self, report_text):
        for heading in (
            "# Reproduction report",
            "## Table 1",
            "## Figure 2",
            "## Figures 4–6",
            "## Figure 8",
            "## Figures 15–16",
        ):
            assert heading in report_text

    def test_mentions_all_datasets(self, report_text):
        for key in ("SD", "WG", "CP", "LJ"):
            assert f"| {key} |" in report_text

    def test_tables_are_markdown(self, report_text):
        assert report_text.count("|---|") >= 5

    def test_contains_speedups_and_policies(self, report_text):
        assert "speedup" in report_text
        assert "Oracle" in report_text
        assert "Dynamic" in report_text

    def test_advisor_verdicts_present(self, report_text):
        assert "WG →" in report_text and "CP →" in report_text

    def test_config_validation(self):
        with pytest.raises(ValueError):
            ReportConfig(scale=0)
        with pytest.raises(ValueError):
            ReportConfig(workers=1)
        with pytest.raises(ValueError):
            ReportConfig(roots=1)

    def test_cli_report_command(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "r.md"
        assert main(["report", "--out", str(out), "--scale", "0.12",
                     "--workers", "4", "--roots", "8"]) == 0
        assert out.read_text().startswith("# Reproduction report")
        assert "wrote reproduction report" in capsys.readouterr().out
