"""Graph serialization round trips and SNAP edge-list parsing."""

import numpy as np
import pytest

from repro.graph import generators as gen
from repro.graph import io


def assert_same_graph(a, b):
    assert a.num_vertices == b.num_vertices
    assert a.undirected == b.undirected
    assert sorted(a.iter_edges()) == sorted(b.iter_edges())


class TestEdgeList:
    def test_round_trip_undirected(self, tmp_path, small_world):
        p = tmp_path / "g.txt"
        io.write_edge_list(small_world, p)
        back = io.read_edge_list(p)
        assert_same_graph(small_world, back)

    def test_round_trip_directed(self, tmp_path):
        g = gen.erdos_renyi(30, 0.1, seed=1, directed=True)
        p = tmp_path / "g.txt"
        io.write_edge_list(g, p)
        assert_same_graph(g, io.read_edge_list(p))

    def test_round_trip_preserves_name(self, tmp_path, ring10):
        ring10.name = "myring"
        p = tmp_path / "g.txt"
        io.write_edge_list(ring10, p)
        assert io.read_edge_list(p).name == "myring"

    def test_round_trip_isolated_vertices(self, tmp_path):
        from repro.graph.builder import from_edges
        g = from_edges(10, [(0, 1)], undirected=True)
        p = tmp_path / "g.txt"
        io.write_edge_list(g, p)
        assert io.read_edge_list(p).num_vertices == 10

    def test_headerless_snap_format(self):
        data = b"# SNAP comment\n0\t1\n1\t2\n4\t2\n"
        g = io.from_edge_list_bytes(data)
        assert g.num_vertices == 5
        assert not g.undirected
        assert sorted(g.iter_edges()) == [(0, 1), (1, 2), (4, 2)]

    def test_space_separated_accepted(self):
        g = io.from_edge_list_bytes(b"0 1\n1 2\n")
        assert g.num_arcs == 2

    def test_malformed_line_rejected(self):
        with pytest.raises(ValueError, match="malformed"):
            io.from_edge_list_bytes(b"0\n")

    def test_empty_input(self):
        g = io.from_edge_list_bytes(b"")
        assert g.num_vertices == 0

    def test_bytes_round_trip(self, k5):
        data = io.to_edge_list_bytes(k5)
        assert_same_graph(k5, io.from_edge_list_bytes(data))

    def test_undirected_file_stores_each_edge_once(self, ring10):
        data = io.to_edge_list_bytes(ring10).decode()
        edges = [l for l in data.splitlines() if not l.startswith("#")]
        assert len(edges) == 10


class TestNpz:
    def test_round_trip(self, tmp_path, small_world):
        p = tmp_path / "g.npz"
        io.write_npz(small_world, p)
        back = io.read_npz(p)
        assert_same_graph(small_world, back)
        assert np.array_equal(back.indptr, small_world.indptr)

    def test_round_trip_directed_with_name(self, tmp_path):
        g = gen.erdos_renyi(20, 0.2, seed=2, directed=True)
        g.name = "er-directed"
        p = tmp_path / "g.npz"
        io.write_npz(g, p)
        back = io.read_npz(p)
        assert back.name == "er-directed"
        assert not back.undirected
