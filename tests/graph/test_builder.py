"""GraphBuilder: edge accumulation, dedupe, symmetrization."""

import numpy as np
import pytest

from repro.graph.builder import GraphBuilder, from_edges


class TestBasics:
    def test_single_edge_directed(self):
        b = GraphBuilder(3)
        b.add_edge(0, 2)
        g = b.build()
        assert sorted(g.iter_edges()) == [(0, 2)]
        assert not g.undirected

    def test_undirected_stores_both_arcs(self):
        g = from_edges(3, [(0, 1)], undirected=True)
        assert sorted(g.iter_edges()) == [(0, 1), (1, 0)]
        assert g.num_edges == 1

    def test_add_edge_iter(self):
        b = GraphBuilder(4)
        b.add_edge_iter([(0, 1), (2, 3)])
        assert b.pending_arcs == 2
        g = b.build()
        assert g.num_arcs == 2

    def test_empty_iter_is_noop(self):
        b = GraphBuilder(4)
        b.add_edge_iter([])
        assert b.pending_arcs == 0

    def test_negative_num_vertices_rejected(self):
        with pytest.raises(ValueError):
            GraphBuilder(-1)

    def test_name_is_attached(self):
        g = from_edges(2, [(0, 1)], name="toy")
        assert g.name == "toy"


class TestValidation:
    def test_out_of_range_src(self):
        b = GraphBuilder(3)
        with pytest.raises(ValueError, match="out of range"):
            b.add_edge(5, 0)

    def test_out_of_range_dst(self):
        b = GraphBuilder(3)
        with pytest.raises(ValueError, match="out of range"):
            b.add_edge(0, 3)

    def test_negative_vertex(self):
        b = GraphBuilder(3)
        with pytest.raises(ValueError, match="out of range"):
            b.add_edge(-1, 0)

    def test_mismatched_batch_lengths(self):
        b = GraphBuilder(3)
        with pytest.raises(ValueError, match="equal length"):
            b.add_edges([0, 1], [2])


class TestDedupe:
    def test_parallel_edges_removed_by_default(self):
        g = from_edges(2, [(0, 1), (0, 1), (0, 1)])
        assert g.num_arcs == 1

    def test_parallel_edges_kept_when_disabled(self):
        g = from_edges(2, [(0, 1), (0, 1)], dedupe=False)
        assert g.num_arcs == 2

    def test_self_loops_dropped_by_default(self):
        g = from_edges(2, [(0, 0), (0, 1)])
        assert sorted(g.iter_edges()) == [(0, 1)]

    def test_self_loops_kept_when_asked(self):
        g = from_edges(2, [(0, 0)], drop_self_loops=False)
        assert sorted(g.iter_edges()) == [(0, 0)]

    def test_undirected_duplicate_both_directions(self):
        # (0,1) and (1,0) given explicitly collapse to one undirected edge.
        g = from_edges(2, [(0, 1), (1, 0)], undirected=True)
        assert g.num_edges == 1

    def test_rows_sorted_within_vertex(self):
        g = from_edges(4, [(0, 3), (0, 1), (0, 2)])
        assert g.neighbors(0).tolist() == [1, 2, 3]


class TestBatching:
    def test_multiple_batches_concatenate(self):
        b = GraphBuilder(10)
        b.add_edges(np.arange(4), np.arange(4) + 1)
        b.add_edges(np.arange(5, 8), np.arange(5, 8) + 1)
        g = b.build()
        assert g.num_arcs == 7

    def test_build_twice_gives_same_graph(self):
        b = GraphBuilder(5, undirected=True)
        b.add_edges([0, 1], [1, 2])
        g1, g2 = b.build(), b.build()
        assert np.array_equal(g1.indptr, g2.indptr)
        assert np.array_equal(g1.indices, g2.indices)
