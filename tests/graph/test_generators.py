"""Synthetic graph generators: structure, determinism, error handling."""

import numpy as np
import pytest

from repro.graph import generators as gen
from repro.graph.properties import (
    clustering_coefficient,
    connected_components,
    effective_diameter,
)


class TestDeterministicToys:
    def test_ring_structure(self):
        g = gen.ring(6)
        assert g.num_edges == 6
        assert np.all(g.out_degrees() == 2)

    def test_ring_too_small(self):
        with pytest.raises(ValueError):
            gen.ring(2)

    def test_path_structure(self):
        g = gen.path(4)
        assert g.num_edges == 3
        assert g.out_degree(0) == 1
        assert g.out_degree(1) == 2

    def test_complete_structure(self):
        g = gen.complete(6)
        assert g.num_edges == 15
        assert np.all(g.out_degrees() == 5)

    def test_star_structure(self):
        g = gen.star(5)
        assert g.out_degree(0) == 4
        assert g.num_edges == 4

    def test_binary_tree_counts(self):
        g = gen.binary_tree(3)
        assert g.num_vertices == 15
        assert g.num_edges == 14

    def test_binary_tree_root_degree(self):
        g = gen.binary_tree(2)
        assert g.out_degree(0) == 2
        # leaves have degree 1
        assert g.out_degree(g.num_vertices - 1) == 1

    def test_grid_structure(self):
        g = gen.grid2d(3, 4)
        assert g.num_vertices == 12
        assert g.num_edges == 3 * 3 + 2 * 4  # rows*(cols-1) + (rows-1)*cols

    def test_grid_corner_degree(self):
        g = gen.grid2d(3, 3)
        assert g.out_degree(0) == 2
        assert g.out_degree(4) == 4  # center

    @pytest.mark.parametrize("fn,arg", [
        (gen.path, 0), (gen.complete, 0), (gen.star, 1), (gen.binary_tree, -1),
    ])
    def test_toy_validation(self, fn, arg):
        with pytest.raises(ValueError):
            fn(arg)

    def test_grid_validation(self):
        with pytest.raises(ValueError):
            gen.grid2d(0, 3)


class TestErdosRenyi:
    def test_p_zero_is_empty(self):
        g = gen.erdos_renyi(20, 0.0, seed=1)
        assert g.num_edges == 0

    def test_p_one_is_complete(self):
        g = gen.erdos_renyi(8, 1.0, seed=1)
        assert g.num_edges == 28

    def test_expected_density(self):
        g = gen.erdos_renyi(300, 0.05, seed=3)
        expected = 300 * 299 / 2 * 0.05
        assert 0.7 * expected < g.num_edges < 1.3 * expected

    def test_deterministic_for_seed(self):
        g1 = gen.erdos_renyi(50, 0.1, seed=9)
        g2 = gen.erdos_renyi(50, 0.1, seed=9)
        assert np.array_equal(g1.indices, g2.indices)

    def test_seed_changes_graph(self):
        g1 = gen.erdos_renyi(50, 0.1, seed=9)
        g2 = gen.erdos_renyi(50, 0.1, seed=10)
        assert not np.array_equal(g1.indices, g2.indices)

    def test_directed_variant(self):
        g = gen.erdos_renyi(50, 0.1, seed=4, directed=True)
        assert not g.undirected
        # directed slots ~ n^2*p
        assert 0.5 * 250 < g.num_arcs < 1.5 * 250

    def test_no_self_loops(self):
        g = gen.erdos_renyi(40, 0.3, seed=2, directed=True)
        assert all(u != v for u, v in g.iter_edges())

    def test_invalid_p(self):
        with pytest.raises(ValueError):
            gen.erdos_renyi(10, 1.5, seed=0)


class TestWattsStrogatz:
    def test_beta_zero_is_lattice(self):
        g = gen.watts_strogatz(20, 4, 0.0, seed=1)
        assert np.all(g.out_degrees() == 4)
        assert g.num_edges == 40

    def test_high_clustering_low_beta(self):
        g = gen.watts_strogatz(200, 8, 0.05, seed=2)
        assert clustering_coefficient(g) > 0.4

    def test_rewiring_shrinks_diameter(self):
        lattice = gen.watts_strogatz(200, 4, 0.0, seed=3)
        rewired = gen.watts_strogatz(200, 4, 0.3, seed=3)
        assert effective_diameter(rewired, sample=40) < effective_diameter(
            lattice, sample=40
        )

    def test_odd_k_rejected(self):
        with pytest.raises(ValueError, match="even"):
            gen.watts_strogatz(10, 3, 0.1, seed=0)

    def test_k_too_large_rejected(self):
        with pytest.raises(ValueError):
            gen.watts_strogatz(10, 10, 0.1, seed=0)

    def test_beta_out_of_range(self):
        with pytest.raises(ValueError):
            gen.watts_strogatz(10, 4, 1.5, seed=0)

    def test_deterministic(self):
        a = gen.watts_strogatz(50, 4, 0.2, seed=5)
        b = gen.watts_strogatz(50, 4, 0.2, seed=5)
        assert np.array_equal(a.indices, b.indices)


class TestBarabasiAlbert:
    def test_edge_count(self):
        g = gen.barabasi_albert(100, 2, seed=1)
        # ~ m*(n-m) edges, some dedupe slack
        assert 180 <= g.num_edges <= 196

    def test_has_hubs(self):
        g = gen.barabasi_albert(300, 2, seed=2)
        deg = g.out_degrees()
        assert deg.max() > 6 * deg.mean()

    def test_connected(self):
        g = gen.barabasi_albert(100, 1, seed=3)
        assert len(set(connected_components(g))) == 1

    def test_m_validation(self):
        with pytest.raises(ValueError):
            gen.barabasi_albert(10, 0, seed=0)
        with pytest.raises(ValueError):
            gen.barabasi_albert(10, 10, seed=0)

    def test_mixed_variant_sparser_than_m2(self):
        g1 = gen.barabasi_albert_mixed(200, seed=4, p_single=0.7)
        g2 = gen.barabasi_albert(200, 2, seed=4)
        assert g1.num_edges < g2.num_edges

    def test_mixed_p_single_validation(self):
        with pytest.raises(ValueError):
            gen.barabasi_albert_mixed(10, seed=0, p_single=2.0)

    def test_mixed_connected(self):
        g = gen.barabasi_albert_mixed(150, seed=5)
        assert len(set(connected_components(g))) == 1


class TestRMAT:
    def test_vertex_count_power_of_two(self):
        g = gen.rmat(8, 4, seed=1)
        assert g.num_vertices == 256

    def test_skewed_degrees(self):
        g = gen.rmat(10, 8, seed=2)
        deg = g.out_degrees()
        assert deg.max() > 5 * deg.mean()

    def test_invalid_probabilities(self):
        with pytest.raises(ValueError):
            gen.rmat(5, 2, seed=0, a=0.5, b=0.4, c=0.3)

    def test_directed_mode(self):
        g = gen.rmat(6, 2, seed=3, undirected=False)
        assert not g.undirected

    def test_deterministic(self):
        a = gen.rmat(7, 3, seed=9)
        b = gen.rmat(7, 3, seed=9)
        assert np.array_equal(a.indices, b.indices)


class TestPlantedPartition:
    def test_total_vertices(self):
        g = gen.planted_partition([10, 20, 30], 0.3, 0.01, seed=1)
        assert g.num_vertices == 60

    def test_intra_denser_than_inter(self):
        sizes = [40, 40]
        g = gen.planted_partition(sizes, 0.3, 0.005, seed=2)
        intra = inter = 0
        for u, v in g.iter_edges():
            if (u < 40) == (v < 40):
                intra += 1
            else:
                inter += 1
        assert intra > 5 * inter

    def test_zero_p_out_disconnects(self):
        g = gen.planted_partition([20, 20], 0.5, 0.0, seed=3)
        labels = connected_components(g)
        assert len(set(labels[:20]) & set(labels[20:])) == 0

    def test_invalid_sizes(self):
        with pytest.raises(ValueError):
            gen.planted_partition([10, 0], 0.1, 0.1, seed=0)


class TestCommunityChain:
    def test_block_sizes_skewed(self):
        g = gen.community_chain(6, 50, seed=1)
        assert g.num_vertices == 50 * (1 + 2 + 3) * 2

    def test_chain_has_large_diameter(self):
        chain = gen.community_chain(6, 60, seed=2)
        ws = gen.watts_strogatz(chain.num_vertices, 6, 0.15, seed=2)
        assert effective_diameter(chain, sample=32) > effective_diameter(
            ws, sample=32
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            gen.community_chain(1, 50, seed=0)
        with pytest.raises(ValueError):
            gen.community_chain(4, 4, seed=0)

    def test_connected(self):
        g = gen.community_chain(5, 40, seed=3)
        assert len(set(connected_components(g))) == 1
