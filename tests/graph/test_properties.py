"""Graph statistics validated against networkx and hand computations."""

import networkx as nx
import numpy as np
import pytest

from repro.graph import generators as gen
from repro.graph.properties import (
    average_shortest_path,
    bfs_levels,
    clustering_coefficient,
    connected_components,
    degree_stats,
    distance_profile,
    effective_diameter,
    largest_component,
    summarize,
)
from tests.conftest import to_networkx


class TestBFS:
    def test_path_distances(self, path5):
        assert bfs_levels(path5, 0).tolist() == [0, 1, 2, 3, 4]

    def test_ring_distances(self, ring10):
        d = bfs_levels(ring10, 0)
        assert d[5] == 5
        assert d[9] == 1

    def test_unreachable_is_minus_one(self):
        g = gen.ring(6)
        from repro.graph.builder import from_edges
        g = from_edges(8, [(0, 1), (2, 3)], undirected=True)
        d = bfs_levels(g, 0)
        assert d[1] == 1
        assert d[2] == -1 and d[7] == -1

    def test_matches_networkx(self, small_world):
        nxg = to_networkx(small_world)
        for s in (0, 17, 42):
            ours = bfs_levels(small_world, s)
            theirs = nx.single_source_shortest_path_length(nxg, s)
            for v in range(small_world.num_vertices):
                assert ours[v] == theirs.get(v, -1)

    def test_invalid_source(self, ring10):
        with pytest.raises(ValueError):
            bfs_levels(ring10, 99)


class TestDistanceProfile:
    def test_path_profile(self, path5):
        # From all 5 sources of a path: distances 1..4 occur 8,6,4,2 times.
        counts = distance_profile(path5)
        assert counts.tolist() == [5, 8, 6, 4, 2]

    def test_sampling_subset(self, small_world):
        full = distance_profile(small_world)
        sub = distance_profile(small_world, sample=10, seed=1)
        assert sub.sum() < full.sum()

    def test_explicit_sources(self, ring10):
        counts = distance_profile(ring10, sources=np.array([0]))
        # ring of 10 from one source: two vertices at 1..4, one at 5
        assert counts.tolist() == [1, 2, 2, 2, 2, 1]


class TestEffectiveDiameter:
    def test_complete_graph_is_one(self, k5):
        assert effective_diameter(k5) <= 1.0

    def test_path_monotone_with_fraction(self, path5):
        lo = effective_diameter(path5, 0.5)
        hi = effective_diameter(path5, 0.99)
        assert lo < hi

    def test_at_most_true_diameter(self, ring10):
        assert effective_diameter(ring10, 0.9) <= 5.0

    def test_interpolation_is_fractional(self):
        g = gen.path(20)
        d = effective_diameter(g, 0.9)
        assert d != int(d)  # generically fractional

    def test_invalid_fraction(self, ring10):
        with pytest.raises(ValueError):
            effective_diameter(ring10, 0.0)

    def test_empty_profile(self):
        from repro.graph.builder import from_edges
        g = from_edges(3, [])
        assert effective_diameter(g) == 0.0


class TestAverageShortestPath:
    def test_matches_networkx(self, small_world):
        nxg = to_networkx(small_world)
        ours = average_shortest_path(small_world)
        theirs = nx.average_shortest_path_length(nxg)
        assert abs(ours - theirs) < 1e-9

    def test_complete_graph(self, k5):
        assert average_shortest_path(k5) == pytest.approx(1.0)


class TestClustering:
    def test_complete_graph_is_one(self, k5):
        assert clustering_coefficient(k5) == pytest.approx(1.0)

    def test_tree_is_zero(self, tree3):
        assert clustering_coefficient(tree3) == 0.0

    def test_matches_networkx(self, small_world):
        nxg = to_networkx(small_world)
        ours = clustering_coefficient(small_world)
        theirs = nx.average_clustering(nxg)
        assert abs(ours - theirs) < 1e-9

    def test_empty_graph(self):
        from repro.graph.builder import from_edges
        assert clustering_coefficient(from_edges(0, [])) == 0.0


class TestComponents:
    def test_connected_graph_single_label(self, ring10):
        assert len(set(connected_components(ring10))) == 1

    def test_two_components(self):
        from repro.graph.builder import from_edges
        g = from_edges(6, [(0, 1), (1, 2), (3, 4)], undirected=True)
        labels = connected_components(g)
        assert labels[0] == labels[2]
        assert labels[3] == labels[4]
        assert labels[0] != labels[3]
        assert len(set(labels)) == 3  # third is isolated vertex 5

    def test_largest_component(self):
        from repro.graph.builder import from_edges
        g = from_edges(7, [(0, 1), (1, 2), (2, 3), (4, 5)], undirected=True)
        assert largest_component(g).tolist() == [0, 1, 2, 3]

    def test_directed_uses_weak_connectivity(self):
        from repro.graph.builder import from_edges
        g = from_edges(3, [(0, 1), (2, 1)], undirected=False)
        assert len(set(connected_components(g))) == 1


class TestDegreeStatsAndSummary:
    def test_degree_stats_fields(self, star8):
        s = degree_stats(star8)
        assert s["min"] == 1
        assert s["max"] == 7
        assert s["mean"] == pytest.approx(14 / 8)

    def test_degree_stats_empty(self):
        from repro.graph.builder import from_edges
        s = degree_stats(from_edges(0, []))
        assert s["max"] == 0

    def test_summary_row_renders(self, small_world):
        summ = summarize(small_world, sample=16)
        row = summ.row()
        assert "60" in row
        assert summ.num_edges == small_world.num_edges
