"""Weighted graphs and induced subgraphs."""

import numpy as np
import pytest

from repro.graph import generators as gen
from repro.graph.builder import GraphBuilder, from_edges


class TestWeightedGraphs:
    def test_weights_stored_and_aligned(self):
        g = from_edges(3, [(0, 1), (1, 2)], weights=[2.5, 7.0])
        assert g.weighted
        assert g.edge_weight(0, 1) == 2.5
        assert g.edge_weight(1, 2) == 7.0

    def test_unweighted_reports_units(self, ring10):
        assert not ring10.weighted
        assert ring10.edge_weight(0, 1) == 1.0
        assert np.all(ring10.neighbor_weights(0) == 1.0)

    def test_missing_edge_raises(self):
        g = from_edges(3, [(0, 1)], weights=[1.0])
        with pytest.raises(KeyError):
            g.edge_weight(0, 2)

    def test_undirected_weights_symmetric(self):
        g = from_edges(3, [(0, 1), (1, 2)], undirected=True, weights=[3.0, 4.0])
        assert g.edge_weight(0, 1) == g.edge_weight(1, 0) == 3.0
        assert g.edge_weight(2, 1) == 4.0

    def test_neighbor_weights_align_with_neighbors(self):
        g = from_edges(4, [(0, 3), (0, 1), (0, 2)], weights=[30.0, 10.0, 20.0])
        nbrs = g.neighbors(0).tolist()
        ws = g.neighbor_weights(0).tolist()
        assert dict(zip(nbrs, ws)) == {1: 10.0, 2: 20.0, 3: 30.0}

    def test_dedupe_keeps_first_weight(self):
        g = from_edges(2, [(0, 1), (0, 1)], weights=[5.0, 9.0])
        assert g.num_arcs == 1
        assert g.edge_weight(0, 1) == 5.0

    def test_self_loop_weight_dropped_with_loop(self):
        g = from_edges(2, [(0, 0), (0, 1)], weights=[42.0, 1.5])
        assert g.num_arcs == 1
        assert g.edge_weight(0, 1) == 1.5

    def test_mixing_weighted_unweighted_rejected(self):
        b = GraphBuilder(3)
        b.add_edges([0], [1], [1.0])
        with pytest.raises(ValueError, match="mix"):
            b.add_edges([1], [2])

    def test_weight_length_mismatch_rejected(self):
        b = GraphBuilder(3)
        with pytest.raises(ValueError, match="weights"):
            b.add_edges([0, 1], [1, 2], [1.0])

    def test_misaligned_weights_array_rejected(self):
        from repro.graph.csr import CSRGraph

        with pytest.raises(ValueError, match="align"):
            CSRGraph(
                2, np.array([0, 1, 1]), np.array([1], dtype=np.int32),
                weights=np.array([1.0, 2.0]),
            )


class TestWeightedSSSP:
    def test_matches_dijkstra(self):
        from repro.algorithms import SSSPProgram, dijkstra_reference
        from repro.bsp import JobSpec, run_job

        rng = np.random.default_rng(3)
        base = gen.watts_strogatz(50, 4, 0.2, seed=6)
        e = base.edge_array()
        half = e[e[:, 0] < e[:, 1]]
        w = rng.uniform(0.5, 5.0, size=len(half))
        g = from_edges(50, half, undirected=True, weights=w)
        res = run_job(JobSpec(program=SSSPProgram(0), graph=g, num_workers=4))
        ref = dijkstra_reference(g, 0)
        assert np.allclose(res.values_array(), ref)

    def test_weight_fn_overrides_graph_weights(self):
        from repro.algorithms import SSSPProgram
        from repro.bsp import JobSpec, run_job

        g = from_edges(3, [(0, 1), (1, 2)], undirected=True, weights=[10.0, 10.0])
        res = run_job(
            JobSpec(
                program=SSSPProgram(0, weight_fn=lambda u, v: 1.0),
                graph=g, num_workers=2,
            )
        )
        assert res.values[2] == 2.0


class TestInducedSubgraph:
    def test_basic_extraction(self, ring10):
        sub, mapping = ring10.induced_subgraph([0, 1, 2, 5])
        assert sub.num_vertices == 4
        assert mapping.tolist() == [0, 1, 2, 5]
        # ring edges 0-1, 1-2 survive; 5 is isolated in the subgraph.
        assert sorted(sub.iter_edges()) == [(0, 1), (1, 0), (1, 2), (2, 1)]

    def test_full_selection_is_identity(self, small_world):
        sub, mapping = small_world.induced_subgraph(range(60))
        assert sorted(sub.iter_edges()) == sorted(small_world.iter_edges())

    def test_empty_selection(self, ring10):
        sub, mapping = ring10.induced_subgraph([])
        assert sub.num_vertices == 0
        assert len(mapping) == 0

    def test_duplicates_collapsed(self, ring10):
        sub, mapping = ring10.induced_subgraph([3, 3, 4])
        assert sub.num_vertices == 2

    def test_out_of_range_rejected(self, ring10):
        with pytest.raises(ValueError):
            ring10.induced_subgraph([0, 99])

    def test_degrees_consistent(self, small_world):
        keep = list(range(0, 60, 2))
        sub, mapping = small_world.induced_subgraph(keep)
        keep_set = set(keep)
        for new_v, old_v in enumerate(mapping):
            expected = sum(
                1 for u in small_world.neighbors(int(old_v)) if int(u) in keep_set
            )
            assert sub.out_degree(new_v) == expected

    def test_largest_component_extraction_use_case(self):
        from repro.graph.properties import largest_component

        g = from_edges(8, [(0, 1), (1, 2), (3, 4)], undirected=True)
        comp = largest_component(g)
        sub, mapping = g.induced_subgraph(comp)
        assert sub.num_vertices == 3
        assert sub.num_edges == 2


class TestWeightedIO:
    def test_edge_list_round_trip(self, tmp_path):
        from repro.graph import io as gio

        g = from_edges(
            4, [(0, 1), (1, 2), (2, 3)], undirected=True, weights=[1.5, 2.25, 0.125]
        )
        back = gio.from_edge_list_bytes(gio.to_edge_list_bytes(g))
        assert back.weighted
        for u, v in g.iter_edges():
            assert back.edge_weight(u, v) == g.edge_weight(u, v)

    def test_npz_round_trip(self, tmp_path):
        from repro.graph import io as gio

        g = from_edges(3, [(0, 1), (1, 2)], weights=[3.5, 4.5])
        p = tmp_path / "w.npz"
        gio.write_npz(g, p)
        back = gio.read_npz(p)
        assert back.weighted
        assert np.array_equal(back.weights, g.weights)

    def test_third_column_parsed_as_weight(self):
        from repro.graph import io as gio

        g = gio.from_edge_list_bytes(b"0 1 2.5\n1 2 0.5\n")
        assert g.weighted
        assert g.edge_weight(0, 1) == 2.5

    def test_mixed_weight_presence_rejected(self):
        from repro.graph import io as gio

        with pytest.raises(ValueError, match="missing weight"):
            gio.from_edge_list_bytes(b"0 1 2.5\n1 2\n")

    def test_unweighted_round_trip_stays_unweighted(self, ring10):
        from repro.graph import io as gio

        back = gio.from_edge_list_bytes(gio.to_edge_list_bytes(ring10))
        assert not back.weighted
