"""CSRGraph storage invariants and accessors."""

import numpy as np
import pytest

from repro.graph import generators as gen
from repro.graph.builder import from_edges
from repro.graph.csr import CSRGraph


class TestConstruction:
    def test_empty_graph(self):
        g = CSRGraph(0, np.zeros(1, dtype=np.int64), np.empty(0, dtype=np.int32))
        assert g.num_vertices == 0
        assert g.num_arcs == 0

    def test_isolated_vertices(self):
        g = from_edges(5, [])
        assert g.num_vertices == 5
        assert g.num_edges == 0
        assert all(g.out_degree(v) == 0 for v in range(5))

    def test_indptr_wrong_length_rejected(self):
        with pytest.raises(ValueError, match="indptr"):
            CSRGraph(3, np.zeros(3, dtype=np.int64), np.empty(0, dtype=np.int32))

    def test_decreasing_indptr_rejected(self):
        with pytest.raises(ValueError, match="non-decreasing"):
            CSRGraph(2, np.array([0, 2, 1]), np.array([0, 1, 0], dtype=np.int32))

    def test_out_of_range_indices_rejected(self):
        with pytest.raises(ValueError, match="out-of-range"):
            CSRGraph(2, np.array([0, 1, 2]), np.array([0, 5], dtype=np.int32))

    def test_indices_length_mismatch_rejected(self):
        with pytest.raises(ValueError, match="indices length"):
            CSRGraph(2, np.array([0, 1, 2]), np.array([0], dtype=np.int32))

    def test_nonzero_indptr_start_rejected(self):
        with pytest.raises(ValueError, match="indptr\\[0\\]"):
            CSRGraph(2, np.array([1, 1, 2]), np.array([0, 1], dtype=np.int32))


class TestAccessors:
    def test_ring_degrees(self, ring10):
        assert ring10.num_vertices == 10
        assert ring10.num_edges == 10
        assert ring10.num_arcs == 20
        assert np.all(ring10.out_degrees() == 2)

    def test_neighbors_sorted_and_correct(self, ring10):
        assert sorted(ring10.neighbors(0).tolist()) == [1, 9]
        assert sorted(ring10.neighbors(5).tolist()) == [4, 6]

    def test_neighbors_view_is_readonly(self, ring10):
        view = ring10.neighbors(0)
        with pytest.raises(ValueError):
            view[0] = 99

    def test_star_degrees(self, star8):
        assert star8.out_degree(0) == 7
        assert all(star8.out_degree(v) == 1 for v in range(1, 8))

    def test_iter_edges_matches_edge_array(self, k5):
        it = sorted(k5.iter_edges())
        arr = sorted(map(tuple, k5.edge_array().tolist()))
        assert it == arr
        assert len(it) == 20  # K5: 10 undirected edges stored twice

    def test_vertices_range(self, path5):
        assert list(path5.vertices()) == [0, 1, 2, 3, 4]

    def test_directed_edge_count_not_halved(self):
        g = from_edges(3, [(0, 1), (1, 2)], undirected=False)
        assert g.num_edges == 2
        assert g.num_arcs == 2


class TestReverseAdjacency:
    def test_in_degrees_undirected_match_out(self, ring10):
        assert np.array_equal(ring10.in_degrees(), ring10.out_degrees())

    def test_directed_in_neighbors(self):
        g = from_edges(4, [(0, 1), (2, 1), (1, 3)], undirected=False)
        assert sorted(g.in_neighbors(1).tolist()) == [0, 2]
        assert g.in_degree(3) == 1
        assert g.in_degree(0) == 0

    def test_reversed_graph(self):
        g = from_edges(3, [(0, 1), (1, 2)], undirected=False)
        r = g.reversed()
        assert sorted(r.iter_edges()) == [(1, 0), (2, 1)]

    def test_reversed_twice_is_identity(self, ba_graph):
        rr = ba_graph.reversed().reversed()
        assert sorted(rr.iter_edges()) == sorted(ba_graph.iter_edges())

    def test_in_neighbors_view_readonly(self, ring10):
        view = ring10.in_neighbors(3)
        with pytest.raises(ValueError):
            view[0] = 1


class TestTransformations:
    def test_as_undirected_symmetrizes(self):
        g = from_edges(3, [(0, 1), (1, 2)], undirected=False)
        u = g.as_undirected()
        assert u.undirected
        assert u.num_edges == 2
        assert sorted(u.neighbors(1).tolist()) == [0, 2]

    def test_as_undirected_noop_on_undirected(self, ring10):
        assert ring10.as_undirected() is ring10

    def test_as_undirected_merges_antiparallel(self):
        g = from_edges(2, [(0, 1), (1, 0)], undirected=False)
        u = g.as_undirected()
        assert u.num_edges == 1

    def test_subgraph_arcs_keeps_selected(self):
        g = from_edges(3, [(0, 1), (0, 2), (1, 2)], undirected=False)
        mask = np.array([True, False, True])
        sub = g.subgraph_arcs(mask)
        assert sorted(sub.iter_edges()) == [(0, 1), (1, 2)]

    def test_subgraph_arcs_wrong_mask_length(self, ring10):
        with pytest.raises(ValueError, match="mask length"):
            ring10.subgraph_arcs(np.array([True]))


class TestMemory:
    def test_memory_bytes_grows_with_reverse(self, ring10):
        before = ring10.memory_bytes()
        ring10.in_degrees()  # forces reverse build
        assert ring10.memory_bytes() > before

    def test_memory_bytes_positive(self, k5):
        assert k5.memory_bytes() > 0
