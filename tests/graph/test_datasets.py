"""Dataset analogues: Table 1 structure reproduction."""

import pytest

from repro.graph import datasets
from repro.graph.properties import (
    clustering_coefficient,
    connected_components,
    effective_diameter,
)


@pytest.fixture(scope="module")
def analogues():
    return {k: datasets.load(k, scale=0.5) for k in ("SD", "WG", "CP", "LJ")}


@pytest.fixture(scope="module")
def diameters(analogues):
    return {
        k: effective_diameter(g, 0.9, sample=40, seed=0)
        for k, g in analogues.items()
    }


class TestRegistry:
    def test_all_four_datasets_present(self):
        assert set(datasets.DATASETS) == {"SD", "WG", "CP", "LJ"}

    def test_unknown_key_raises(self):
        with pytest.raises(KeyError):
            datasets.load("XX")

    def test_names_attached(self, analogues):
        for key, g in analogues.items():
            assert g.name == f"{key}-analogue"

    def test_explicit_seed_changes_graph(self):
        a = datasets.load("SD", scale=0.2, seed=1)
        b = datasets.load("SD", scale=0.2, seed=2)
        assert sorted(a.iter_edges()) != sorted(b.iter_edges())

    def test_paper_table1_constants(self):
        assert datasets.PAPER_TABLE1["WG"]["vertices"] == 875_713
        assert datasets.PAPER_TABLE1["LJ"]["eff_diameter"] == 6.5


class TestTable1Shape:
    def test_vertex_count_ordering_matches_paper(self, analogues):
        sizes = {k: g.num_vertices for k, g in analogues.items()}
        assert sizes["SD"] < sizes["WG"] < sizes["CP"] < sizes["LJ"]

    def test_effective_diameter_ordering_matches_paper(self, diameters):
        # Paper: SD 4.7 < LJ 6.5 < WG 8.1 < CP 9.4
        assert diameters["SD"] < diameters["LJ"] < diameters["WG"] < diameters["CP"]

    def test_diameters_in_small_world_band(self, diameters):
        for key, d in diameters.items():
            assert 2.0 < d < 14.0, f"{key} diameter {d} outside small-world band"

    def test_sd_is_clustered_social_graph(self, analogues):
        assert clustering_coefficient(analogues["SD"], sample=128) > 0.2

    def test_wg_is_sparse_with_hubs(self, analogues):
        g = analogues["WG"]
        deg = g.out_degrees()
        assert deg.mean() < 4.0
        assert deg.max() > 8 * deg.mean()

    def test_lj_has_supernodes(self, analogues):
        deg = analogues["LJ"].out_degrees()
        assert deg.max() > 6 * deg.mean()

    def test_all_connected_enough(self, analogues):
        # BC/APSP traversals need one dominant component.
        import numpy as np

        for key, g in analogues.items():
            labels = connected_components(g)
            frac = np.bincount(labels).max() / g.num_vertices
            assert frac > 0.9, f"{key}: largest component only {frac:.0%}"


class TestScaling:
    def test_scale_grows_graph(self):
        small = datasets.load("WG", scale=0.2)
        large = datasets.load("WG", scale=0.6)
        assert large.num_vertices > small.num_vertices

    def test_minimum_size_floor(self):
        g = datasets.load("SD", scale=0.001)
        assert g.num_vertices >= 60

    def test_default_scale_sizes(self):
        g = datasets.load("CP")
        assert 2000 <= g.num_vertices <= 4000
