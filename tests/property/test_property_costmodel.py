"""Cost-model soundness: the statically inferred fan-out class is an upper
bound on what every bundled algorithm actually emits.

For each program the analyzer produces a :class:`ProgramProfile` with a
fan-out class and, below broadcast, affine coefficients ``(alpha, beta,
gamma)`` bounding per-``compute()`` sends by
``alpha + beta * out_degree + gamma * len(messages)``.  Summed over a
superstep that gives the cluster-wide bound

    sent(s) <= alpha * compute_calls(s) + beta * E_directed + gamma * delivered(s)

which we check against the engine's measured :class:`SuperstepStats` for a
real run of every algorithm.  Broadcast-class programs carry no finite
coefficients, so for them the property is the classification itself: the
wave-style programs (BC, APSP, triangle counting) must *be* broadcast — an
optimistic downgrade to ``O(out_degree)`` fails here before it could
mis-seed swath sizing.
"""

from __future__ import annotations

import pytest

from repro.algorithms import apsp as apsp_mod
from repro.algorithms import bc as bc_mod
from repro.algorithms import (
    APSPProgram,
    BCProgram,
    BipartiteMatchingProgram,
    ConnectedComponentsProgram,
    ConvergentPageRankProgram,
    DiameterEstimationProgram,
    KCoreProgram,
    LabelPropagationProgram,
    PageRankProgram,
    SSSPProgram,
    SemiClusteringProgram,
    TriangleCountProgram,
)
from repro.bsp import JobSpec, run_job
from repro.check import FanoutClass, profile_of
from repro.graph import generators as gen
from repro.graph.builder import from_edges


def small_world():
    return gen.watts_strogatz(40, 4, 0.1, seed=11)


def bipartite():
    left, right = range(0, 6), range(6, 12)
    edges = [(u, v) for u in left for v in right if (u + v) % 3]
    return from_edges(12, edges, undirected=True)


ROOTS = list(range(8))

# (label, program factory, JobSpec kwargs factory, graph factory)
SCENARIOS = [
    ("pagerank", lambda: PageRankProgram(5), lambda g: {}, small_world),
    (
        "pagerank_convergent",
        lambda: ConvergentPageRankProgram(tol=1e-6, max_iterations=30),
        lambda g: {},
        small_world,
    ),
    ("cc", lambda: ConnectedComponentsProgram(), lambda g: {}, small_world),
    ("kcore", lambda: KCoreProgram(3), lambda g: {}, small_world),
    ("lpa", lambda: LabelPropagationProgram(6), lambda g: {}, small_world),
    ("sssp", lambda: SSSPProgram(0), lambda g: {}, small_world),
    (
        "diameter",
        lambda: DiameterEstimationProgram(sources=[0, 1, 2]),
        lambda g: {},
        small_world,
    ),
    (
        "semiclustering",
        lambda: SemiClusteringProgram(max_rounds=3),
        lambda g: {},
        small_world,
    ),
    (
        "matching",
        lambda: BipartiteMatchingProgram(is_left=lambda v: v < 6),
        lambda g: {},
        bipartite,
    ),
    ("triangles", lambda: TriangleCountProgram(), lambda g: {}, small_world),
    (
        "bc",
        lambda: BCProgram(),
        lambda g: {
            "initially_active": False,
            "initial_messages": bc_mod.start_messages(ROOTS),
        },
        small_world,
    ),
    (
        "apsp",
        lambda: APSPProgram(),
        lambda g: {
            "initially_active": False,
            "initial_messages": apsp_mod.start_messages(ROOTS),
        },
        small_world,
    ),
]

#: Wave-style traversals whose replication factor the model cannot bound:
#: their *class* is the property under test.
BROADCAST_CLASS = {"bc", "apsp", "triangles"}


@pytest.mark.parametrize(
    "label,make_program,spec_kwargs,make_graph",
    SCENARIOS,
    ids=[s[0] for s in SCENARIOS],
)
def test_inferred_fanout_bounds_measured_messages(
    label, make_program, spec_kwargs, make_graph
):
    program = make_program()
    profile = profile_of(program)
    assert profile is not None, f"{label}: analyzer could not profile program"

    graph = make_graph()
    res = run_job(
        JobSpec(
            program=program,
            graph=graph,
            num_workers=3,
            **spec_kwargs(graph),
        )
    )

    if label in BROADCAST_CLASS:
        assert profile.fanout is FanoutClass.BROADCAST, (
            f"{label}: wave traversal downgraded to {profile.fanout.value}"
        )
        assert profile.fanout_coeffs is None
        return

    assert profile.fanout is not FanoutClass.BROADCAST, (
        f"{label}: over-classified as broadcast"
    )
    alpha, beta, gamma = profile.fanout_coeffs
    e_directed = int(graph.num_arcs)  # sum of out-degrees
    for step in res.trace:
        sent = step.total_messages
        delivered = sum(w.msgs_in for w in step.workers)
        bound = (
            alpha * step.compute_calls + beta * e_directed + gamma * delivered
        )
        assert sent <= bound, (
            f"{label} superstep {step.index}: sent {sent} exceeds static "
            f"bound {bound} (alpha={alpha}, beta={beta}, gamma={gamma}, "
            f"calls={step.compute_calls}, E={e_directed}, "
            f"delivered={delivered})"
        )


def test_none_class_program_sends_nothing():
    from repro.bsp import VertexProgram

    class Silent(VertexProgram):
        def compute(self, ctx, state, messages):
            ctx.vote_to_halt()
            return len(messages)

    profile = profile_of(Silent)
    assert profile.fanout is FanoutClass.NONE
    res = run_job(JobSpec(program=Silent(), graph=small_world(), num_workers=2))
    assert res.trace.total_messages == 0
