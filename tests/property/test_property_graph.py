"""Property-based tests: graph substrate invariants under random inputs."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.graph import generators as gen
from repro.graph import io as gio
from repro.graph.builder import from_edges
from repro.graph.properties import bfs_levels


@st.composite
def edge_lists(draw, max_n=30, max_m=80):
    n = draw(st.integers(min_value=1, max_value=max_n))
    m = draw(st.integers(min_value=0, max_value=max_m))
    edges = draw(
        st.lists(
            st.tuples(
                st.integers(0, n - 1), st.integers(0, n - 1)
            ),
            min_size=m, max_size=m,
        )
    )
    return n, edges


class TestCSRInvariants:
    @given(edge_lists())
    @settings(max_examples=60, deadline=None)
    def test_csr_structure_valid(self, ne):
        n, edges = ne
        g = from_edges(n, edges)
        assert len(g.indptr) == n + 1
        assert g.indptr[0] == 0
        assert g.indptr[-1] == len(g.indices)
        assert np.all(np.diff(g.indptr) >= 0)
        if len(g.indices):
            assert 0 <= g.indices.min() and g.indices.max() < n

    @given(edge_lists())
    @settings(max_examples=60, deadline=None)
    def test_dedupe_yields_simple_graph(self, ne):
        n, edges = ne
        g = from_edges(n, edges)
        seen = set()
        for u, v in g.iter_edges():
            assert u != v, "self-loop survived"
            assert (u, v) not in seen, "parallel arc survived"
            seen.add((u, v))

    @given(edge_lists())
    @settings(max_examples=60, deadline=None)
    def test_undirected_graph_is_symmetric(self, ne):
        n, edges = ne
        g = from_edges(n, edges, undirected=True)
        arcs = set(g.iter_edges())
        assert all((v, u) in arcs for u, v in arcs)

    @given(edge_lists())
    @settings(max_examples=60, deadline=None)
    def test_degree_sum_equals_arcs(self, ne):
        n, edges = ne
        g = from_edges(n, edges)
        assert g.out_degrees().sum() == g.num_arcs
        assert g.in_degrees().sum() == g.num_arcs

    @given(edge_lists())
    @settings(max_examples=60, deadline=None)
    def test_reverse_adjacency_consistent(self, ne):
        n, edges = ne
        g = from_edges(n, edges)
        fwd = set(g.iter_edges())
        rev = {(int(u), v) for v in range(n) for u in g.in_neighbors(v)}
        assert fwd == rev


class TestIORoundTrips:
    @given(edge_lists(), st.booleans())
    @settings(max_examples=40, deadline=None)
    def test_edge_list_round_trip(self, ne, undirected):
        n, edges = ne
        g = from_edges(n, edges, undirected=undirected)
        back = gio.from_edge_list_bytes(gio.to_edge_list_bytes(g))
        assert back.num_vertices == g.num_vertices
        assert back.undirected == g.undirected
        assert sorted(back.iter_edges()) == sorted(g.iter_edges())


class TestBFSInvariants:
    @given(edge_lists(), st.data())
    @settings(max_examples=40, deadline=None)
    def test_bfs_triangle_inequality_on_edges(self, ne, data):
        n, edges = ne
        g = from_edges(n, edges, undirected=True)
        src = data.draw(st.integers(0, n - 1))
        dist = bfs_levels(g, src)
        for u, v in g.iter_edges():
            if dist[u] >= 0:
                assert dist[v] >= 0  # neighbor of reached vertex is reached
                assert abs(int(dist[u]) - int(dist[v])) <= 1

    @given(edge_lists(), st.data())
    @settings(max_examples=40, deadline=None)
    def test_bfs_source_zero_everything_else_positive(self, ne, data):
        n, edges = ne
        g = from_edges(n, edges)
        src = data.draw(st.integers(0, n - 1))
        dist = bfs_levels(g, src)
        assert dist[src] == 0
        others = np.delete(dist, src)
        assert np.all((others == -1) | (others >= 1))


class TestGeneratorProperties:
    @given(st.integers(3, 40))
    @settings(max_examples=20, deadline=None)
    def test_ring_regularity(self, n):
        g = gen.ring(n)
        assert np.all(g.out_degrees() == 2)

    @given(st.integers(4, 64), st.integers(1, 3))
    @settings(max_examples=20, deadline=None)
    def test_ba_connectivity(self, n, m):
        if m >= n:
            return
        g = gen.barabasi_albert(n, m, seed=1)
        dist = bfs_levels(g, 0)
        assert np.all(dist >= 0)

    @given(st.integers(0, 2**31 - 1))
    @settings(max_examples=15, deadline=None)
    def test_ws_seed_determinism(self, seed):
        a = gen.watts_strogatz(30, 4, 0.3, seed=seed)
        b = gen.watts_strogatz(30, 4, 0.3, seed=seed)
        assert np.array_equal(a.indices, b.indices)
