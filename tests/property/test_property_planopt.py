"""Property: optimized plans are bit-identical to unoptimized plans.

Every lifted algorithm x every seeded graph: run ``DenseRefEngine`` with
the raw lifted plan and with the optimizer's output and diff every
observable at the bit level, then re-certify the optimized execution path
against the simulation engine with ``certify_determinism(engine=
"dense-ref")`` (which runs the default — optimizing — engine).  Includes
the two edge cases the rewrites are most likely to disturb: the k-core
peel (topology mutation + prune masks) and LPA's lexicographic mode
tie-break.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.algorithms import (
    ConnectedComponentsProgram,
    KCoreProgram,
    LabelPropagationProgram,
    PageRankProgram,
    SSSPProgram,
    WCCProgram,
)
from repro.bsp import JobSpec
from repro.check.planopt import certify_optimization
from repro.check.sanitizer import certify_determinism
from repro.graph import generators as gen
from repro.graph.csr import CSRGraph


def _weighted(g: CSRGraph, seed: int) -> CSRGraph:
    rng = np.random.default_rng(seed)
    return CSRGraph(
        g.num_vertices, g.indptr, g.indices, undirected=g.undirected,
        weights=rng.uniform(0.5, 3.0, g.indices.shape[0]),
    )


def _graphs():
    return [
        ("er", gen.erdos_renyi(60, 0.08, seed=3, directed=True)),
        ("ws", gen.watts_strogatz(60, 4, 0.3, seed=7).as_undirected()),
        ("ba", gen.barabasi_albert(50, 3, seed=11).as_undirected()),
        # path graph: every interior vertex ties on degree — the k-core
        # peel and LPA tie-break edge cases
        ("path", gen.path(24).as_undirected()),
    ]


def _cases():
    graphs = _graphs()
    out = []
    for gname, g in graphs:
        out.append((f"pagerank-{gname}", lambda g=g: JobSpec(
            PageRankProgram(iterations=12), g, num_workers=1)))
        out.append((f"sssp-{gname}", lambda g=g, s=gname: JobSpec(
            SSSPProgram(source=0), _weighted(g, seed=len(s)),
            num_workers=1)))
        out.append((f"cc-{gname}", lambda g=g: JobSpec(
            ConnectedComponentsProgram(), g, num_workers=1)))
        out.append((f"wcc-{gname}", lambda g=g: JobSpec(
            WCCProgram(), g, num_workers=1)))
        out.append((f"kcore-{gname}", lambda g=g: JobSpec(
            KCoreProgram(k=2), g, num_workers=1)))
        out.append((f"lpa-{gname}", lambda g=g: JobSpec(
            LabelPropagationProgram(max_rounds=20), g, num_workers=1)))
    return out


@pytest.mark.parametrize(
    "make_job", [pytest.param(mk, id=name) for name, mk in _cases()]
)
def test_optimized_plan_is_bit_identical(make_job):
    cert = certify_optimization(make_job)
    assert cert.ok, cert.summary()


@pytest.mark.parametrize(
    "program_factory",
    [
        lambda: PageRankProgram(iterations=10),
        lambda: SSSPProgram(source=0),
        ConnectedComponentsProgram,
        WCCProgram,
        lambda: KCoreProgram(k=2),
        lambda: LabelPropagationProgram(max_rounds=15),
    ],
    ids=["pagerank", "sssp", "cc", "wcc", "kcore", "lpa"],
)
def test_optimized_execution_stays_certified_vs_sim(program_factory):
    # certify_determinism's dense-ref arm builds the default engine, which
    # optimizes — so a divergent rewrite fails this, not just the raw diff
    g = gen.watts_strogatz(48, 4, 0.3, seed=9).as_undirected()
    report = certify_determinism(
        program_factory, g, num_workers=4, engine="dense-ref"
    )
    assert report.ok, report.summary()
