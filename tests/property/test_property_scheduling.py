"""Property-based tests: scheduling heuristics and elastic model invariants."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.cloud import LARGE_VM
from repro.elastic import (
    ActiveFractionPolicy,
    AlignedTraces,
    ElasticityModel,
    FixedWorkers,
    OraclePolicy,
)
from repro.scheduling import (
    AdaptiveSizer,
    DynamicPeakDetect,
    InitiationContext,
    SamplingSizer,
    SizerObservation,
    StaticEveryN,
    StaticSizer,
)


class TestSizerProperties:
    @given(
        st.integers(1, 50),
        st.lists(
            st.tuples(st.integers(1, 40), st.floats(1.0, 1e9)),
            min_size=0, max_size=10,
        ),
        st.integers(1, 1000),
    )
    @settings(max_examples=60, deadline=None)
    def test_sizers_always_return_valid_sizes(self, init, observations, remaining):
        for sizer in (
            StaticSizer(init),
            SamplingSizer(target_bytes=1e6, probe_size=min(init, 10)),
            AdaptiveSizer(target_bytes=1e6, initial_size=init),
        ):
            for size, peak in observations:
                sizer.observe(
                    SizerObservation(swath_size=size, peak_memory=peak,
                                     baseline_memory=0.0)
                )
            out = sizer.next_size(remaining=remaining)
            assert 1 <= out <= max(remaining, 1)

    @given(st.floats(1e3, 1e9), st.integers(1, 30), st.floats(1.0, 1e12))
    @settings(max_examples=60, deadline=None)
    def test_adaptive_moves_toward_target(self, target, size, peak):
        sizer = AdaptiveSizer(target_bytes=target, initial_size=size)
        sizer.observe(SizerObservation(size, peak, 0.0))
        nxt = sizer.next_size(10_000)
        if peak > target:
            assert nxt <= size  # over target: never grow
        else:
            assert nxt >= min(size, 10_000) or nxt == 1


class TestInitiationProperties:
    @given(
        st.lists(st.integers(0, 10**6), min_size=0, max_size=30),
        st.integers(1, 10),
    )
    @settings(max_examples=60, deadline=None)
    def test_quiescence_always_fires(self, history, n):
        ctx = InitiationContext(
            superstep=len(history), steps_since_initiation=len(history),
            messages_history=history, quiescent=True,
        )
        for policy in (StaticEveryN(n), DynamicPeakDetect()):
            assert policy.should_initiate(ctx)

    @given(st.lists(st.integers(0, 10**6), min_size=2, max_size=30))
    @settings(max_examples=60, deadline=None)
    def test_dynamic_fires_only_after_rise(self, history):
        policy = DynamicPeakDetect()
        fired_at = None
        seen_rise = False
        for i in range(1, len(history) + 1):
            ctx = InitiationContext(
                superstep=i, steps_since_initiation=i,
                messages_history=history[:i], quiescent=False,
            )
            if policy.should_initiate(ctx):
                fired_at = i
                break
            if i >= 2 and history[i - 1] > history[i - 2]:
                seen_rise = True
        if fired_at is not None:
            assert seen_rise
            assert history[fired_at - 1] < history[fired_at - 2]


@st.composite
def aligned(draw, max_len=20):
    n = draw(st.integers(1, max_len))
    lows = draw(st.lists(st.floats(0.01, 100.0), min_size=n, max_size=n))
    highs = draw(st.lists(st.floats(0.01, 100.0), min_size=n, max_size=n))
    active = draw(st.lists(st.integers(0, 1000), min_size=n, max_size=n))
    return AlignedTraces(
        low=4, high=8,
        time_low=np.array(lows), time_high=np.array(highs),
        active=np.array(active), num_graph_vertices=1000,
    )


class TestElasticModelProperties:
    @given(aligned())
    @settings(max_examples=60, deadline=None)
    def test_oracle_is_global_lower_bound(self, traces):
        em = ElasticityModel(traces)
        oracle = em.evaluate(OraclePolicy()).total_time
        for p in (FixedWorkers(4), FixedWorkers(8), ActiveFractionPolicy(0.5)):
            assert oracle <= em.evaluate(p).total_time + 1e-9

    @given(aligned())
    @settings(max_examples=60, deadline=None)
    def test_oracle_equals_pointwise_min(self, traces):
        em = ElasticityModel(traces)
        oracle = em.evaluate(OraclePolicy()).total_time
        assert oracle == np.minimum(traces.time_low, traces.time_high).sum()

    @given(aligned())
    @settings(max_examples=40, deadline=None)
    def test_costs_consistent_with_vm_seconds(self, traces):
        em = ElasticityModel(traces, vm_spec=LARGE_VM)
        for p in (FixedWorkers(4), ActiveFractionPolicy(0.5)):
            out = em.evaluate(p)
            assert out.cost == out.vm_seconds * LARGE_VM.price_per_second
            assert out.vm_seconds >= 4 * out.step_times.sum() - 1e-9
