"""Property-based tests: partitioners on random graphs."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.graph.builder import from_edges
from repro.partition import (
    HashPartitioner,
    MultilevelPartitioner,
    StreamingBalanced,
    StreamingChunking,
    StreamingGreedy,
    balance,
    edge_cut,
    remote_edge_fraction,
)

PARTITIONER_FACTORIES = [
    lambda: HashPartitioner(),
    lambda: MultilevelPartitioner(seed=7),
    lambda: StreamingBalanced(),
    lambda: StreamingChunking(),
    lambda: StreamingGreedy(),
]


@st.composite
def graphs(draw, max_n=40):
    n = draw(st.integers(min_value=2, max_value=max_n))
    m = draw(st.integers(min_value=0, max_value=3 * n))
    edges = draw(
        st.lists(
            st.tuples(st.integers(0, n - 1), st.integers(0, n - 1)),
            min_size=m, max_size=m,
        )
    )
    return from_edges(n, edges, undirected=True)


class TestPartitionInvariants:
    @given(graphs(), st.integers(1, 6), st.integers(0, 4))
    @settings(max_examples=40, deadline=None)
    def test_every_vertex_assigned_exactly_once(self, g, k, which):
        part = PARTITIONER_FACTORIES[which]()
        p = part.partition(g, k)
        assert len(p.assignment) == g.num_vertices
        covered = np.concatenate(
            [p.vertices_of(i) for i in range(k)]
        ) if g.num_vertices else np.empty(0)
        assert sorted(covered.tolist()) == list(range(g.num_vertices))

    @given(graphs(), st.integers(1, 6), st.integers(0, 4))
    @settings(max_examples=40, deadline=None)
    def test_sizes_sum_to_n(self, g, k, which):
        p = PARTITIONER_FACTORIES[which]().partition(g, k)
        assert p.sizes().sum() == g.num_vertices

    @given(graphs(), st.integers(1, 6))
    @settings(max_examples=30, deadline=None)
    def test_cut_metrics_consistent(self, g, k):
        p = HashPartitioner().partition(g, k)
        cut = edge_cut(g, p)
        frac = remote_edge_fraction(g, p)
        assert 0 <= cut <= g.num_edges
        if g.num_edges:
            assert frac == cut / g.num_edges
        assert balance(g, p) >= 1.0 - 1e-12

    @given(graphs())
    @settings(max_examples=30, deadline=None)
    def test_single_part_zero_cut(self, g):
        p = MultilevelPartitioner(seed=1).partition(g, 1)
        assert edge_cut(g, p) == 0

    @given(graphs(), st.integers(2, 5))
    @settings(max_examples=25, deadline=None)
    def test_streaming_balanced_near_perfect(self, g, k):
        p = StreamingBalanced().partition(g, k)
        sizes = p.sizes()
        assert sizes.max() - sizes.min() <= 1
