"""Property-based tests: migration machinery and trace serialization."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.algorithms import PageRankProgram, pagerank_reference
from repro.analysis.traces import trace_from_dict, trace_to_dict
from repro.bsp import JobSpec, run_job
from repro.elastic import LiveActiveFraction, run_live
from repro.graph.builder import from_edges
from repro.partition.dynamic import run_repartitioned


@st.composite
def connected_graphs(draw, max_n=20):
    n = draw(st.integers(min_value=2, max_value=max_n))
    edges = [(draw(st.integers(0, i - 1)), i) for i in range(1, n)]
    extra = draw(
        st.lists(
            st.tuples(st.integers(0, n - 1), st.integers(0, n - 1)),
            max_size=n,
        )
    )
    return from_edges(n, edges + extra, undirected=True)


class _Toggle(LiveActiveFraction):
    def __init__(self, low, high, period):
        super().__init__(low=low, high=high)
        self.period = period

    def decide(self, engine, stats):
        if (stats.index + 1) % self.period:
            return engine.num_workers
        return self.high if engine.num_workers == self.low else self.low


class TestMigrationProperties:
    @given(connected_graphs(), st.integers(1, 3), st.integers(1, 3))
    @settings(max_examples=25, deadline=None)
    def test_live_scaling_preserves_pagerank(self, g, low, extra):
        high = low + extra
        job = JobSpec(program=PageRankProgram(6), graph=g, num_workers=low)
        res = run_live(job, _Toggle(low, high, period=2))
        ref = pagerank_reference(g, iterations=6)
        assert np.allclose(res.values_array(), ref, atol=1e-10)

    @given(connected_graphs(), st.integers(1, 4), st.integers(1, 4))
    @settings(max_examples=25, deadline=None)
    def test_dynamic_repartitioning_preserves_pagerank(self, g, workers, interval):
        job = JobSpec(program=PageRankProgram(6), graph=g, num_workers=workers)
        res = run_repartitioned(job, interval=interval)
        ref = pagerank_reference(g, iterations=6)
        assert np.allclose(res.values_array(), ref, atol=1e-10)


class TestTraceSerializationProperties:
    @given(connected_graphs(), st.integers(1, 4), st.integers(2, 8))
    @settings(max_examples=20, deadline=None)
    def test_round_trip_preserves_all_series(self, g, workers, iters):
        res = run_job(
            JobSpec(program=PageRankProgram(iters), graph=g, num_workers=workers)
        )
        back = trace_from_dict(trace_to_dict(res.trace))
        assert back.total_time == res.trace.total_time
        assert np.array_equal(back.series_messages(), res.trace.series_messages())
        assert np.array_equal(
            back.series_peak_memory(), res.trace.series_peak_memory()
        )
        assert back.breakdown() == res.trace.breakdown()
