"""Property-based tests: engine semantics and algorithm correctness on
random graphs and random schedules."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.algorithms import (
    BCProgram,
    PageRankProgram,
    betweenness_reference,
    pagerank_reference,
)
from repro.algorithms import bc as bc_mod
from repro.bsp import JobSpec, VertexProgram, run_job
from repro.graph.builder import from_edges
from repro.scheduling import (
    DynamicPeakDetect,
    SequentialInitiation,
    StaticEveryN,
    StaticSizer,
    SwathController,
)


@st.composite
def connected_graphs(draw, max_n=24):
    """Random connected undirected graph (spanning tree + extra edges)."""
    n = draw(st.integers(min_value=2, max_value=max_n))
    edges = [
        (draw(st.integers(0, i - 1)), i) for i in range(1, n)
    ]  # random spanning tree
    extra = draw(
        st.lists(
            st.tuples(st.integers(0, n - 1), st.integers(0, n - 1)),
            max_size=2 * n,
        )
    )
    return from_edges(n, edges + extra, undirected=True)


class _MessageConservation(VertexProgram):
    """Every vertex sends `fanout` messages in step 0; receivers count."""

    def __init__(self, fanout):
        self.fanout = fanout

    def compute(self, ctx, state, messages):
        got = (state or 0) + len(messages)
        if ctx.superstep == 0:
            for u in list(ctx.out_neighbors)[: self.fanout]:
                ctx.send(int(u), 1)
        ctx.vote_to_halt()
        return got


class TestEngineProperties:
    @given(connected_graphs(), st.integers(1, 5), st.integers(1, 3))
    @settings(max_examples=30, deadline=None)
    def test_message_conservation(self, g, workers, fanout):
        """Every sent message is delivered exactly once."""
        res = run_job(
            JobSpec(
                program=_MessageConservation(fanout), graph=g, num_workers=workers
            )
        )
        sent = sum(
            min(fanout, g.out_degree(v)) for v in range(g.num_vertices)
        )
        received = sum(res.values.values())
        assert received == sent
        assert res.trace.total_messages == sent

    @given(connected_graphs(), st.integers(1, 5))
    @settings(max_examples=20, deadline=None)
    def test_pagerank_matches_reference_any_worker_count(self, g, workers):
        res = run_job(
            JobSpec(program=PageRankProgram(6), graph=g, num_workers=workers)
        )
        ref = pagerank_reference(g, iterations=6)
        assert np.allclose(res.values_array(), ref, atol=1e-10)


class TestBCProperties:
    @given(connected_graphs(max_n=16), st.integers(1, 4))
    @settings(max_examples=25, deadline=None)
    def test_bc_matches_reference(self, g, workers):
        res = run_job(
            JobSpec(
                program=BCProgram(), graph=g, num_workers=workers,
                initially_active=False,
                initial_messages=bc_mod.start_messages(range(g.num_vertices)),
            )
        )
        ref = betweenness_reference(g)
        assert np.allclose(res.values_array(), ref, atol=1e-9)

    @given(connected_graphs(max_n=16), st.data())
    @settings(max_examples=20, deadline=None)
    def test_bc_invariant_under_random_swath_schedule(self, g, data):
        n = g.num_vertices
        roots = list(range(min(n, 8)))
        swath = data.draw(st.integers(1, len(roots)))
        policy = data.draw(
            st.sampled_from(
                [SequentialInitiation(), StaticEveryN(2), DynamicPeakDetect()]
            )
        )
        ctrl = SwathController(
            roots=roots, start_factory=bc_mod.start_messages,
            sizer=StaticSizer(swath), initiation=policy,
        )
        res = run_job(
            JobSpec(
                program=BCProgram(), graph=g, num_workers=3,
                initially_active=False, observers=[ctrl],
            )
        )
        ref = betweenness_reference(g, roots=roots)
        assert ctrl.completed_all
        assert np.allclose(res.values_array(), ref, atol=1e-9)
