"""Blob storage and queue service stand-ins."""

import pytest

from repro.cloud import BlobStore, QueueService
from repro.graph import generators as gen
from repro.graph import io as gio


class TestBlobStore:
    def test_put_get(self):
        b = BlobStore()
        b.put("c", "file", b"hello")
        assert b.get("c", "file") == b"hello"

    def test_overwrite(self):
        b = BlobStore()
        b.put("c", "f", b"1")
        b.put("c", "f", b"2")
        assert b.get("c", "f") == b"2"

    def test_missing_blob_raises(self):
        b = BlobStore()
        with pytest.raises(KeyError):
            b.get("c", "nope")

    def test_delete(self):
        b = BlobStore()
        b.put("c", "f", b"x")
        b.delete("c", "f")
        assert not b.exists("c", "f")
        with pytest.raises(KeyError):
            b.delete("c", "f")

    def test_list_sorted(self):
        b = BlobStore()
        b.put("c", "zeta", b"")
        b.put("c", "alpha", b"")
        assert b.list("c") == ["alpha", "zeta"]

    def test_non_bytes_rejected(self):
        b = BlobStore()
        with pytest.raises(TypeError):
            b.put("c", "f", "not-bytes")

    def test_total_bytes(self):
        b = BlobStore()
        b.put("a", "f", b"12345")
        b.put("b", "g", b"123")
        assert b.total_bytes() == 8

    def test_round_trips_graph_files(self):
        # The workers' graph-loading path: edge list in blob storage.
        b = BlobStore()
        g = gen.ring(12)
        b.put("graphs", "ring.txt", gio.to_edge_list_bytes(g))
        back = gio.from_edge_list_bytes(b.get("graphs", "ring.txt"))
        assert sorted(back.iter_edges()) == sorted(g.iter_edges())


class TestQueues:
    def test_fifo_order(self):
        q = QueueService().queue("step")
        q.put(1)
        q.put(2)
        assert q.get() == 1
        assert q.get() == 2

    def test_empty_get_raises(self):
        q = QueueService().queue("step")
        with pytest.raises(IndexError):
            q.get()

    def test_try_get_returns_none(self):
        q = QueueService().queue("step")
        assert q.try_get() is None

    def test_len_and_empty(self):
        q = QueueService().queue("barrier")
        assert q.empty
        q.put("token")
        assert len(q) == 1
        assert not q.empty

    def test_named_queues_are_stable(self):
        svc = QueueService()
        assert svc.queue("a") is svc.queue("a")
        assert svc.queue("a") is not svc.queue("b")
        assert svc.names() == ["a", "b"]
