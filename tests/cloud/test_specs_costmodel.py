"""VM specs and the performance-model coefficient set."""

import pytest

from repro.cloud import GB, LARGE_VM, MBPS, SMALL_VM, PerfModel, scaled_large
from repro.cloud.costmodel import DEFAULT_PERF_MODEL, SCALED_PERF_MODEL


class TestVMSpecs:
    def test_paper_large_vm(self):
        assert LARGE_VM.cores == 4
        assert LARGE_VM.memory_bytes == 7 * GB
        assert LARGE_VM.network_bytes_per_s == 400 * MBPS
        assert LARGE_VM.price_per_hour == 0.48

    def test_small_is_quarter_of_large(self):
        assert SMALL_VM.cores * 4 == LARGE_VM.cores
        assert SMALL_VM.network_bytes_per_s * 4 == LARGE_VM.network_bytes_per_s
        assert SMALL_VM.price_per_hour * 4 == LARGE_VM.price_per_hour
        assert SMALL_VM.memory_bytes * 4 == LARGE_VM.memory_bytes

    def test_price_per_second(self):
        assert LARGE_VM.price_per_second == pytest.approx(0.48 / 3600)

    def test_scaled_large_keeps_shape(self):
        s = scaled_large(10_000_000)
        assert s.memory_bytes == 10_000_000
        assert s.cores == LARGE_VM.cores
        assert s.price_per_hour == LARGE_VM.price_per_hour

    def test_invalid_spec_fields(self):
        from repro.cloud.specs import VMSpec

        with pytest.raises(ValueError):
            VMSpec("x", 0, 1, 1, 1)
        with pytest.raises(ValueError):
            VMSpec("x", 1, 0, 1, 1)
        with pytest.raises(ValueError):
            VMSpec("x", 1, 1, 0, 1)
        with pytest.raises(ValueError):
            VMSpec("x", 1, 1, 1, -1)


class TestPerfModel:
    def test_default_is_valid(self):
        assert DEFAULT_PERF_MODEL.t_msg_in > 0

    def test_scaled_regime_scales_data_plane_only(self):
        # Per-op costs scale ~1000/graph-shrink; barrier stays same order.
        assert SCALED_PERF_MODEL.t_msg_in > 50 * DEFAULT_PERF_MODEL.t_msg_in
        assert SCALED_PERF_MODEL.barrier_base <= DEFAULT_PERF_MODEL.barrier_base

    def test_barrier_grows_with_workers(self):
        m = PerfModel()
        assert m.barrier_time(8) > m.barrier_time(4) > 0

    def test_barrier_invalid_workers(self):
        with pytest.raises(ValueError):
            PerfModel().barrier_time(0)

    def test_effective_cores(self):
        m = PerfModel(parallel_efficiency=0.75)
        assert m.effective_cores(4) == pytest.approx(3.0)
        assert m.effective_cores(1) == 1.0  # never below one core

    def test_message_sizes(self):
        m = PerfModel(msg_header_bytes=32, default_payload_bytes=16)
        assert m.message_wire_bytes(16) == 48
        assert m.message_memory_bytes(16) == 48 * m.msg_memory_expansion

    def test_without_ablation(self):
        m = PerfModel().without(barrier_base=0.0, barrier_per_worker=0.0)
        assert m.barrier_time(8) == 0.0
        assert m.t_msg_in == PerfModel().t_msg_in  # untouched

    def test_validation_efficiency(self):
        with pytest.raises(ValueError):
            PerfModel(parallel_efficiency=0.0)
        with pytest.raises(ValueError):
            PerfModel(parallel_efficiency=1.5)

    def test_validation_negative_coefficient(self):
        with pytest.raises(ValueError):
            PerfModel(t_serialize=-1.0)

    def test_validation_jitter(self):
        with pytest.raises(ValueError):
            PerfModel(jitter=1.0)

    def test_frozen(self):
        with pytest.raises(Exception):
            PerfModel().t_msg_in = 0.5
