"""Dollar attribution: PriceBook arithmetic, attribute_cost invariants
(per-step sums == total, exactly, grain included), the live CostMeter
gauges, and the JobResult.cost surfacing across engines."""

from types import SimpleNamespace

import pytest

from repro.analysis import RunConfig, run_pagerank
from repro.cloud import (
    DEFAULT_PRICES,
    CostMeter,
    PriceBook,
    attribute_cost,
)
from repro.cloud.specs import GB, LARGE_VM, SMALL_VM, VMSpec
from repro.obs import MetricsRegistry


def fake_trace(steps):
    """JobTrace-shaped source: [(num_workers, elapsed, [bytes_out...])]."""
    out = []
    for i, (n, elapsed, outs) in enumerate(steps):
        out.append(SimpleNamespace(
            index=i,
            num_workers=n,
            elapsed=elapsed,
            workers=[
                SimpleNamespace(worker=w, elapsed=elapsed, bytes_out=b)
                for w, b in enumerate(outs)
            ],
        ))
    return SimpleNamespace(steps=out)


class TestPriceBook:
    def test_rate_prefers_override_then_spec(self):
        book = PriceBook(instance_rates={"azure-large": 7.2})
        assert book.rate_per_second(LARGE_VM) == pytest.approx(7.2 / 3600)
        assert book.rate_per_second(SMALL_VM) == pytest.approx(
            SMALL_VM.price_per_hour / 3600
        )

    def test_egress_dollars_per_gb(self):
        assert PriceBook(egress_per_gb=0.12).egress_cost(2 * GB) == (
            pytest.approx(0.24)
        )

    def test_billing_grain_rounds_up(self):
        book = PriceBook(billing_grain_seconds=3600.0)
        assert book.billed_duration(1.0) == 3600.0
        assert book.billed_duration(3600.0) == 3600.0
        assert book.billed_duration(3600.1) == 7200.0
        assert PriceBook().billed_duration(17.3) == 17.3


class TestAttributeCost:
    def test_components_add_up(self):
        trace = fake_trace([
            (2, 10.0, [GB, 0]),
            (2, 30.0, [0, 2 * GB]),
        ])
        rep = attribute_cost(trace)
        w, m = LARGE_VM.price_per_hour / 3600, SMALL_VM.price_per_hour / 3600
        assert rep.compute == pytest.approx(2 * 40.0 * w)
        assert rep.manager == pytest.approx(40.0 * m)
        assert rep.egress == pytest.approx(3 * 0.12)
        assert rep.rounding == 0.0
        assert rep.total == pytest.approx(
            rep.compute + rep.manager + rep.egress
        )
        assert rep.worker_spec == LARGE_VM.name

    def test_per_step_sums_exactly_to_total(self):
        trace = fake_trace([
            (3, 7.3, [100, 200, 300]),
            (3, 1.9, [0, 0, 0]),
            (2, 11.1, [5_000_000, 0]),
        ])
        rep = attribute_cost(trace)
        assert sum(s["total"] for s in rep.per_step) == pytest.approx(
            rep.total, rel=1e-12
        )

    def test_grain_surcharge_distributed_pro_rata(self):
        trace = fake_trace([(2, 100.0, [0, 0]), (2, 300.0, [0, 0])])
        book = PriceBook(billing_grain_seconds=3600.0)
        rep = attribute_cost(trace, prices=book)
        # 400s of run billed as 3600s for 1 manager + 2 workers
        w, m = LARGE_VM.price_per_hour / 3600, SMALL_VM.price_per_hour / 3600
        assert rep.rounding == pytest.approx(3200.0 * (m + 2 * w))
        shares = [s["rounding"] for s in rep.per_step]
        assert shares[1] == pytest.approx(3 * shares[0])
        # the invariant the module promises: exact, grain included
        assert sum(s["total"] for s in rep.per_step) == pytest.approx(
            rep.total, rel=1e-12
        )

    def test_per_worker_billed_for_full_steps_plus_own_egress(self):
        trace = fake_trace([(2, 10.0, [GB, 0]), (2, 5.0, [0, 0])])
        rep = attribute_cost(trace)
        w_rate = LARGE_VM.price_per_hour / 3600
        by_worker = {e["worker"]: e for e in rep.per_worker}
        assert by_worker[0]["billed_seconds"] == pytest.approx(15.0)
        assert by_worker[0]["egress"] == pytest.approx(0.12)
        assert by_worker[1]["egress"] == 0.0
        assert by_worker[0]["total"] == pytest.approx(
            15.0 * w_rate + 0.12
        )

    def test_rejects_unknown_source_shape(self):
        with pytest.raises(TypeError):
            attribute_cost(object())

    def test_summary_and_dict_roundtrip(self):
        rep = attribute_cost(fake_trace([(1, 2.0, [0])]))
        assert "total" in rep.summary() and "$" in rep.summary()
        d = rep.to_dict()
        assert d["total"] == rep.total
        assert len(d["per_step"]) == 1


class TestCostMeter:
    def _engine(self, workers=2):
        return SimpleNamespace(
            vm_spec=LARGE_VM,
            job=SimpleNamespace(manager_vm=SMALL_VM),
            num_workers=workers,
        )

    def _stats(self, n, elapsed, outs, index=0):
        return SimpleNamespace(
            index=index,
            num_workers=n,
            elapsed=elapsed,
            workers=[
                SimpleNamespace(worker=w, elapsed=elapsed, bytes_out=b)
                for w, b in enumerate(outs)
            ],
        )

    def test_gauges_track_attribution(self):
        reg = MetricsRegistry()
        meter = CostMeter(reg)
        engine = self._engine()
        meter.on_job_start(engine)
        meter.on_superstep_end(engine, self._stats(2, 10.0, [GB, 0]))
        meter.on_superstep_end(engine, self._stats(2, 30.0, [0, 2 * GB]))
        meter.on_job_end(engine, None)
        rep = attribute_cost(fake_trace([
            (2, 10.0, [GB, 0]), (2, 30.0, [0, 2 * GB]),
        ]))
        assert meter.total == pytest.approx(rep.total)
        g = reg.gauge("repro_cost_total_dollars")
        assert g.value == pytest.approx(rep.total)
        assert reg.gauge("repro_cost_egress_dollars").value == (
            pytest.approx(rep.egress)
        )

    def test_finalize_adds_grain_surcharge_once(self):
        reg = MetricsRegistry()
        book = PriceBook(billing_grain_seconds=60.0)
        meter = CostMeter(reg, prices=book)
        engine = self._engine()
        meter.on_superstep_end(engine, self._stats(2, 10.0, [0, 0]))
        before = meter.total
        meter.on_job_end(engine, None)
        rep = attribute_cost(fake_trace([(2, 10.0, [0, 0])]), prices=book)
        assert meter.total > before
        assert meter.total == pytest.approx(rep.total)

    def test_meter_matches_job_result_cost_live(self, small_world):
        # Ride the meter along a real run; its live total must agree
        # with the post-hoc attribution the engine puts on the result.
        reg = MetricsRegistry()
        meter = CostMeter(reg)
        res = run_pagerank(
            small_world, RunConfig(num_workers=3), iterations=5,
            observers=[meter],
        )
        assert res.cost is not None
        assert meter.total == pytest.approx(res.cost.total, rel=1e-9)
        # acceptance bound: per-step attribution sums to within 1% of
        # the whole-run cost from the same pricing table (here: exact)
        assert sum(s["total"] for s in res.cost.per_step) == pytest.approx(
            res.cost.total, rel=0.01
        )


class TestJobResultCost:
    @pytest.mark.parametrize("engine", ["sim", "threaded", "process"])
    def test_every_engine_attaches_cost(self, small_world, engine):
        res = run_pagerank(
            small_world, RunConfig(num_workers=2, engine=engine),
            iterations=4,
        )
        assert res.cost is not None
        assert res.cost.total > 0
        assert len(res.cost.per_step) == res.supersteps
        assert {e["worker"] for e in res.cost.per_worker} == {0, 1}

    def test_custom_vm_spec_changes_the_bill(self, small_world):
        cheap = VMSpec(
            name="cheap", cores=1, memory_bytes=1 << 30,
            network_bytes_per_s=1e9, price_per_hour=0.01,
        )
        base = run_pagerank(
            small_world, RunConfig(num_workers=2), iterations=3
        )
        tiny = run_pagerank(
            small_world,
            RunConfig(num_workers=2, vm_spec=cheap),
            iterations=3,
        )
        assert tiny.cost.total < base.cost.total
        assert tiny.cost.worker_spec == "cheap"
