"""Network transfer timing and memory spill models."""

import pytest

from repro.cloud import (
    MemoryModel,
    MemoryUsage,
    NetworkModel,
    PerfModel,
    TrafficSummary,
    scaled_large,
)


@pytest.fixture
def spec():
    return scaled_large(1_000_000)


@pytest.fixture
def model():
    return PerfModel()


class TestNetworkModel:
    def test_zero_traffic_zero_time(self, spec, model):
        nm = NetworkModel(spec, model)
        t = nm.transfer_time(TrafficSummary(0, 0, 0, 0))
        assert t == 0.0

    def test_volume_term_uses_nic_bandwidth(self, spec, model):
        nm = NetworkModel(spec, model)
        t = nm.transfer_time(TrafficSummary(spec.network_bytes_per_s, 0, 0, 0))
        assert t == pytest.approx(1.0)

    def test_full_duplex_takes_max(self, spec, model):
        nm = NetworkModel(spec, model)
        big, small = 1e6, 1e3
        t1 = nm.transfer_time(TrafficSummary(big, small, 0, 0))
        t2 = nm.transfer_time(TrafficSummary(small, big, 0, 0))
        assert t1 == pytest.approx(t2)

    def test_per_peer_overheads(self, spec, model):
        nm = NetworkModel(spec, model)
        t0 = nm.transfer_time(TrafficSummary(0, 0, 0, 0))
        t7 = nm.transfer_time(TrafficSummary(0, 0, 7, 7))
        expected = 7 * (model.latency_per_peer + model.conn_setup_per_peer)
        assert t7 - t0 == pytest.approx(expected)

    def test_jitter_changes_times_deterministically(self, spec):
        m = PerfModel(jitter=0.3, jitter_seed=42)
        t_a = NetworkModel(spec, m).transfer_time(TrafficSummary(1e6, 0, 1, 1))
        t_b = NetworkModel(spec, m).transfer_time(TrafficSummary(1e6, 0, 1, 1))
        assert t_a == pytest.approx(t_b)  # same seed, same first draw
        t_plain = NetworkModel(spec, PerfModel()).transfer_time(
            TrafficSummary(1e6, 0, 1, 1)
        )
        assert t_a != pytest.approx(t_plain)

    def test_negative_traffic_rejected(self):
        with pytest.raises(ValueError):
            TrafficSummary(-1, 0, 0, 0)
        with pytest.raises(ValueError):
            TrafficSummary(0, 0, -1, 0)


class TestMemoryModel:
    def test_within_capacity_no_slowdown(self, spec, model):
        mm = MemoryModel(spec, model)
        assert mm.slowdown(spec.memory_bytes) == 1.0
        assert mm.slowdown(0) == 1.0

    def test_overflow_ratio(self, spec, model):
        mm = MemoryModel(spec, model)
        assert mm.overflow_ratio(spec.memory_bytes * 1.5) == pytest.approx(0.5)
        assert mm.overflow_ratio(spec.memory_bytes // 2) == 0.0

    def test_slowdown_linear_in_overflow(self, spec):
        m = PerfModel(spill_penalty=10.0)
        mm = MemoryModel(spec, m)
        assert mm.slowdown(spec.memory_bytes * 1.2) == pytest.approx(3.0)

    def test_restart_threshold(self, spec):
        m = PerfModel(restart_overflow_ratio=0.5)
        mm = MemoryModel(spec, m)
        assert not mm.restart_triggered(spec.memory_bytes * 1.4)
        assert mm.restart_triggered(spec.memory_bytes * 1.6)

    def test_memory_usage_total(self):
        u = MemoryUsage(graph_bytes=10, state_bytes=20, buffered_message_bytes=30)
        assert u.total == 60

    def test_memory_usage_validation(self):
        with pytest.raises(ValueError):
            MemoryUsage(-1, 0, 0)
