"""Spot VM market helpers."""

import pytest

from repro.bsp.superstep import JobTrace, SuperstepStats
from repro.cloud import LARGE_VM, expected_evictions, spot_failure_schedule, spot_price


def make_trace(step_seconds, n_steps, workers=4):
    t = JobTrace()
    for i in range(n_steps):
        s = SuperstepStats(index=i, num_workers=workers)
        s.elapsed = step_seconds
        t.append(s)
    return t


class TestSpotPrice:
    def test_discounted_price(self):
        spot = spot_price(LARGE_VM, 0.3)
        assert spot.price_per_hour == pytest.approx(0.48 * 0.3)
        assert spot.cores == LARGE_VM.cores
        assert "spot30" in spot.name

    def test_invalid_discount(self):
        with pytest.raises(ValueError):
            spot_price(LARGE_VM, 0.0)
        with pytest.raises(ValueError):
            spot_price(LARGE_VM, 1.5)


class TestExpectedEvictions:
    def test_linear_in_rate_and_time(self):
        trace = make_trace(step_seconds=360.0, n_steps=10)  # 1 hour total
        assert expected_evictions(trace, 4, 2.0) == pytest.approx(8.0)

    def test_zero_rate(self):
        trace = make_trace(1.0, 5)
        assert expected_evictions(trace, 4, 0.0) == 0.0

    def test_negative_rate_rejected(self):
        with pytest.raises(ValueError):
            expected_evictions(make_trace(1.0, 1), 4, -1.0)


class TestFailureSchedule:
    def test_zero_rate_empty_schedule(self):
        trace = make_trace(10.0, 20)
        assert spot_failure_schedule(trace, 4, 0.0) == {}

    def test_high_rate_evicts_often(self):
        trace = make_trace(600.0, 20)  # long supersteps
        sched = spot_failure_schedule(trace, 4, evictions_per_hour=10.0, seed=1)
        assert len(sched) >= 15

    def test_at_most_one_victim_per_superstep(self):
        trace = make_trace(3600.0, 10)
        sched = spot_failure_schedule(trace, 8, evictions_per_hour=100.0, seed=2)
        assert all(0 <= w < 8 for w in sched.values())
        assert len(sched) <= 10

    def test_deterministic(self):
        trace = make_trace(100.0, 30)
        a = spot_failure_schedule(trace, 4, 5.0, seed=3)
        b = spot_failure_schedule(trace, 4, 5.0, seed=3)
        assert a == b

    def test_seed_changes_schedule(self):
        trace = make_trace(100.0, 30)
        a = spot_failure_schedule(trace, 4, 5.0, seed=3)
        b = spot_failure_schedule(trace, 4, 5.0, seed=4)
        assert a != b

    def test_rate_monotone(self):
        trace = make_trace(100.0, 40)
        low = spot_failure_schedule(trace, 4, 1.0, seed=5)
        high = spot_failure_schedule(trace, 4, 50.0, seed=5)
        assert len(high) >= len(low)
