"""Billing meter and elastic provisioner accounting."""

import pytest

from repro.cloud import (
    BillingMeter,
    ElasticProvisioner,
    LARGE_VM,
    PerfModel,
    SMALL_VM,
)


class TestBillingMeter:
    def test_single_charge(self):
        m = BillingMeter()
        line = m.charge(LARGE_VM, 8, 3600.0)
        assert line.vm_seconds == 8 * 3600
        assert m.total_cost == pytest.approx(8 * 0.48)

    def test_accumulates(self):
        m = BillingMeter()
        m.charge(LARGE_VM, 4, 1800.0)
        m.charge(LARGE_VM, 8, 1800.0)
        assert m.total_vm_seconds == 4 * 1800 + 8 * 1800

    def test_mixed_specs_merged(self):
        m = BillingMeter()
        m.charge(LARGE_VM, 1, 3600.0)
        m.charge(SMALL_VM, 1, 3600.0)
        merged = m.merged()
        assert merged[LARGE_VM.name] == pytest.approx(0.48)
        assert merged[SMALL_VM.name] == pytest.approx(0.12)

    def test_normalization(self):
        a, b = BillingMeter(), BillingMeter()
        a.charge(LARGE_VM, 8, 100.0)
        b.charge(LARGE_VM, 4, 100.0)
        assert a.cost_normalized_to(b) == pytest.approx(2.0)

    def test_normalize_to_zero_baseline_raises(self):
        a, b = BillingMeter(), BillingMeter()
        a.charge(LARGE_VM, 1, 1.0)
        with pytest.raises(ValueError):
            a.cost_normalized_to(b)

    def test_negative_inputs_rejected(self):
        m = BillingMeter()
        with pytest.raises(ValueError):
            m.charge(LARGE_VM, -1, 10.0)
        with pytest.raises(ValueError):
            m.charge(LARGE_VM, 1, -10.0)

    def test_zero_duration_free(self):
        m = BillingMeter()
        m.charge(LARGE_VM, 100, 0.0)
        assert m.total_cost == 0.0


class TestElasticProvisioner:
    @pytest.fixture
    def prov(self):
        return ElasticProvisioner(spec=LARGE_VM, model=PerfModel(), workers=4)

    def test_advance_bills_current_fleet(self, prov):
        prov.advance(100.0)
        assert prov.meter.total_vm_seconds == 400.0

    def test_scale_out_charges_provision_delay(self, prov):
        overhead = prov.scale_to(8, superstep=3)
        assert overhead == pytest.approx(PerfModel().provision_delay)
        assert prov.workers == 8
        assert prov.events[0].new_workers == 8

    def test_scale_in_charges_release_delay(self, prov):
        prov.scale_to(8, superstep=1)
        overhead = prov.scale_to(4, superstep=2)
        assert overhead == pytest.approx(PerfModel().release_delay)

    def test_migration_cost_scales_with_vertices(self, prov):
        m = PerfModel()
        o = prov.scale_to(8, superstep=0, vertices_moved=1_000_000)
        assert o == pytest.approx(m.provision_delay + m.migrate_per_vertex * 1e6)

    def test_noop_scale_free(self, prov):
        assert prov.scale_to(4, superstep=0) == 0.0
        assert not prov.events

    def test_invalid_worker_counts(self, prov):
        with pytest.raises(ValueError):
            prov.scale_to(0, superstep=0)
        with pytest.raises(ValueError):
            ElasticProvisioner(spec=LARGE_VM, model=PerfModel(), workers=0)

    def test_scaling_overhead_is_billed(self, prov):
        prov.scale_to(8, superstep=0)
        # 8 VMs billed during the provisioning delay.
        assert prov.meter.total_vm_seconds == pytest.approx(
            8 * PerfModel().provision_delay
        )
