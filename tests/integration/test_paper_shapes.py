"""End-to-end integration: the paper's qualitative results at test scale.

These run the same experiment pipelines as the benchmarks but at reduced
scale, asserting the *shape* of each headline claim.  The full-scale
versions (with paper-vs-measured tables) live in benchmarks/.
"""

import numpy as np
import pytest

from repro.analysis import (
    RunConfig,
    bc_scenario,
    paper_partitioners,
    run_pagerank,
    run_traversal,
)
from repro.cloud.costmodel import SCALED_PERF_MODEL
from repro.elastic import (
    ActiveFractionPolicy,
    AlignedTraces,
    ElasticityModel,
    FixedWorkers,
    OraclePolicy,
)
from repro.scheduling import (
    AdaptiveSizer,
    DynamicPeakDetect,
    SamplingSizer,
    SequentialInitiation,
    StaticEveryN,
    StaticSizer,
)

SCALE = 0.2  # smaller than bench scale; still shows every effect


@pytest.fixture(scope="module")
def wg():
    return bc_scenario("WG", scale=SCALE)


class TestFig2ComplexityGap:
    def test_bc_and_apsp_dwarf_pagerank(self, wg):
        """BC/APSP extrapolated totals are orders of magnitude above PR."""
        from repro.analysis import extrapolate_runtime

        cfg = wg.unconstrained_config()
        n = wg.graph.num_vertices
        pr = run_pagerank(wg.graph, cfg, iterations=30).total_time
        roots = range(10)
        bc = extrapolate_runtime(
            run_traversal(wg.graph, cfg, roots, kind="bc").total_time, 10, n
        ).projected_seconds
        apsp = extrapolate_runtime(
            run_traversal(wg.graph, cfg, roots, kind="apsp").total_time, 10, n
        ).projected_seconds
        # The paper's 4-orders-of-magnitude gap scales with |V| (the
        # extrapolation factor); at this 350-vertex test scale the expected
        # gap is ~1.5 orders.  The bench at full scale reports the ratio.
        assert bc > 20 * pr
        assert apsp > 8 * pr
        assert bc > apsp  # BC's backward phase makes it the most expensive


class TestFig3MessageProfiles:
    def test_pagerank_flat_bc_triangular(self, wg):
        cfg = wg.unconstrained_config()
        pr = run_pagerank(wg.graph, cfg, iterations=20)
        pr_msgs = pr.trace.series_messages()[1:-1]
        assert pr_msgs.std() / pr_msgs.mean() < 0.01

        bc = run_traversal(wg.graph, cfg, range(7), kind="bc")
        msgs = bc.result.trace.series_messages()
        peak = msgs.argmax()
        assert 0 < peak < len(msgs) - 1
        assert msgs.max() > 5 * max(msgs[0], msgs[-1], 1)


class TestFig4SwathSizeSpeedup:
    def test_heuristics_beat_baseline(self, wg):
        cfg = wg.config()
        roots = wg.roots[: wg.base_swath]
        base = run_traversal(
            wg.graph, cfg, roots, kind="bc", sizer=StaticSizer(wg.base_swath)
        )
        assert base.result.trace.peak_memory > wg.capacity_bytes  # spills
        for sizer in (SamplingSizer(wg.target_bytes), AdaptiveSizer(wg.target_bytes)):
            run = run_traversal(wg.graph, cfg, roots, kind="bc", sizer=sizer)
            speedup = base.total_time / run.total_time
            assert speedup > 1.5, f"{sizer.label}: only {speedup:.2f}x"
            assert run.result.trace.peak_memory <= wg.capacity_bytes * 1.05

    def test_adaptive_on_4_workers_beats_baseline_on_8(self, wg):
        """§VI-B: 4 workers + adaptive ≈ two-thirds the 8-worker baseline."""
        roots = wg.roots[: wg.base_swath]
        base8 = run_traversal(
            wg.graph, wg.config(8), roots, kind="bc",
            sizer=StaticSizer(wg.base_swath),
        )
        adapt4 = run_traversal(
            wg.graph, wg.config(4), roots, kind="bc",
            sizer=AdaptiveSizer(wg.target_bytes),
        )
        assert adapt4.total_time < base8.total_time


class TestFig5MemoryTrace:
    def test_baseline_spills_heuristic_hugs_target(self, wg):
        cfg = wg.config()
        roots = wg.roots[: wg.base_swath]
        base = run_traversal(
            wg.graph, cfg, roots, kind="bc", sizer=StaticSizer(wg.base_swath)
        )
        adapt = run_traversal(
            wg.graph, cfg, roots, kind="bc", sizer=AdaptiveSizer(wg.target_bytes)
        )
        assert base.result.trace.peak_memory > wg.capacity_bytes
        peak = adapt.result.trace.peak_memory
        assert 0.3 * wg.target_bytes < peak <= 1.1 * wg.target_bytes


class TestFig6InitiationSpeedup:
    def test_overlap_beats_sequential(self, wg):
        cfg = wg.config()
        roots = wg.roots[: wg.base_swath]
        size = max(2, wg.base_swath // 4)
        seq = run_traversal(
            wg.graph, cfg, roots, kind="bc",
            sizer=StaticSizer(size), initiation=SequentialInitiation(),
        )
        for policy in (StaticEveryN(4), DynamicPeakDetect()):
            run = run_traversal(
                wg.graph, cfg, roots, kind="bc",
                sizer=StaticSizer(size), initiation=policy,
            )
            assert run.total_time < seq.total_time
            assert run.result.supersteps < seq.result.supersteps


class TestFig8Partitioning:
    def test_metis_wins_on_wg_not_on_cp(self):
        results = {}
        for ds in ("WG", "CP"):
            sc = bc_scenario(ds, scale=SCALE)
            for name, part in paper_partitioners().items():
                cfg = RunConfig(
                    num_workers=8, partitioner=part, perf_model=SCALED_PERF_MODEL
                ).with_memory(1 << 62)
                run = run_traversal(
                    sc.graph, cfg, range(20), kind="bc", sizer=StaticSizer(10)
                )
                results[(ds, name)] = run.total_time
        wg_gain = results[("WG", "METIS")] / results[("WG", "Hash")]
        cp_gain = results[("CP", "METIS")] / results[("CP", "Hash")]
        assert wg_gain < 0.85  # clear win on WG
        assert cp_gain > wg_gain + 0.1  # benefit collapses on CP

    def test_hash_highest_utilization(self):
        sc = bc_scenario("WG", scale=SCALE)
        utils = {}
        for name, part in paper_partitioners().items():
            cfg = RunConfig(
                num_workers=8, partitioner=part, perf_model=SCALED_PERF_MODEL
            ).with_memory(1 << 62)
            run = run_traversal(
                sc.graph, cfg, range(20), kind="bc", sizer=StaticSizer(10)
            )
            utils[name] = run.result.trace.utilization()
        assert utils["Hash"] > utils["METIS"]  # Figs. 9/12's pattern


class TestFig15And16Elastic:
    @pytest.fixture(scope="class")
    def model(self):
        sc = bc_scenario("WG", scale=SCALE)
        runs = {}
        # Half the baseline swath spills at 4 workers but fits at 8 at this
        # test scale (the bench uses the scenario's calibrated ELASTIC_SWATH).
        swath = sc.base_swath // 2
        for w in (4, 8):
            runs[w] = run_traversal(
                sc.graph, sc.config(num_workers=w), sc.roots[: sc.base_swath],
                kind="bc", sizer=StaticSizer(swath),
                initiation=SequentialInitiation(),
            )
        tr = AlignedTraces.from_traces(
            runs[4].result.trace, runs[8].result.trace, 4, 8,
            sc.graph.num_vertices,
        )
        return ElasticityModel(tr)

    def test_superlinear_spikes_at_peaks(self, model):
        sp = model.speedup_series()
        active = model.active_series()
        assert sp.max() > 2.0
        # The superlinear step coincides with high activity.
        assert active[int(sp.argmax())] > 0.5 * active.max()

    def test_subunit_speedup_in_troughs(self, model):
        assert model.speedup_series().min() < 1.0

    def test_dynamic_approaches_fixed8_time_at_lower_cost(self, model):
        f8 = model.evaluate(FixedWorkers(8))
        dyn = model.evaluate(ActiveFractionPolicy(0.5))
        assert dyn.total_time <= 1.1 * f8.total_time
        assert dyn.cost < f8.cost

    def test_oracle_is_lower_bound(self, model):
        oracle = model.evaluate(OraclePolicy()).total_time
        for p in (FixedWorkers(4), FixedWorkers(8), ActiveFractionPolicy(0.5)):
            assert oracle <= model.evaluate(p).total_time + 1e-12
