"""Every example script must run cleanly end to end (no rot)."""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = sorted(
    (Path(__file__).resolve().parents[2] / "examples").glob("*.py")
)


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs(script, capsys, monkeypatch):
    # Examples print tables/summaries; just require a clean exit and output.
    monkeypatch.setattr(sys, "argv", [str(script)])
    runpy.run_path(str(script), run_name="__main__")
    out = capsys.readouterr().out
    assert len(out) > 100, f"{script.name} produced almost no output"


def test_examples_discovered():
    names = {p.stem for p in EXAMPLES}
    assert {
        "quickstart",
        "swath_scheduling",
        "partitioning_study",
        "elastic_scaling",
        "fault_tolerance",
        "capacity_planning",
        "custom_program",
    } <= names
