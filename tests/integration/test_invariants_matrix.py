"""Run every vertex program under the runtime invariant checker.

One matrix test: (program x worker count) — the engine's conservation and
accounting invariants must hold for every algorithm in the library,
including the mutation-based and master-compute-based ones.
"""

import pytest

from repro.algorithms import (
    APSPProgram,
    BCProgram,
    BipartiteMatchingProgram,
    ConnectedComponentsProgram,
    ConvergentPageRankProgram,
    KCoreProgram,
    LabelPropagationProgram,
    PageRankProgram,
    SemiClusteringProgram,
    SSSPProgram,
    TriangleCountProgram,
)
from repro.algorithms import apsp as apsp_mod
from repro.algorithms import bc as bc_mod
from repro.bsp import JobSpec, run_job
from repro.bsp.debug import InvariantChecker

CASES = [
    ("pagerank", lambda: PageRankProgram(6), {}),
    ("pagerank-nocombine", lambda: PageRankProgram(6, use_combiner=False), {}),
    ("convergent-pr", lambda: ConvergentPageRankProgram(tol=1e-6), {}),
    ("sssp", lambda: SSSPProgram(0), {}),
    ("cc", lambda: ConnectedComponentsProgram(), {}),
    ("kcore", lambda: KCoreProgram(2), {}),
    ("lpa", lambda: LabelPropagationProgram(max_rounds=6), {}),
    ("triangles", lambda: TriangleCountProgram(), {}),
    ("semicluster", lambda: SemiClusteringProgram(max_rounds=3), {}),
    ("matching", lambda: BipartiteMatchingProgram(lambda v: v % 2 == 0), {}),
    (
        "bc",
        lambda: BCProgram(),
        dict(initially_active=False,
             initial_messages=bc_mod.start_messages(range(5))),
    ),
    (
        "apsp",
        lambda: APSPProgram(),
        dict(initially_active=False,
             initial_messages=apsp_mod.start_messages(range(5))),
    ),
]


@pytest.mark.parametrize("workers", [1, 4])
@pytest.mark.parametrize("name,factory,extra", CASES, ids=[c[0] for c in CASES])
def test_invariants_hold(small_world, name, factory, extra, workers):
    checker = InvariantChecker()
    res = run_job(
        JobSpec(
            program=factory(), graph=small_world, num_workers=workers,
            observers=[checker], **extra,
        )
    )
    assert res.halted
    assert checker.ok, f"{name}@{workers}w: {checker.violations[:3]}"
